"""Ablation: what flattening (least interaction) buys.

Section 4.2's motivating scenario: a participant publishes a wrong value
and immediately revises it.  With flattening, the intermediate value
disappears from the update extension and cannot conflict with anyone;
with flattening ablated, every intermediate state fights every other
update that touched the same key.  This benchmark builds revision-heavy
chains and counts conflicting pairs under both semantics.
"""

from __future__ import annotations

from repro.bench.ablations import (
    count_conflict_pairs,
    naive_find_conflicts,
    raw_update_extension,
)
from repro.core.conflicts import find_conflicts
from repro.core.extensions import (
    RelevantTransaction,
    TransactionGraph,
    compute_update_extension,
)
from repro.model import Insert, Modify, Transaction, TransactionId
from repro.workload import curated_schema

from benchmarks.conftest import emit


def build_revision_chains(peers=10, keys=6):
    """Each peer inserts a wrong value at a popular key, then fixes it.

    After the fix, peers that picked the same final value agree; only the
    intermediate (reverted) values differed.
    """
    schema = curated_schema()
    graph = TransactionGraph()
    roots = []
    order = 0
    for peer in range(1, peers + 1):
        for key_index in range(keys):
            organism = "rat"
            protein = f"prot{key_index}"
            wrong = (organism, protein, f"wrong-{peer}")
            right = (organism, protein, "consensus")
            txn = Transaction(
                TransactionId(peer, key_index),
                (
                    Insert("F", wrong, peer),
                    Modify("F", wrong, right, peer),
                ),
            )
            graph.add(txn, (), order)
            roots.append(RelevantTransaction(txn, priority=1, order=order))
            order += 1
    return schema, graph, roots


def test_ablation_flattening_removes_intermediate_conflicts(benchmark):
    schema, graph, roots = build_revision_chains()

    def flattened_conflicts():
        extensions = {
            root.tid: compute_update_extension(schema, graph, root, set())
            for root in roots
        }
        return find_conflicts(schema, graph, extensions).adjacency

    flattened = benchmark.pedantic(flattened_conflicts, rounds=1, iterations=1)

    raw_extensions = {
        root.tid: raw_update_extension(schema, graph, root, set())
        for root in roots
    }
    raw = naive_find_conflicts(schema, graph, raw_extensions)

    flattened_pairs = count_conflict_pairs(flattened)
    raw_pairs = count_conflict_pairs(raw)
    emit(
        "Ablation — least interaction (flattening):\n"
        f"  conflicting pairs with flattening   : {flattened_pairs}\n"
        f"  conflicting pairs without flattening: {raw_pairs}"
    )

    # Everyone converged on the same final value: flattening sees total
    # agreement, the ablation sees a quadratic pile of phantom conflicts.
    assert flattened_pairs == 0
    assert raw_pairs > 0
    benchmark.extra_info["flattened_pairs"] = flattened_pairs
    benchmark.extra_info["raw_pairs"] = raw_pairs
