#!/usr/bin/env python3
"""Fail CI when a perf benchmark regresses past a threshold.

Compares freshly emitted benchmark points (``BENCH_engine.json``,
``BENCH_dht_nc.json``, ...) against the committed baseline
(``benchmarks/BENCH_baseline.json``).  The primary metric of every point
is its *speedup* ratio (both sides measured in the same process on the
same host) because it is dimensionless — absolute seconds vary wildly
across CI runners, but both sides of the ratio move with the machine.

The baseline file maps benchmark names to points::

    {"schema_version": 3,
     "benchmarks": {"engine_reconciliation": {"speedup": ...},
                    "dht_network_centric": {"speedup": ...,
                                            "budgets": {
                                                "message_ratio": 1.8,
                                                "byte_ratio": 1.5}}}}

(a legacy flat baseline holding a single point with a ``benchmark`` key
is still understood).  Each fresh file names its benchmark in its
``benchmark`` key and is gated against the matching baseline entry.

Schema v3 adds optional per-point ``budgets``: hard ceilings on
additional fresh metrics (e.g. the network-centric DHT mode's
store/client message and byte ratios).  Unlike the speedup — a
machine-relative ratio gated with a tolerance — a budget is absolute:
the fresh metric must not exceed its ceiling at all.

Exit status 1 when any fresh speedup drops more than ``--threshold``
(default 20%) below its baseline, or any budgeted metric exceeds its
ceiling.

Usage:
    python benchmarks/check_regression.py BENCH_engine.json \\
        BENCH_dht_nc.json [--baseline benchmarks/BENCH_baseline.json] \\
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"


def load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"check_regression: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"check_regression: {path} is not valid JSON: {exc}")


def baseline_points(path: Path) -> Dict[str, dict]:
    """The committed baseline as {benchmark name: point}."""
    data = load_json(path)
    if "benchmarks" in data:
        return dict(data["benchmarks"])
    name = data.get("benchmark")
    if name is None:
        sys.exit(
            f"check_regression: {path} has neither a 'benchmarks' map nor "
            f"a legacy 'benchmark' key"
        )
    return {name: data}


def check_point(fresh: dict, baseline: dict, threshold: float) -> bool:
    """Print the comparison; True when the fresh point passes."""
    name = fresh["benchmark"]
    try:
        fresh_speedup = float(fresh["speedup"])
        baseline_speedup = float(baseline["speedup"])
    except KeyError as exc:
        sys.exit(
            f"check_regression: missing key {exc} in a {name!r} point"
        )
    floor = baseline_speedup * (1.0 - threshold)
    drop = 1.0 - fresh_speedup / baseline_speedup
    print(
        f"{name}: fresh {fresh_speedup:.2f}x vs baseline "
        f"{baseline_speedup:.2f}x (drop {drop:+.1%}, tolerated "
        f"{threshold:.0%}, floor {floor:.2f}x)"
    )
    passed = True
    if fresh_speedup < floor:
        print(
            f"REGRESSION in {name}: fresh speedup fell below the tolerated "
            f"floor — either fix the slowdown or update "
            f"benchmarks/BENCH_baseline.json with a justification in the PR."
        )
        passed = False
    for metric, ceiling in sorted(baseline.get("budgets", {}).items()):
        value = fresh.get(metric)
        if value is None:
            print(
                f"REGRESSION in {name}: fresh point lacks budgeted "
                f"metric {metric!r} (ceiling {ceiling})"
            )
            passed = False
            continue
        print(
            f"{name}: {metric} {float(value):.2f} "
            f"(budget {float(ceiling):.2f})"
        )
        if float(value) > float(ceiling):
            print(
                f"REGRESSION in {name}: {metric} {float(value):.2f} "
                f"exceeds its budget ceiling {float(ceiling):.2f}"
            )
            passed = False
    return passed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "fresh",
        type=Path,
        nargs="+",
        help="just-emitted benchmark point files (BENCH_*.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline file (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated relative speedup drop (default 0.20)",
    )
    args = parser.parse_args(argv)

    baselines = baseline_points(args.baseline)
    failed = False
    for path in args.fresh:
        fresh = load_json(path)
        name = fresh.get("benchmark")
        if name is None:
            sys.exit(f"check_regression: {path} lacks a 'benchmark' key")
        baseline = baselines.get(name)
        if baseline is None:
            sys.exit(
                f"check_regression: no baseline for {name!r} in "
                f"{args.baseline}; known: {sorted(baselines)}"
            )
        if not check_point(fresh, baseline, args.threshold):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
