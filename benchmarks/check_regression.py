#!/usr/bin/env python3
"""Fail CI when the engine benchmark regresses past a threshold.

Compares a freshly emitted ``BENCH_engine.json`` against the committed
baseline (``benchmarks/BENCH_baseline.json``).  The primary metric is
the *speedup* ratio (cached engine vs. the seed-path baseline, both
measured in the same process on the same host) because it is
dimensionless — absolute seconds vary wildly across CI runners, but
both sides of the ratio move with the machine.

Exit status 1 when the fresh speedup drops more than ``--threshold``
(default 20%) below the baseline speedup.

Usage:
    python benchmarks/check_regression.py BENCH_engine.json \\
        benchmarks/BENCH_baseline.json [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_point(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"check_regression: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"check_regression: {path} is not valid JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path, help="just-emitted BENCH_engine.json")
    parser.add_argument("baseline", type=Path, help="committed baseline point")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated relative speedup drop (default 0.20)",
    )
    args = parser.parse_args(argv)

    fresh = load_point(args.fresh)
    baseline = load_point(args.baseline)
    try:
        fresh_speedup = float(fresh["speedup"])
        baseline_speedup = float(baseline["speedup"])
    except KeyError as exc:
        sys.exit(f"check_regression: missing key {exc} in a benchmark point")

    floor = baseline_speedup * (1.0 - args.threshold)
    drop = 1.0 - fresh_speedup / baseline_speedup
    print(
        f"engine speedup: fresh {fresh_speedup:.2f}x vs baseline "
        f"{baseline_speedup:.2f}x (drop {drop:+.1%}, tolerated "
        f"{args.threshold:.0%}, floor {floor:.2f}x)"
    )
    if fresh_speedup < floor:
        print(
            "REGRESSION: fresh speedup fell below the tolerated floor — "
            "either fix the slowdown or update benchmarks/BENCH_baseline.json "
            "with a justification in the PR."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
