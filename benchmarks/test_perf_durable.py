"""Durable-store perf: what full persistence costs at history scale (PR 9).

The ``durable`` backend keeps the entire update history — four times the
shared-memo retention limit and then some — on a database file while
holding only a bounded LRU of transaction bodies in RAM.  This benchmark
prices that against the ``memory`` store on an identical schedule:

* one publisher streams ``EPOCHS x BATCH`` (>= 262144, i.e. 4x the
  65536-entry shared-memo limit) single-insert transactions with unique
  keys — 64 publication epochs;
* a second participant reconciles after every epoch, so every body pages
  from disk through the LRU and every fully-decided extension retires to
  the ``retired_extensions`` table.

The runs must emit **byte-identical decision streams** — persistence may
only cost time, never outcomes — and the durable store's resident body
count must stay pinned at the configured cache capacity, not the history
size.  The gated ``speedup`` is ``memory_wall / durable_wall`` (both
sides measured in this process on this host, so the ratio is
machine-relative); the ``peak_resident`` budget is absolute — the
bounded-memory claim has no tolerance.

A final reopen of the finished database times crash recovery: O(delta)
counter reloads, never a full-history replay, so it must stay orders of
magnitude under the run itself.

Emits ``BENCH_durable.json`` at the repository root, gated by
``benchmarks/check_regression.py`` against
``benchmarks/BENCH_baseline.json`` and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.model import Insert
from repro.store import DurableUpdateStore
from repro.workload import curated_schema

from benchmarks.conftest import emit

EPOCHS = 64
BATCH = 4096
TOTAL = EPOCHS * BATCH  # 262144 = 4x the shared-memo retention limit
CACHE_SIZE = 1024
#: Crash recovery reloads counters, never the history: reopening the
#: finished multi-hundred-MB database must stay under this many seconds.
REOPEN_CEILING_SECONDS = 2.0

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_durable.json"


def _run(store_name, store_options):
    """The publish/reconcile schedule; returns wall time and outcomes."""
    config = ConfederationConfig(
        store=store_name, store_options=store_options, peers=(1, 2)
    )
    decisions = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: decisions.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        publisher = confed.participant(1)
        consumer = confed.participant(2)
        start = time.perf_counter()
        serial = 0
        for _epoch in range(EPOCHS):
            for _ in range(BATCH):
                publisher.execute(
                    [Insert("F", (f"k{serial:07d}", f"p{serial:07d}", "bench"), 1)]
                )
                serial += 1
            publisher.publish()
            consumer.reconcile()
        wall = time.perf_counter() - start
        published = confed.store.transaction_count()
        if store_name == "durable":
            cache_stats = confed.store.page_cache_stats()
            retired = confed.store.retired_extension_count()
        else:
            cache_stats = None
            retired = None
    return wall, decisions, published, cache_stats, retired


def test_perf_durable_history_scale(benchmark, tmp_path):
    db_path = tmp_path / "durable-bench.db"
    memory_wall, memory_decisions, memory_published, _, _ = _run("memory", {})
    (
        durable_wall,
        durable_decisions,
        durable_published,
        cache_stats,
        retired,
    ) = benchmark.pedantic(
        lambda: _run(
            "durable", {"path": str(db_path), "cache_size": CACHE_SIZE}
        ),
        rounds=1,
        iterations=1,
    )

    reopen_start = time.perf_counter()
    reopened = DurableUpdateStore(curated_schema(), path=str(db_path))
    reopen_seconds = time.perf_counter() - reopen_start
    recovered_versions = dict(reopened._applied_versions)
    reopened.close()

    speedup = memory_wall / durable_wall
    db_bytes = db_path.stat().st_size

    emit(
        f"Durable store — {TOTAL} transactions over {EPOCHS} epochs, "
        f"page cache {CACHE_SIZE}:\n"
        f"  memory  : {memory_wall:8.2f}s "
        f"({memory_published / memory_wall:8.0f} txn/s)\n"
        f"  durable : {durable_wall:8.2f}s "
        f"({durable_published / durable_wall:8.0f} txn/s, "
        f"{speedup:.2f}x of memory)\n"
        f"  on disk : {db_bytes / 1e6:.1f} MB, {retired} retired "
        f"extensions; resident bodies peaked at "
        f"{cache_stats['peak_resident']} (capacity {CACHE_SIZE})\n"
        f"  reopen  : {reopen_seconds * 1e3:.1f} ms "
        f"(ceiling {REOPEN_CEILING_SECONDS}s)"
    )

    point = {
        "schema_version": 1,
        "benchmark": "durable_history_scale",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "epochs": EPOCHS,
            "batch": BATCH,
            "total_transactions": TOTAL,
            "cache_size": CACHE_SIZE,
            "store": "durable",
        },
        "published_transactions": durable_published,
        "memory_wall_seconds": memory_wall,
        "durable_wall_seconds": durable_wall,
        "durable_txns_per_second": durable_published / durable_wall,
        "speedup": speedup,
        "reopen_seconds": reopen_seconds,
        "db_bytes": db_bytes,
        "retired_extensions": retired,
        "peak_resident": cache_stats["peak_resident"],
        "page_cache": cache_stats,
    }
    _BENCH_JSON.write_text(json.dumps(point, indent=2) + "\n")
    benchmark.extra_info.update(point)

    # The scale floor: four times the shared-memo retention limit.
    assert durable_published >= 262144
    assert memory_published == durable_published
    # Persistence changes cost, never outcomes: the decision streams —
    # order included — are byte-identical.
    assert durable_decisions == memory_decisions
    # Bounded memory: resident bodies pinned at the cache capacity while
    # the history is 256x larger, and retention really spilled to disk.
    assert cache_stats["peak_resident"] <= CACHE_SIZE
    assert cache_stats["evictions"] > 0
    assert retired == TOTAL
    # Crash recovery is O(delta): counters reloaded, no history replay.
    assert reopen_seconds < REOPEN_CEILING_SECONDS
    assert recovered_versions and all(
        v > 0 for p, v in recovered_versions.items() if p == 2
    )
