"""Figure 9: the effect of reconciliation interval on state ratio.

Paper's shape: reconciling less frequently (more size-1 transactions
between reconciliations) slightly increases the state ratio — longer
unsynchronised transaction chains conflict more.  The rise is gentle:
from about 1.2 at interval 1 to about 2 at interval 20.
"""

from __future__ import annotations

from repro.bench import fig9_rows, format_table

from benchmarks.conftest import emit

INTERVALS = (1, 2, 4, 8, 12, 16, 20)


def test_fig9_reconciliation_interval_vs_state_ratio(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9_rows(intervals=INTERVALS, transactions_per_peer=40),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            "Figure 9 — reconciliation interval vs state ratio "
            "(10 peers, size-1 transactions)",
            ["interval", "state ratio"],
            rows,
        )
    )
    ratios = dict(rows)
    benchmark.extra_info["rows"] = rows

    # Shape: infrequent reconciliation diverges more than frequent.
    assert ratios[INTERVALS[-1]] > ratios[1]
    # The most synchronised configuration stays close to agreement.
    assert ratios[1] < 1.8
    # The rise is gentle, not explosive.
    assert ratios[INTERVALS[-1]] < 4.0
