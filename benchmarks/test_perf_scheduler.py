"""Epoch-scheduler perf: threaded vs serial on a 16-peer confederation.

The serial schedule pays every store wait end to end: while one
participant's messages cross the (simulated) wire, fifteen others sit
idle.  The threaded scheduler overlaps those waits — store calls stay
serialized under the store lock, but the injected per-message latency is
slept *outside* it (``real_latency=True`` makes the paper's injected
delays real instead of merely accounted; see
:meth:`repro.store.base.UpdateStore.pay_latency`).

Decisions are unaffected by sleeping, so the pin is pure wall clock:
the threaded schedule must beat the serial one by a clear margin on the
same seeded 16-peer workload.
"""

from __future__ import annotations

import time

from repro.confed import Confederation, ConfederationConfig
from repro.workload import WorkloadConfig

from benchmarks.conftest import emit

PEERS = 16
ROUNDS = 2
INTERVAL = 2
#: Per-message injected latency (4x the paper's 500us floor, so the wait
#: regime dominates scheduling noise while the bench stays ~seconds).
LATENCY = 0.002
#: The threaded schedule must run in at most this fraction of the serial
#: wall clock (conservative: the expected ratio is well under 0.7).
WALL_CLOCK_CEILING = 0.85


def _run(schedule_mode: str):
    config = ConfederationConfig(
        store="memory",
        store_options={"message_latency": LATENCY, "real_latency": True},
        peers=tuple(range(1, PEERS + 1)),
        reconciliation_interval=INTERVAL,
        rounds=ROUNDS,
        final_reconcile=True,
        schedule_mode=schedule_mode,
        workload=WorkloadConfig(transaction_size=1, seed=91),
    )
    started = time.perf_counter()
    with Confederation.from_config(config) as confederation:
        report = confederation.run()
    return time.perf_counter() - started, report


def test_threaded_scheduler_beats_serial_wall_clock():
    serial_wall, serial_report = _run("serial")
    threaded_wall, threaded_report = _run("threaded")
    ratio = threaded_wall / serial_wall

    emit(
        f"Epoch scheduler — {PEERS} peers, memory store with real "
        f"{LATENCY * 1000:.0f} ms/message latency:\n"
        f"  serial   : {serial_wall:7.3f} s wall\n"
        f"  threaded : {threaded_wall:7.3f} s wall\n"
        f"  ratio    : {ratio:7.2f} (ceiling {WALL_CLOCK_CEILING})"
    )

    # Same schedule volume either way; only the wall clock may differ.
    assert (
        serial_report.transactions_published
        == threaded_report.transactions_published
    )
    assert ratio <= WALL_CLOCK_CEILING, (
        f"threaded schedule took {ratio:.2f}x the serial wall clock "
        f"(ceiling {WALL_CLOCK_CEILING})"
    )
