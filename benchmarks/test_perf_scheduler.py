"""Epoch-scheduler perf: threaded vs serial, async vs threaded.

The serial schedule pays every store wait end to end: while one
participant's messages cross the (simulated) wire, fifteen others sit
idle.  The threaded scheduler overlaps those waits — store calls stay
serialized under the store lock, but the injected per-message latency is
slept *outside* it (``real_latency=True`` makes the paper's injected
delays real instead of merely accounted; see
:meth:`repro.store.base.UpdateStore.pay_latency`).

What the threaded scheduler cannot overlap is its own *publish
barrier*: epoch allocation order is the determinism anchor, so the
publishes run one after another — at high peer counts and high
latency the barrier is the run.  The PR 10 async scheduler pipelines
it: each participant's lock-held store phase still executes in
ascending id order on the single event loop, but the latency debt is
awaited afterwards, overlapping participant *i*'s wait with
participant *i+1*'s allocation.  The second benchmark point prices
exactly that regime — 64 peers, 4 ms per message — and pins the
pipelined schedule at a fraction of the threaded wall clock.

Decisions are unaffected by sleeping, so both pins are pure wall
clock on identical schedule volume.  The async point is emitted as
``BENCH_scheduler.json`` at the repository root, gated by
``benchmarks/check_regression.py`` against
``benchmarks/BENCH_baseline.json`` and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.confed import Confederation, ConfederationConfig
from repro.workload import WorkloadConfig

from benchmarks.conftest import emit

PEERS = 16
ROUNDS = 2
INTERVAL = 2
#: Per-message injected latency (4x the paper's 500us floor, so the wait
#: regime dominates scheduling noise while the bench stays ~seconds).
LATENCY = 0.002
#: The threaded schedule must run in at most this fraction of the serial
#: wall clock (conservative: the expected ratio is well under 0.7).
WALL_CLOCK_CEILING = 0.85

#: The pipelining point: enough peers that the serialized publish
#: barrier dominates, and wide-area latency per message.
PEERS_LARGE = 64
LATENCY_LARGE = 0.004
#: The async schedule must run in at most this fraction of the threaded
#: wall clock on the 64-peer point (conservative: expected well under
#: 0.5 — the barrier is ~64 sequential latency payments per round for
#: the threaded schedule and ~1 for the pipelined one).
ASYNC_WALL_CLOCK_CEILING = 0.85

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def _run(schedule_mode: str, peers: int = PEERS, latency: float = LATENCY):
    config = ConfederationConfig(
        store="memory",
        store_options={"message_latency": latency, "real_latency": True},
        peers=tuple(range(1, peers + 1)),
        reconciliation_interval=INTERVAL,
        rounds=ROUNDS,
        final_reconcile=True,
        schedule_mode=schedule_mode,
        workload=WorkloadConfig(transaction_size=1, seed=91),
    )
    started = time.perf_counter()
    with Confederation.from_config(config) as confederation:
        report = confederation.run()
    return time.perf_counter() - started, report


def test_threaded_scheduler_beats_serial_wall_clock():
    serial_wall, serial_report = _run("serial")
    threaded_wall, threaded_report = _run("threaded")
    ratio = threaded_wall / serial_wall

    emit(
        f"Epoch scheduler — {PEERS} peers, memory store with real "
        f"{LATENCY * 1000:.0f} ms/message latency:\n"
        f"  serial   : {serial_wall:7.3f} s wall\n"
        f"  threaded : {threaded_wall:7.3f} s wall\n"
        f"  ratio    : {ratio:7.2f} (ceiling {WALL_CLOCK_CEILING})"
    )

    # Same schedule volume either way; only the wall clock may differ.
    assert (
        serial_report.transactions_published
        == threaded_report.transactions_published
    )
    assert ratio <= WALL_CLOCK_CEILING, (
        f"threaded schedule took {ratio:.2f}x the serial wall clock "
        f"(ceiling {WALL_CLOCK_CEILING})"
    )


def test_async_scheduler_pipelines_the_publish_barrier(benchmark):
    threaded_wall, threaded_report = _run(
        "threaded", peers=PEERS_LARGE, latency=LATENCY_LARGE
    )
    async_wall, async_report = benchmark.pedantic(
        lambda: _run("async", peers=PEERS_LARGE, latency=LATENCY_LARGE),
        rounds=1,
        iterations=1,
    )
    ratio = async_wall / threaded_wall
    speedup = threaded_wall / async_wall

    emit(
        f"Epoch scheduler — {PEERS_LARGE} peers, memory store with real "
        f"{LATENCY_LARGE * 1000:.0f} ms/message latency:\n"
        f"  threaded : {threaded_wall:7.3f} s wall\n"
        f"  async    : {async_wall:7.3f} s wall\n"
        f"  ratio    : {ratio:7.2f} (ceiling {ASYNC_WALL_CLOCK_CEILING}, "
        f"speedup {speedup:.2f}x)"
    )

    point = {
        "schema_version": 1,
        "benchmark": "epoch_scheduler",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "peers": PEERS_LARGE,
            "interval": INTERVAL,
            "rounds": ROUNDS,
            "seed": 91,
            "store": "memory",
            "message_latency": LATENCY_LARGE,
        },
        "threaded_wall_seconds": threaded_wall,
        "async_wall_seconds": async_wall,
        "async_vs_threaded_ratio": ratio,
        "speedup": speedup,
        "transactions_published": async_report.transactions_published,
        "state_ratio": async_report.state_ratio,
        "budgets_note": "async_vs_threaded_ratio budget lives in the baseline",
    }
    _BENCH_JSON.write_text(json.dumps(point, indent=2) + "\n")
    benchmark.extra_info.update(point)

    # Same schedule volume either way; only the wall clock may differ.
    assert (
        async_report.transactions_published
        == threaded_report.transactions_published
    )
    assert async_report.scheduler == "async"
    assert ratio <= ASYNC_WALL_CLOCK_CEILING, (
        f"async schedule took {ratio:.2f}x the threaded wall clock "
        f"(ceiling {ASYNC_WALL_CLOCK_CEILING})"
    )
