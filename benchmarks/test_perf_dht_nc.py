"""DHT perf: fully network-centric batches vs the client-computed store.

PR 5 closed the last quadrant of the paper's Figure 3: the distributed
store now assembles each participant's reconciliation batch — update
extensions derived against that participant's applied set, plus the
pairwise conflict adjacency — inside the (simulated) network.  Figure 3
predicts the trade: client-side reconciliation work drops, communication
rises.  This benchmark quantifies both on a 16-peer DHT run and pins the
client-side win:

* **store-computed** — ``network_centric="store"`` over the default DHT;
* **client-computed** — the paper's distributed store
  (``ship_context_free=False``): every client derives every extension
  and runs conflict detection locally.

Decisions must be byte-identical (the store-side derivation is only
legal because it provably equals the client's own computation); only
where the work happens may differ.

Emits ``BENCH_dht_nc.json`` at the repository root — a machine-readable
trajectory point gated by ``benchmarks/check_regression.py`` against
``benchmarks/BENCH_baseline.json`` and uploaded as a CI artifact
alongside ``BENCH_engine.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.workload import WorkloadConfig

from benchmarks.conftest import emit

PEERS = 16
HOSTS = 8
INTERVAL = 2
ROUNDS = 2
SEED = 73
#: Store-computed batches must leave the client at most this fraction of
#: the client-computed mode's local reconcile seconds (conservative; see
#: the committed baseline for the measured ratio).
LOCAL_SECONDS_CEILING = 0.60

#: The PR 8 wire-protocol budgets: batched verdict queries, coalesced
#: ``nc_data``, and digest-token delta re-ships must hold the Figure-3
#: communication trade at or below these multiples of the
#: client-computed mode (down from the honest 2.9x / 2.2x the
#: per-member protocol paid).  Gated here and by check_regression.py
#: against the committed baseline's budget entries.
MESSAGE_RATIO_CEILING = 1.8
BYTE_RATIO_CEILING = 1.5

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dht_nc.json"


def _run(network_centric, ship_context_free=True):
    config = ConfederationConfig(
        store="dht",
        store_options={"hosts": HOSTS, "ship_context_free": ship_context_free},
        peers=tuple(range(1, PEERS + 1)),
        reconciliation_interval=INTERVAL,
        rounds=ROUNDS,
        final_reconcile=True,
        network_centric=network_centric,
        workload=WorkloadConfig(transaction_size=2, seed=SEED),
    )
    decisions = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: decisions.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        messages = confed.store.network.messages_delivered
        bytes_moved = confed.store.network.bytes_delivered
    return report, decisions, messages, bytes_moved


def test_perf_dht_store_computed_batches(benchmark):
    client_report, client_decisions, client_msgs, client_bytes = _run(
        network_centric=False, ship_context_free=False
    )
    store_report, store_decisions, store_msgs, store_bytes = benchmark.pedantic(
        lambda: _run(network_centric="store"), rounds=1, iterations=1
    )

    client_local = client_report.mean_local_seconds_per_reconciliation
    store_local = store_report.mean_local_seconds_per_reconciliation
    ratio = store_local / client_local if client_local else float("inf")
    speedup = 1.0 / ratio if ratio else float("inf")
    client_stats = client_report.cache_stats
    store_stats = store_report.cache_stats
    message_ratio = store_msgs / client_msgs
    byte_ratio = store_bytes / client_bytes

    emit(
        f"DHT network-centric — {PEERS} peers / {HOSTS} hosts, "
        f"local s per reconciliation:\n"
        f"  client-computed : {client_local * 1000:8.2f} ms "
        f"({client_stats.misses} local extension computations, "
        f"{client_msgs} fragments, {client_bytes} bytes)\n"
        f"  store-computed  : {store_local * 1000:8.2f} ms "
        f"({store_stats.misses} local extension computations, "
        f"{store_stats.shipped} adopted pre-assembled, "
        f"{store_msgs} fragments, {store_bytes} bytes)\n"
        f"  local ratio     : {ratio:8.2f} "
        f"(ceiling {LOCAL_SECONDS_CEILING}), speedup {speedup:.2f}x\n"
        f"  wire trade      : {message_ratio:.2f}x messages "
        f"(budget {MESSAGE_RATIO_CEILING}x), {byte_ratio:.2f}x bytes "
        f"(budget {BYTE_RATIO_CEILING}x)"
    )

    point = {
        "schema_version": 2,
        "benchmark": "dht_network_centric",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "peers": PEERS,
            "hosts": HOSTS,
            "interval": INTERVAL,
            "rounds": ROUNDS,
            "seed": SEED,
            "store": "dht",
        },
        "client_computed_local_seconds_per_reconciliation": client_local,
        "store_computed_local_seconds_per_reconciliation": store_local,
        "speedup": speedup,
        "client_messages": client_msgs,
        "store_messages": store_msgs,
        "client_bytes": client_bytes,
        "store_bytes": store_bytes,
        "message_ratio": message_ratio,
        "byte_ratio": byte_ratio,
        # The per-kind protocol mix of both modes — where the wire
        # budget actually goes (report() mirrors Network.kind_counts /
        # kind_bytes; see examples/quickstart.py §12).
        "client_kind_counts": client_report.kind_counts,
        "client_kind_bytes": client_report.kind_bytes,
        "store_kind_counts": store_report.kind_counts,
        "store_kind_bytes": store_report.kind_bytes,
        "store_cache_stats": store_stats.as_dict(),
        "state_ratio": store_report.state_ratio,
    }
    _BENCH_JSON.write_text(json.dumps(point, indent=2) + "\n")
    benchmark.extra_info.update(point)

    # Identical outcomes: the decision stream, order included.
    assert store_decisions == client_decisions
    assert store_report.state_ratio == client_report.state_ratio
    # Figure 3's trade, measured: the client does materially less...
    assert ratio <= LOCAL_SECONDS_CEILING, (
        f"store-computed batches left the client {ratio:.2f}x of the "
        f"client-computed local time (ceiling {LOCAL_SECONDS_CEILING})"
    )
    assert store_stats.misses < client_stats.misses
    # ...and the network carries more — but the PR 8 wire pass keeps
    # the trade within budget, and every deferral round's pairwise
    # conflict pricing hits the per-participant assembly memo.
    assert store_bytes > client_bytes
    assert message_ratio <= MESSAGE_RATIO_CEILING, (
        f"store-computed mode paid {message_ratio:.2f}x the "
        f"client-computed messages (budget {MESSAGE_RATIO_CEILING}x)"
    )
    assert byte_ratio <= BYTE_RATIO_CEILING, (
        f"store-computed mode paid {byte_ratio:.2f}x the "
        f"client-computed bytes (budget {BYTE_RATIO_CEILING}x)"
    )
    assert store_stats.pair_hits > 0
    # The delta layer really fires: digest tokens flow on the wire.
    assert store_report.kind_counts.get("nc_unchanged", 0) > 0
