"""Figure 10: reconciliation interval vs. total reconciliation time per
participant, split into store time and local time, for both stores.

Paper's shape: with the central store, small reconciliation intervals
(many reconciliations) are significantly more expensive in total; with
the distributed store the total is dominated by per-transaction message
traffic (antecedent chasing), so the penalty for frequent reconciliation
is negligible.  Store time dominates local time in both.
"""

from __future__ import annotations

from repro.bench import fig10_rows, format_table

from benchmarks.conftest import emit

INTERVALS = (4, 20, 48)
TXNS_PER_PEER = 48


def test_fig10_interval_vs_total_reconciliation_time(benchmark):
    rows = benchmark.pedantic(
        lambda: fig10_rows(
            intervals=INTERVALS, transactions_per_peer=TXNS_PER_PEER
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            "Figure 10 — total reconciliation time per participant (10 peers, "
            f"{TXNS_PER_PEER} size-1 txns per peer)",
            ["interval", "store", "store s", "local s", "total s"],
            rows,
        )
    )
    benchmark.extra_info["rows"] = rows
    totals = {(ri, store): total for ri, store, _s, _l, total in rows}
    store_time = {(ri, store): s for ri, store, s, _l, _t in rows}

    # Shape 1: for the central store, reconciling at interval 4 (12x more
    # reconciliations) pays clearly more *store* time than interval 48 —
    # the per-reconciliation round-trip cost that drives the paper's
    # central-store curve.  (Local time is workload compute, roughly
    # constant in total across intervals, and wall-clock noisy; the store
    # component is where the figure's effect lives.)
    assert store_time[(4, "central")] > store_time[(48, "central")] * 1.5

    # Shape 2: the distributed store's penalty for frequent reconciliation
    # is comparatively small — its cost tracks the transaction volume.
    central_spread = store_time[(4, "central")] / store_time[(48, "central")]
    distributed_spread = (
        store_time[(4, "distributed")] / store_time[(48, "distributed")]
    )
    assert distributed_spread < central_spread

    # Shape 3: the distributed store is store-time dominated at every
    # interval (antecedent-chasing messages dominate).
    for interval in INTERVALS:
        row_total = totals[(interval, "distributed")]
        assert store_time[(interval, "distributed")] > row_total * 0.5
