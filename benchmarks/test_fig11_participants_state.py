"""Figure 11: the change in state ratio as the number of peers grows.

Paper's shape: more participants means more (mutually conflicting)
updates, so the state ratio grows — but decidedly sublinearly in the
number of peers, "indicating a high level of sharing among even large
numbers of peers".
"""

from __future__ import annotations

from repro.bench import fig11_rows, format_table

from benchmarks.conftest import emit

PEERS = (5, 10, 20, 35, 50)


def test_fig11_participants_vs_state_ratio(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_rows(peer_counts=PEERS, interval=4, rounds=2),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            "Figure 11 — number of participants vs state ratio "
            "(interval 4, size-1 transactions)",
            ["peers", "state ratio"],
            rows,
        )
    )
    ratios = dict(rows)
    benchmark.extra_info["rows"] = rows

    # Shape 1: divergence grows with the confederation size.
    assert ratios[50] > ratios[5]

    # Shape 2: growth is decidedly sublinear — scaling peers 10x scales
    # the ratio far less than 10x.
    assert ratios[50] / ratios[5] < 10 * 0.5

    # Sanity: every ratio is within [1, peers].
    for peers, ratio in rows:
        assert 1.0 <= ratio <= peers
