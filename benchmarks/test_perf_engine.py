"""Engine perf: incremental caching + single-pass flatten vs the seed path.

Pins the speedup of the cached reconciliation engine on the Figure 12
50-peer / central-store configuration (the local-seconds column) and
guards its correctness: the cached engine's accept/reject/defer decisions
must be byte-identical to an uncached run on a randomized 8-peer
simulation.

The baseline is a *seed-path emulation*: the engine runs with both caches
disabled and with every derivation this PR made incremental restored to
its seed form —

* update extensions use the trace-twice pattern (``flatten`` +
  ``keys_touched`` as two separate chain traces);
* conflict-group construction re-runs ``direct_conflict_points`` —
  rebuilding the per-extension key indexes per pair — for every adjacent
  pair, as the seed's ``build_conflict_groups`` did;
* ``_minimise`` restarts its full O(n²) reader/writer-index rebuild after
  every composition instead of maintaining the indexes incrementally;
* ``Update.keys_touched`` recomputes its qualified keys on every call and
  ``TransactionId`` re-hashes on every set/dict operation.

Emulation slightly *under*-counts the seed (e.g. per-update key helpers
still route through ``keys_touched`` rather than computing ``key_of``
inline), so the asserted speedup is conservative.

Emits ``BENCH_engine.json`` at the repository root — one machine-readable
trajectory point per run, uploaded as a CI artifact so the perf history
accumulates across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Set, Tuple

import importlib

import repro.core.cache as cache_module
import repro.core.engine as engine_module

#: ``repro.model``'s package attribute ``flatten`` is the *function* (it
#: shadows the submodule), so resolve the module through importlib.
flatten_module = importlib.import_module("repro.model.flatten")
from repro.confed import Confederation, ConfederationConfig
from repro.core.conflicts import (
    ConflictGroup,
    Option,
    _conflict_points,
    _effect_at_key,
    find_conflicts,
)
from repro.core.extensions import UpdateExtension, update_footprint
from repro.model.flatten import flatten, keys_touched
from repro.model.transactions import TransactionId
from repro.model.updates import Delete, Insert, Modify
from repro.workload.generator import (
    WorkloadConfig,
    WorkloadGenerator,
)

from benchmarks.conftest import emit

PEERS = 50
INTERVAL = 4
ROUNDS = 2
SEED = 42
SPEEDUP_FLOOR = 3.0

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# Seed-path emulation


def _seed_compute_update_extension(schema, graph, root, applied):
    """The seed's trace-twice extension derivation (flatten + keys_touched)."""
    members = graph.extension(root.tid, applied)
    footprint = update_footprint(graph, members)
    operations = tuple(flatten(schema, footprint))  # chain trace #1
    touched = frozenset(keys_touched(schema, footprint))  # chain trace #2
    return UpdateExtension(
        root=root.tid,
        members=tuple(members),
        operations=operations,
        touched=touched,
        priority=root.priority,
    )


def _seed_direct_conflict_points(schema, graph, left, right):
    """Seed behaviour: indexes rebuilt from scratch for every pair."""
    shared = left.member_set() & right.member_set()
    if not shared:
        return _conflict_points(schema, left.operations, right.operations)
    left_members = [tid for tid in left.members if tid not in shared]
    right_members = [tid for tid in right.members if tid not in shared]
    if not left_members or not right_members:
        return []
    left_ops = flatten(schema, update_footprint(graph, left_members))
    right_ops = flatten(schema, update_footprint(graph, right_members))
    return _conflict_points(schema, left_ops, right_ops)


def _seed_build_conflict_groups(schema, graph, deferred, cache=None, analysis=None):
    """The seed's UpdateSoftState grouping: a fresh FindConflicts pass,
    then ``direct_conflict_points`` re-run per adjacent pair."""
    adjacency = find_conflicts(schema, graph, deferred).adjacency
    members: Dict[Tuple, Set] = {}
    for tid, neighbours in adjacency.items():
        for other in neighbours:
            if other < tid:
                continue
            points = _seed_direct_conflict_points(
                schema, graph, deferred[tid], deferred[other]
            )
            for point in points:
                members.setdefault(point, set()).update((tid, other))
    groups = {}
    for (kind, key), tids in members.items():
        by_effect: Dict[object, List] = {}
        for tid in sorted(tids):
            effect = _effect_at_key(schema, deferred[tid], key)
            by_effect.setdefault(effect, []).append(tid)
        options = [
            Option(transactions=tuple(tids_for_effect), effect=effect)
            for effect, tids_for_effect in sorted(
                by_effect.items(), key=lambda item: repr(item[0])
            )
        ]
        groups[(kind, key)] = ConflictGroup(kind=kind, key=key, options=options)
    return groups


def _seed_minimise(schema, nets):
    """The seed's fixpoint minimiser: full index rebuild per composition."""
    from repro.model.flatten import _compose_pair, _reader_at, _writer_at

    updates = list(nets)
    changed = True
    while changed:
        changed = False
        readers = {}
        writers = {}
        for update in updates:
            read_key = _reader_at(schema, update)
            if read_key is not None:
                readers[read_key] = update
            write_key = _writer_at(schema, update)
            if write_key is not None:
                writers[write_key] = update
        for key, reader in readers.items():
            writer = writers.get(key)
            if writer is None or writer is reader:
                continue
            replacement = _compose_pair(reader, writer)
            if replacement is None:
                continue
            updates = [u for u in updates if u is not reader and u is not writer]
            updates.extend(replacement)
            changed = True
            break
    return updates


def _seed_single_key_touched(self, schema):
    """Unmemoized seed keys_touched for Insert/Delete."""
    rel = schema.relation(self.relation)
    row = self.row
    return ((self.relation, rel.key_of(row)),)


def _seed_modify_keys_touched(self, schema):
    """Unmemoized seed keys_touched for Modify."""
    rel = schema.relation(self.relation)
    old_key = (self.relation, rel.key_of(self.old_row))
    new_key = (self.relation, rel.key_of(self.new_row))
    if old_key == new_key:
        return (old_key,)
    return (old_key, new_key)


def _seed_tid_hash(self):
    """Uncached seed TransactionId hashing."""
    return hash((self.participant, self.sequence))


# ----------------------------------------------------------------------
# Runners


def _fig12_run(engine_caching: bool):
    config = ConfederationConfig(
        store="central",
        peers=tuple(range(1, PEERS + 1)),
        reconciliation_interval=INTERVAL,
        rounds=ROUNDS,
        workload=WorkloadConfig(transaction_size=1, seed=SEED),
        final_reconcile=True,
        engine_caching=engine_caching,
    )
    with Confederation.from_config(config) as confederation:
        return confederation.run()


def _run_cached():
    return _fig12_run(engine_caching=True)


def _run_seed_emulation(monkeypatch):
    with monkeypatch.context() as patched:
        patched.setattr(
            cache_module,
            "compute_update_extension",
            _seed_compute_update_extension,
        )
        patched.setattr(
            engine_module, "build_conflict_groups", _seed_build_conflict_groups
        )
        patched.setattr(flatten_module, "_minimise", _seed_minimise)
        patched.setattr(Insert, "keys_touched", _seed_single_key_touched)
        patched.setattr(Delete, "keys_touched", _seed_single_key_touched)
        patched.setattr(Modify, "keys_touched", _seed_modify_keys_touched)
        patched.setattr(TransactionId, "__hash__", _seed_tid_hash)
        return _fig12_run(engine_caching=False)


# ----------------------------------------------------------------------
# The headline benchmark


def test_perf_engine_cached_vs_seed_path(benchmark, monkeypatch):
    baseline = _run_seed_emulation(monkeypatch)
    cached = benchmark.pedantic(_run_cached, rounds=1, iterations=1)

    baseline_local = baseline.mean_local_seconds_per_reconciliation
    cached_local = cached.mean_local_seconds_per_reconciliation
    speedup = baseline_local / cached_local if cached_local else float("inf")
    stats = cached.cache_stats

    emit(
        f"Engine perf — Fig-12 {PEERS}-peer/central, local s per recon:\n"
        f"  seed-path baseline : {baseline_local * 1000:8.2f} ms\n"
        f"  cached engine      : {cached_local * 1000:8.2f} ms\n"
        f"  speedup            : {speedup:8.2f}x (floor {SPEEDUP_FLOOR}x)\n"
        f"  extension hit rate : {stats.hit_rate:8.2%} "
        f"({stats.hits} hits, {stats.revalidations} revalidations, "
        f"{stats.misses} misses)\n"
        f"  pair-cache hit rate: {stats.pair_hit_rate:8.2%}"
    )

    point = {
        "schema_version": 1,
        "benchmark": "engine_reconciliation",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "peers": PEERS,
            "interval": INTERVAL,
            "rounds": ROUNDS,
            "seed": SEED,
            "store": "central",
        },
        "seed_path_local_seconds_per_reconciliation": baseline_local,
        "cached_local_seconds_per_reconciliation": cached_local,
        "speedup": speedup,
        "cache_stats": stats.as_dict(),
        "state_ratio": cached.state_ratio,
    }
    _BENCH_JSON.write_text(json.dumps(point, indent=2) + "\n")

    benchmark.extra_info.update(point)

    # Same decisions, same replicas: the caches must not change outcomes.
    assert cached.state_ratio == baseline.state_ratio
    assert speedup >= SPEEDUP_FLOOR, (
        f"cached engine is only {speedup:.2f}x faster than the seed path "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


# ----------------------------------------------------------------------
# Correctness guard: byte-identical decisions on a randomized simulation


def _capture_decision_log(engine_caching: bool, seed: int = 1234):
    """Run a randomized 8-peer simulation recording every decision."""
    confederation = Confederation.from_config(
        ConfederationConfig(
            store="memory",
            peers=tuple(range(1, 9)),
            engine_caching=engine_caching,
        )
    )
    generator = WorkloadGenerator(WorkloadConfig(transaction_size=2, seed=seed))
    log = []
    for _round in range(3):
        for participant in confederation.participants:
            for _ in range(3):
                updates = generator.transaction_updates(
                    participant.id, participant.instance
                )
                if updates:
                    participant.execute(updates)
            result = participant.publish_and_reconcile()
            log.append(
                (
                    participant.id,
                    result.recno,
                    sorted(map(str, result.accepted)),
                    sorted(map(str, result.rejected)),
                    sorted(map(str, result.deferred)),
                    sorted(map(str, result.applied)),
                    sorted(
                        (str(tid), verdict.value)
                        for tid, verdict in result.decisions.items()
                    ),
                    sorted(
                        (repr(group_id), count)
                        for group_id, count in result.conflict_groups
                    ),
                )
            )
    snapshots = {
        p.id: p.instance.snapshot() for p in confederation.participants
    }
    return log, snapshots


def test_cached_engine_decisions_are_byte_identical():
    cached_log, cached_snapshots = _capture_decision_log(engine_caching=True)
    fresh_log, fresh_snapshots = _capture_decision_log(engine_caching=False)
    assert cached_log == fresh_log
    assert cached_snapshots == fresh_snapshots
