"""Figure 3, quantified: client-centric vs. network-centric reconciliation.

Figure 3 is the paper's qualitative trade-off matrix.  For the central
store we implement both columns, so the trade-off it asserts becomes
measurable: network-centric reconciliation shifts work from the client to
the store (local time drops, store-side communication grows), with
identical decisions.
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig
from repro.workload import WorkloadConfig, WorkloadGenerator

from benchmarks.conftest import emit


def run_mode(network_centric: bool):
    config = ConfederationConfig(
        store="memory",
        peers=tuple(range(1, 9)),
        network_centric=network_centric,
    )
    confederation = Confederation.from_config(config)
    store = confederation.store
    participants = confederation.participants

    generator = WorkloadGenerator(WorkloadConfig(transaction_size=2, seed=5))
    for _round in range(4):
        for participant in participants:
            for _ in range(4):
                updates = generator.transaction_updates(
                    participant.id, participant.instance
                )
                if updates:
                    participant.execute(updates)
            participant.publish_and_reconcile()

    local = sum(p.total_local_seconds() for p in participants)
    messages = store.perf.messages
    decisions = {
        p.id: (
            sorted(map(str, p.state.applied)),
            sorted(map(str, p.state.rejected)),
            sorted(map(str, p.state.deferred)),
        )
        for p in participants
    }
    return local, messages, decisions


def test_fig3_network_centric_trades_communication_for_local_work(benchmark):
    client_local, client_messages, client_decisions = benchmark.pedantic(
        lambda: run_mode(False), rounds=1, iterations=1
    )
    network_local, network_messages, network_decisions = run_mode(True)

    emit(
        "Figure 3 quantified — central store, 8 peers:\n"
        f"  client-centric : local {client_local * 1000:8.1f} ms, "
        f"{client_messages} messages\n"
        f"  network-centric: local {network_local * 1000:8.1f} ms, "
        f"{network_messages} messages"
    )

    # Identical outcomes; the modes differ only in where work happens.
    assert client_decisions == network_decisions
    # Network-centric does less work at the client...
    assert network_local < client_local
    # ...and pays for it in communication with the store.
    assert network_messages > client_messages
    benchmark.extra_info["client_local_ms"] = client_local * 1000
    benchmark.extra_info["network_local_ms"] = network_local * 1000
