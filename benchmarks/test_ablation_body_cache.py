"""Ablation: the DHT store's soft-state body cache.

"Early prototypes of our system showed it was vital to reduce the number
of messages sent between the update store and each participant."  With
the cache ablated, transaction controllers re-ship full payloads every
time an old antecedent reappears in a new chain, inflating traffic.
"""

from __future__ import annotations

from repro.cdss import Simulation, SimulationConfig
from repro.store import DhtUpdateStore
from repro.workload import WorkloadConfig, curated_schema

from benchmarks.conftest import emit


def run(cache_bodies: bool) -> int:
    store = DhtUpdateStore(curated_schema(), hosts=8, cache_bodies=cache_bodies)
    config = SimulationConfig(
        participants=8,
        reconciliation_interval=2,
        rounds=6,
        workload=WorkloadConfig(transaction_size=1, insert_fraction=0.3, seed=21),
    )
    Simulation(config, store=store).run()
    return store.perf.messages


def test_ablation_body_cache_reduces_messages(benchmark):
    cached = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    uncached = run(False)
    emit(
        "Ablation — DHT soft-state body cache:\n"
        f"  messages with cache   : {cached}\n"
        f"  messages without cache: {uncached}\n"
        f"  saved                 : {uncached - cached} "
        f"({100 * (uncached - cached) / uncached:.1f}%)"
    )
    assert cached < uncached
    benchmark.extra_info["cached"] = cached
    benchmark.extra_info["uncached"] = uncached
