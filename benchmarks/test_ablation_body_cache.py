"""Ablation: the DHT store's soft-state body cache.

"Early prototypes of our system showed it was vital to reduce the number
of messages sent between the update store and each participant."  With
the cache ablated, transaction controllers re-ship full payloads every
time an old antecedent reappears in a new chain, inflating traffic.
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig
from repro.workload import WorkloadConfig

from benchmarks.conftest import emit


def run(cache_bodies: bool) -> int:
    config = ConfederationConfig(
        store="dht",
        store_options={"hosts": 8, "cache_bodies": cache_bodies},
        peers=tuple(range(1, 9)),
        reconciliation_interval=2,
        rounds=6,
        workload=WorkloadConfig(transaction_size=1, insert_fraction=0.3, seed=21),
    )
    with Confederation.from_config(config) as confederation:
        confederation.run()
        return confederation.store.perf.messages


def test_ablation_body_cache_reduces_messages(benchmark):
    cached = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    uncached = run(False)
    emit(
        "Ablation — DHT soft-state body cache:\n"
        f"  messages with cache   : {cached}\n"
        f"  messages without cache: {uncached}\n"
        f"  saved                 : {uncached - cached} "
        f"({100 * (uncached - cached) / uncached:.1f}%)"
    )
    assert cached < uncached
    benchmark.extra_info["cached"] = cached
    benchmark.extra_info["uncached"] = uncached
