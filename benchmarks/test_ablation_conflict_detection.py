"""Ablation: hash-indexed vs. naive all-pairs conflict detection.

The paper's complexity analysis assumes "a hash table-based conflict
detection algorithm" to reach O(t^2 + t*u*a).  This benchmark builds a
realistic batch of update extensions and compares the key-indexed
``find_conflicts`` against the naive all-pairs baseline: identical
results, with the indexed version examining only extensions that share a
key.
"""

from __future__ import annotations

import time

from repro.bench.ablations import count_conflict_pairs, naive_find_conflicts
from repro.core.conflicts import find_conflicts
from repro.core.extensions import RelevantTransaction, compute_update_extension
from repro.instance import MemoryInstance
from repro.workload import WorkloadConfig, WorkloadGenerator, curated_schema

from benchmarks.conftest import emit


def build_extension_batch(peers=12, transactions_per_peer=12):
    """A batch of flattened extensions from the evaluation workload."""
    schema = curated_schema()
    generator = WorkloadGenerator(WorkloadConfig(transaction_size=2, seed=13))
    from repro.core.extensions import TransactionGraph
    from repro.model import Transaction, TransactionId

    graph = TransactionGraph()
    extensions = {}
    order = 0
    for peer in range(1, peers + 1):
        instance = MemoryInstance(schema)
        for seq in range(transactions_per_peer):
            updates = generator.transaction_updates(peer, instance)
            if not updates:
                continue
            instance.apply_all(updates)
            txn = Transaction(TransactionId(peer, seq), tuple(updates))
            graph.add(txn, (), order)
            root = RelevantTransaction(txn, priority=1, order=order)
            extensions[txn.tid] = compute_update_extension(
                schema, graph, root, set()
            )
            order += 1
    return schema, graph, extensions


def test_ablation_indexed_vs_naive_conflict_detection(benchmark):
    schema, graph, extensions = build_extension_batch()

    naive_start = time.perf_counter()
    naive = naive_find_conflicts(schema, graph, extensions)
    naive_seconds = time.perf_counter() - naive_start

    indexed = benchmark.pedantic(
        lambda: find_conflicts(schema, graph, extensions).adjacency,
        rounds=3,
        iterations=1,
    )
    indexed_start = time.perf_counter()
    find_conflicts(schema, graph, extensions)
    indexed_seconds = time.perf_counter() - indexed_start

    emit(
        f"Ablation — conflict detection over {len(extensions)} extensions:\n"
        f"  naive all-pairs : {naive_seconds * 1000:8.2f} ms\n"
        f"  key-indexed     : {indexed_seconds * 1000:8.2f} ms\n"
        f"  conflicting pairs: {count_conflict_pairs(indexed)}"
    )

    # Correctness: both algorithms find exactly the same conflicts.
    assert indexed == naive
    assert count_conflict_pairs(indexed) > 0  # the workload does collide
    benchmark.extra_info["naive_ms"] = naive_seconds * 1000
    benchmark.extra_info["conflict_pairs"] = count_conflict_pairs(indexed)
