"""Figure 8: the effect of transaction size on state ratio.

Paper's shape: going from single-update transactions to two-update
transactions sharply increases the state ratio; further size increases
have negligible effect (the curve plateaus between roughly 2.5 and 3.5).
"""

from __future__ import annotations

from repro.bench import fig8_rows, format_table

from benchmarks.conftest import emit

SIZES = (1, 2, 3, 4, 6, 8, 10)


def test_fig8_transaction_size_vs_state_ratio(benchmark):
    rows = benchmark.pedantic(
        lambda: fig8_rows(sizes=SIZES, updates_between_recons=8, rounds=5),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            "Figure 8 — transaction size vs state ratio "
            "(10 peers, 8 updates between reconciliations)",
            ["txn size", "state ratio"],
            rows,
        )
    )
    ratios = dict(rows)
    benchmark.extra_info["rows"] = rows

    # Shape 1: multi-update transactions fragment state noticeably more
    # than single-update ones.
    assert ratios[2] > ratios[1]

    # Shape 2: beyond size 2 the curve plateaus — every larger size stays
    # within a modest band of the size-2 ratio, far below linear growth.
    for size in SIZES[1:]:
        assert ratios[size] <= ratios[2] * 1.6
        assert ratios[size] >= ratios[1]

    # Sanity: ratios live in [1, #peers].
    for ratio in ratios.values():
        assert 1.0 <= ratio <= 10.0
