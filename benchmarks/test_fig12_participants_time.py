"""Figure 12: the effect on reconciliation time as peers are added.

Paper's shape: average time per reconciliation grows with the number of
participants for both stores (more transactions to consider and, for the
DHT, more messages), with the distributed store paying more store time
than the central one; reconciliation nevertheless stays inexpensive.
"""

from __future__ import annotations

from repro.bench import fig12_rows, format_table

from benchmarks.conftest import emit

PEERS = (10, 25, 50)


def test_fig12_participants_vs_reconciliation_time(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12_rows(peer_counts=PEERS, interval=4, rounds=2),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            "Figure 12 — average time per reconciliation "
            "(interval 4, size-1 transactions)",
            ["peers", "store", "store s", "local s", "total s"],
            rows,
        )
    )
    benchmark.extra_info["rows"] = rows
    totals = {(peers, store): total for peers, store, _s, _l, total in rows}
    store_s = {(peers, store): s for peers, store, s, _l, _t in rows}

    # Shape 1: cost per reconciliation grows with the confederation size.
    for store in ("central", "distributed"):
        assert totals[(50, store)] > totals[(10, store)]

    # Shape 2: the distributed store pays more store time than the central
    # store at every scale (message traffic).
    for peers in PEERS:
        assert store_s[(peers, "distributed")] > store_s[(peers, "central")]
