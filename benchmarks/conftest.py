"""Benchmark-suite configuration.

Each benchmark regenerates one figure of the paper's evaluation section,
prints its rows as a table, and asserts the figure's qualitative *shape*
(who wins, what grows, where it flattens) — absolute numbers depend on the
host and on our simulated substrate and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


def emit(table: str) -> None:
    """Print a table so ``pytest -s``/captured output carries the rows."""
    print("\n" + table + "\n")
