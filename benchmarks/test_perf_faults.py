"""Fault-tolerance perf: what replication and recovery cost (PR 6).

Section 5.2.2's failure handling is not free: with
``replication_factor=2`` every controller write is shipped to a ring
successor, and a crash + recovery adds takeover promotions and a
rebalance sweep.  This benchmark prices both against the unreplicated
store on the 5-peer evaluation schedule and pins the robustness claim
alongside the cost:

* **k=1** — the paper's unreplicated DHT (the baseline);
* **k=2** — successor replication on, fault-free;
* **k=2 + crash** — the same run suffering a controller-host crash at
  epoch 5 that recovers (rejoins and rebalances) at epoch 10.

All three must emit byte-identical decision streams — replication and
crash-masking may only cost messages and simulated seconds, never
outcomes.  The gated ``speedup`` is the message-overhead ratio
``k1_messages / k2_messages`` (dimensionless, machine-independent): it
falls if replication starts costing more traffic per unit of work.

Emits ``BENCH_faults.json`` at the repository root, gated by
``benchmarks/check_regression.py`` against
``benchmarks/BENCH_baseline.json`` and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.net import FaultPlan, HostCrash
from repro.workload import WorkloadConfig

from benchmarks.conftest import emit

PEERS = 5
HOSTS = 5
INTERVAL = 3
ROUNDS = 3
SEED = 42
#: k=2 may cost at most this many times the k=1 message count: each
#: controller write gains one replica ship + ack, but reads, batch
#: assembly, and the reconciliation protocol are unreplicated.
REPLICATION_MESSAGE_CEILING = 1.5
#: ... and the crash+recovery run at most this much over fault-free k=2
#: (takeover promotions plus the rebalance sweep).
RECOVERY_MESSAGE_CEILING = 1.3

CRASH_PLAN = FaultPlan(
    seed=6,
    crashes=(HostCrash("host:2", at_epoch=5, recover_at_epoch=10),),
)

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def _run(replication_factor, faults=None):
    config = ConfederationConfig(
        store="dht",
        store_options={
            "hosts": HOSTS,
            "replication_factor": replication_factor,
        },
        peers=tuple(range(1, PEERS + 1)),
        reconciliation_interval=INTERVAL,
        rounds=ROUNDS,
        final_reconcile=True,
        workload=WorkloadConfig(transaction_size=2, seed=SEED),
        faults=faults,
    )
    decisions = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: decisions.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        messages = confed.store.network.messages_delivered
        bytes_moved = confed.store.network.bytes_delivered
    return report, decisions, messages, bytes_moved


def test_perf_fault_tolerance(benchmark):
    k1_report, k1_decisions, k1_msgs, k1_bytes = _run(replication_factor=1)
    k2_report, k2_decisions, k2_msgs, k2_bytes = _run(replication_factor=2)
    (
        crash_report,
        crash_decisions,
        crash_msgs,
        crash_bytes,
    ) = benchmark.pedantic(
        lambda: _run(replication_factor=2, faults=CRASH_PLAN),
        rounds=1,
        iterations=1,
    )

    replication_ratio = k2_msgs / k1_msgs
    recovery_ratio = crash_msgs / k2_msgs
    speedup = k1_msgs / k2_msgs

    emit(
        f"Fault tolerance — {PEERS} peers / {HOSTS} hosts, messages:\n"
        f"  k=1 (unreplicated) : {k1_msgs:8d} ({k1_bytes} bytes)\n"
        f"  k=2 (fault-free)   : {k2_msgs:8d} ({k2_bytes} bytes, "
        f"{replication_ratio:.2f}x of k=1, ceiling "
        f"{REPLICATION_MESSAGE_CEILING})\n"
        f"  k=2 crash+recover  : {crash_msgs:8d} ({crash_bytes} bytes, "
        f"{recovery_ratio:.2f}x of fault-free k=2, ceiling "
        f"{RECOVERY_MESSAGE_CEILING}, "
        f"{crash_report.faults.recoveries} recoveries)"
    )

    point = {
        "schema_version": 1,
        "benchmark": "fault_tolerance",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": {
            "peers": PEERS,
            "hosts": HOSTS,
            "interval": INTERVAL,
            "rounds": ROUNDS,
            "seed": SEED,
            "store": "dht",
            "crash": CRASH_PLAN.to_dict()["crashes"][0],
        },
        "k1_messages": k1_msgs,
        "k2_messages": k2_msgs,
        "crash_messages": crash_msgs,
        "k1_bytes": k1_bytes,
        "k2_bytes": k2_bytes,
        "crash_bytes": crash_bytes,
        "replication_message_ratio": replication_ratio,
        "recovery_message_ratio": recovery_ratio,
        "speedup": speedup,
        "state_ratio": k2_report.state_ratio,
    }
    _BENCH_JSON.write_text(json.dumps(point, indent=2) + "\n")
    benchmark.extra_info.update(point)

    # The robustness claim: identical outcomes in all three runs.
    assert k2_decisions == k1_decisions
    assert crash_decisions == k1_decisions
    assert crash_report.state_ratio == k1_report.state_ratio
    assert crash_report.faults.injected == {"crash": 1}
    assert crash_report.faults.recoveries == 1
    # The priced costs stay within their ceilings.
    assert replication_ratio <= REPLICATION_MESSAGE_CEILING, (
        f"replication cost {replication_ratio:.2f}x of the unreplicated "
        f"message count (ceiling {REPLICATION_MESSAGE_CEILING})"
    )
    assert recovery_ratio <= RECOVERY_MESSAGE_CEILING, (
        f"crash+recovery cost {recovery_ratio:.2f}x of fault-free k=2 "
        f"(ceiling {RECOVERY_MESSAGE_CEILING})"
    )
    # Replication is not free: the replica ships really happened.
    assert k2_msgs > k1_msgs
