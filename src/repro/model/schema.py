"""Relational schemas with key and foreign-key constraints.

The paper (Definition 1) assumes a shared schema ``Sigma`` of keyed
relations.  A :class:`RelationSchema` names its attributes and designates a
subset as the primary key; a :class:`Schema` collects relations plus any
foreign keys between them.  Integrity-constraint *checking* happens in
:mod:`repro.instance`; this module only describes the constraints.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.errors import SchemaError


@dataclass(frozen=True)
class AttributeDef:
    """A single named attribute, optionally constrained to a Python type.

    ``dtype`` of ``None`` means the attribute accepts any hashable value.
    """

    name: str
    dtype: Optional[type] = None

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is admissible for this attribute."""
        if self.dtype is None:
            return True
        return isinstance(value, self.dtype)


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint from one relation's attributes to another's.

    Every combination of ``source_attributes`` values appearing in
    ``source_relation`` must appear as the key of some row of
    ``target_relation`` (whose ``target_attributes`` must be its key).
    """

    source_relation: str
    source_attributes: Tuple[str, ...]
    target_relation: str
    target_attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.source_attributes) != len(self.target_attributes):
            raise SchemaError(
                "foreign key attribute lists have different lengths: "
                f"{self.source_attributes} vs {self.target_attributes}"
            )
        if not self.source_attributes:
            raise SchemaError("foreign key must reference at least one attribute")


class RelationSchema:
    """Schema of a single relation: ordered attributes plus a primary key.

    Rows of the relation are plain tuples whose positions correspond to
    ``attributes``.  The key is the attribute subset that identifies a row;
    the paper's conflict semantics are all phrased in terms of key values.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Union[AttributeDef, str]],
        key: Iterable[str],
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        attr_defs = tuple(
            a if isinstance(a, AttributeDef) else AttributeDef(str(a))
            for a in attributes
        )
        if not attr_defs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [a.name for a in attr_defs]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        key_names = tuple(key)
        if not key_names:
            raise SchemaError(f"relation {name!r} must declare a key")
        missing = [k for k in key_names if k not in names]
        if missing:
            raise SchemaError(
                f"relation {name!r} key references unknown attributes: {missing}"
            )
        self.name = name
        self.attributes = attr_defs
        self.key = key_names
        self._positions: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._key_positions = tuple(self._positions[k] for k in key_names)
        self._arity = len(attr_defs)
        getter = operator.itemgetter(*self._key_positions)
        if len(self._key_positions) == 1:
            self._key_getter = lambda row: (getter(row),)
        else:
            self._key_getter = getter

    @property
    def arity(self) -> int:
        """Number of attributes in the relation."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the attributes, in declaration order."""
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute: str) -> int:
        """Return the column index of ``attribute``.

        Raises :class:`SchemaError` for an unknown attribute name.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def key_of(self, row: Tuple) -> Tuple:
        """Project ``row`` onto the key attributes.

        Only the row's arity is checked here — this is the hottest path in
        conflict detection.  Full validation (:meth:`validate_row`) happens
        where rows enter the system: instance application and workload
        generation.
        """
        if len(row) != self._arity:
            raise SchemaError(
                f"row for {self.name!r} has arity {len(row)}, "
                f"expected {self._arity}"
            )
        return self._key_getter(row)

    def validate_row(self, row: Tuple) -> None:
        """Raise :class:`SchemaError` unless ``row`` conforms to this schema."""
        if not isinstance(row, tuple):
            raise SchemaError(
                f"rows of {self.name!r} must be tuples, got {type(row).__name__}"
            )
        if len(row) != self.arity:
            raise SchemaError(
                f"row for {self.name!r} has arity {len(row)}, expected {self.arity}"
            )
        for attr, value in zip(self.attributes, row):
            if not attr.accepts(value):
                raise SchemaError(
                    f"value {value!r} not admissible for attribute "
                    f"{self.name}.{attr.name} (expected {attr.dtype})"
                )

    def value_of(self, row: Tuple, attribute: str) -> object:
        """Return the value of ``attribute`` in ``row``."""
        return row[self.position_of(attribute)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(a.name for a in self.attributes)
        return f"RelationSchema({self.name}({attrs}), key={self.key})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))


class Schema:
    """A database schema: a set of relations plus foreign-key constraints."""

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        rels = list(relations)
        names = [r.name for r in rels]
        if len(set(names)) != len(names):
            raise SchemaError("schema contains duplicate relation names")
        self._relations: Dict[str, RelationSchema] = {r.name: r for r in rels}
        self.foreign_keys = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        if fk.source_relation not in self._relations:
            raise SchemaError(
                f"foreign key references unknown relation {fk.source_relation!r}"
            )
        if fk.target_relation not in self._relations:
            raise SchemaError(
                f"foreign key references unknown relation {fk.target_relation!r}"
            )
        source = self._relations[fk.source_relation]
        target = self._relations[fk.target_relation]
        for attr in fk.source_attributes:
            source.position_of(attr)
        for attr in fk.target_attributes:
            target.position_of(attr)
        if tuple(fk.target_attributes) != target.key:
            raise SchemaError(
                "foreign keys must reference the full key of the target "
                f"relation; {fk.target_attributes} is not the key of "
                f"{target.name!r} ({target.key})"
            )

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Names of all relations in the schema."""
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name``.

        Raises :class:`SchemaError` for an unknown relation.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"schema has no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def foreign_keys_from(self, relation: str) -> Tuple[ForeignKey, ...]:
        """Foreign keys whose source is ``relation``."""
        return tuple(
            fk for fk in self.foreign_keys if fk.source_relation == relation
        )

    def foreign_keys_into(self, relation: str) -> Tuple[ForeignKey, ...]:
        """Foreign keys whose target is ``relation``."""
        return tuple(
            fk for fk in self.foreign_keys if fk.target_relation == relation
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(self._relations)})"
