"""Transactions: ordered groups of updates published by one participant.

The paper denotes transactions ``Xi:j`` where ``i`` is the originating
participant and ``j`` a local transaction counter assigned in increasing
order (Section 3.2).  :class:`TransactionId` reproduces that identifier and
its ordering; :class:`Transaction` pairs an id with its update sequence.

Transactions are immutable once constructed.  The epoch in which a
transaction was published is *not* part of the transaction — it is assigned
by the update store at publication time (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import UpdateError
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey
from repro.model.updates import Update


@dataclass(frozen=True, order=True)
class TransactionId:
    """The identifier ``Xi:j`` of a transaction.

    Ordering is lexicographic on ``(participant, sequence)``, matching the
    paper's assumption that identifiers are assigned in increasing order at
    each participant.

    Transaction ids live in every hot set and dict of the reconciliation
    engine, so the hash is precomputed at construction.
    """

    __slots__ = ("participant", "sequence", "_hash")

    participant: int
    sequence: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.participant, self.sequence))
        )

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        return (self.participant, self.sequence)

    def __setstate__(self, state):
        object.__setattr__(self, "participant", state[0])
        object.__setattr__(self, "sequence", state[1])
        object.__setattr__(self, "_hash", hash(state))

    def __str__(self) -> str:
        return f"X{self.participant}:{self.sequence}"


@dataclass(frozen=True)
class Transaction:
    """An ordered, non-empty group of updates with a single originator."""

    tid: TransactionId
    updates: Tuple[Update, ...]

    def __post_init__(self) -> None:
        if not self.updates:
            raise UpdateError(f"transaction {self.tid} contains no updates")
        for update in self.updates:
            if update.origin != self.tid.participant:
                raise UpdateError(
                    f"update {update} inside {self.tid} is annotated with "
                    f"origin {update.origin}, expected {self.tid.participant}"
                )

    @property
    def origin(self) -> int:
        """The participant that originated this transaction."""
        return self.tid.participant

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """All qualified keys read or written by this transaction, deduplicated."""
        seen = []
        for update in self.updates:
            for key in update.keys_touched(schema):
                if key not in seen:
                    seen.append(key)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def __str__(self) -> str:
        body = "; ".join(str(u) for u in self.updates)
        return f"{self.tid}{{{body}}}"


def make_transaction(
    participant: int, sequence: int, updates: Iterable[Update]
) -> Transaction:
    """Convenience constructor: build ``Xparticipant:sequence`` from updates."""
    return Transaction(TransactionId(participant, sequence), tuple(updates))
