"""Data model for the collaborative data sharing system.

This package defines the vocabulary the rest of the library speaks:

* :mod:`repro.model.schema` — relations, keys, and integrity constraints;
* :mod:`repro.model.tuples` — helpers for working with keyed rows;
* :mod:`repro.model.updates` — the three update operations of the paper
  (insert ``+R(a; i)``, delete ``-R(a; i)``, modify ``R(a -> a'; i)``);
* :mod:`repro.model.transactions` — transactions ``Xi:j`` grouping updates;
* :mod:`repro.model.flatten` — Heraclitus-style flattening of update
  sequences into minimal sets of net effects.
"""

from repro.model.flatten import (
    flatten,
    flatten_transactions,
    keys_read,
    keys_touched,
)
from repro.model.schema import (
    AttributeDef,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.model.transactions import (
    Transaction,
    TransactionId,
    make_transaction,
)
from repro.model.tuples import key_of, row_matches_schema
from repro.model.updates import (
    Delete,
    Insert,
    Modify,
    Update,
    updates_conflict,
)

__all__ = [
    "AttributeDef",
    "Delete",
    "ForeignKey",
    "Insert",
    "Modify",
    "RelationSchema",
    "Schema",
    "Transaction",
    "TransactionId",
    "Update",
    "flatten",
    "flatten_transactions",
    "key_of",
    "keys_read",
    "keys_touched",
    "make_transaction",
    "row_matches_schema",
    "updates_conflict",
]
