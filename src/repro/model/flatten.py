"""Flattening of update sequences into minimal sets of net effects.

Section 4.2 of the paper relies on a function ``flatten(s)`` that, given a
sequence of updates, "produces a set of mutually independent updates with
all dependency chains removed" — the Heraclitus-style delta minimisation of
Ghandeharizadeh et al.  For example the sequence

    +F(mouse, prot2, cell-resp)
    F((mouse, prot2, cell-resp) -> (mouse, prot3, cell-resp))

flattens to the single insertion ``+F(mouse, prot3, cell-resp)``: the
intermediate state never needs to exist at the reconciling participant.

The implementation models *chains*: every row value alive during the
sequence belongs to a chain that began either with an insertion (no
pre-existing state consumed) or by consuming a pre-existing row (via a
deletion or the source side of a replacement).  Replacements extend a
chain, possibly moving it to a different key.  At the end of the sequence
each chain contributes at most one net update:

* began with insert, still alive            ->  Insert(final row)
* began with insert, later consumed          ->  nothing (cancelled)
* consumed row ``a``, now dead               ->  Delete(a)
* consumed row ``a``, alive as ``a``         ->  nothing (restored)
* consumed row ``a``, alive as ``b``         ->  Modify(a -> b)

A final minimisation fixpoint composes chains that meet at a key: a
``Delete(a)`` and an ``Insert(b)`` on the same key merge into
``Modify(a -> b)``, and a consumer/producer pair whose rows are identical
cancels at that key (e.g. ``Delete((k, r))`` plus ``Modify((k2, x) -> (k,
r))`` minimises to ``Delete((k2, x))``).  The result is a *set* of
mutually independent updates — at most one reader and at most one writer
per qualified key, with no composable pair remaining.  Because members of
the set may exchange rows between keys (renames, even cyclic ones), the
set must be applied with consume-then-produce set semantics
(:meth:`repro.instance.base.Instance.apply_set`), not sequentially.

A chain that returns a key to the row it started from (e.g. ``a -> b`` then
``b -> a``) flattens to nothing, which is exactly the paper's *least
interaction* principle: a revised-away modification must not conflict with
anyone.  The keys such a chain passed through are still reported by
:func:`keys_read` / :func:`keys_touched`, because dirty-value deferral cares
about reads even when the net effect is empty.

Hot-path notes: :func:`flatten_once` performs a *single* chain trace and
returns the net operations together with the read and touched key sets as
one :class:`FlattenResult`, so callers that need all three (the engine's
update-extension computation) pay for one trace instead of two or three.
The legacy entry points (:func:`flatten`, :func:`keys_read`,
:func:`keys_touched`) are thin views over it.  The module counts tracer
runs in :func:`trace_runs` so tests can pin the one-pass guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import FlattenError
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey
from repro.model.updates import Delete, Insert, Modify, Update

#: Number of chain traces performed since interpreter start.  Tests use
#: this to assert that a code path traced a sequence exactly once.
_TRACE_RUNS = 0


def trace_runs() -> int:
    """How many times a :class:`_Tracer` has folded a sequence so far."""
    return _TRACE_RUNS


@dataclass(slots=True)
class _Chain:
    """One row lineage traced through an update sequence."""

    first_read: Optional[Tuple]  # pre-existing row consumed, if any
    first_key: QualifiedKey  # key where the chain began
    final_row: Optional[Tuple] = None  # row left behind (None = dead)
    final_key: Optional[QualifiedKey] = None  # key where final_row lives
    last_origin: int = 0
    touched: Set[QualifiedKey] = field(default_factory=set)


class _Tracer:
    """Folds an update sequence into chains, validating consistency."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._live: Dict[QualifiedKey, _Chain] = {}
        self.chains: List[_Chain] = []

    def _key(self, relation: str, row: Tuple) -> QualifiedKey:
        return (relation, self._schema.relation(relation).key_of(row))

    def _start_chain(
        self, key: QualifiedKey, read: Optional[Tuple], origin: int
    ) -> _Chain:
        chain = _Chain(first_read=read, first_key=key, last_origin=origin)
        chain.touched.add(key)
        self.chains.append(chain)
        return chain

    def _consume(self, key: QualifiedKey, row: Tuple, origin: int) -> _Chain:
        """Kill the live row under ``key`` (or consume pre-existing state)."""
        chain = self._live.pop(key, None)
        if chain is None:
            chain = self._start_chain(key, read=row, origin=origin)
        elif chain.final_row != row:
            raise FlattenError(
                f"sequence consumes row {row!r} under key {key}, but the "
                f"chain leaves {chain.final_row!r} there"
            )
        chain.final_row = None
        chain.final_key = None
        chain.last_origin = origin
        chain.touched.add(key)
        return chain

    def _produce(
        self, chain: _Chain, key: QualifiedKey, row: Tuple, origin: int
    ) -> None:
        if key in self._live:
            raise FlattenError(
                f"sequence writes {row!r} under key {key} while another "
                "chain still holds that key"
            )
        chain.final_row = row
        chain.final_key = key
        chain.last_origin = origin
        chain.touched.add(key)
        self._live[key] = chain

    def feed(self, update: Update) -> None:
        """Fold one update into the chain state."""
        if isinstance(update, Insert):
            key = self._key(update.relation, update.row)
            chain = self._start_chain(key, read=None, origin=update.origin)
            self._produce(chain, key, update.row, update.origin)
        elif isinstance(update, Delete):
            key = self._key(update.relation, update.row)
            self._consume(key, update.row, update.origin)
        elif isinstance(update, Modify):
            old_key = self._key(update.relation, update.old_row)
            new_key = self._key(update.relation, update.new_row)
            chain = self._consume(old_key, update.old_row, update.origin)
            self._produce(chain, new_key, update.new_row, update.origin)
        else:  # pragma: no cover - exhaustive over the Update union
            raise FlattenError(f"unknown update type: {update!r}")


def _trace(schema: Schema, updates: Iterable[Update]) -> List[_Chain]:
    global _TRACE_RUNS
    _TRACE_RUNS += 1
    tracer = _Tracer(schema)
    for update in updates:
        tracer.feed(update)
    return tracer.chains


def _net_update(chain: _Chain) -> Optional[Update]:
    """The net update contributed by one chain, or None if it cancelled."""
    relation = chain.first_key[0]
    if chain.first_read is None:
        if chain.final_row is None:
            return None  # inserted then consumed
        return Insert(relation, chain.final_row, chain.last_origin)
    if chain.final_row is None:
        return Delete(relation, chain.first_read, chain.last_origin)
    if chain.final_row == chain.first_read:
        return None  # restored to the original row
    return Modify(relation, chain.first_read, chain.final_row, chain.last_origin)


def _reader_at(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.read_row()
    if row is None:
        return None
    return (update.relation, schema.relation(update.relation).key_of(row))


def _writer_at(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.written_row()
    if row is None:
        return None
    return (update.relation, schema.relation(update.relation).key_of(row))


def _compose_pair(reader: Update, writer: Update) -> List[Update]:
    """Compose a reader and a writer that meet at one key.

    ``reader`` consumes row ``r`` at key ``k``; ``writer`` produces a row
    at ``k``.  When the produced row equals ``r`` the pair cancels at
    ``k`` and only their *other* ends survive; when the rows differ, a
    plain delete + insert pair still merges into a replacement.  Returns
    the replacement updates (possibly empty), or None when the pair
    cannot be composed.
    """
    consumed = reader.read_row()
    produced = writer.written_row()
    origin = writer.origin
    if consumed == produced:
        # The key ends up holding exactly the row it lost: compose out.
        if isinstance(reader, Delete) and isinstance(writer, Insert):
            return []
        if isinstance(reader, Delete) and isinstance(writer, Modify):
            return [Delete(writer.relation, writer.old_row, origin)]
        if isinstance(reader, Modify) and isinstance(writer, Insert):
            return [Insert(reader.relation, reader.new_row, reader.origin)]
        if isinstance(reader, Modify) and isinstance(writer, Modify):
            if writer.old_row == reader.new_row:
                return []
            return [
                Modify(writer.relation, writer.old_row, reader.new_row, origin)
            ]
    if isinstance(reader, Delete) and isinstance(writer, Insert):
        # Remove-then-replace expressed as two chains.
        return [Modify(reader.relation, consumed, produced, origin)]
    return None


def _minimise(schema: Schema, nets: List[Update]) -> List[Update]:
    """Worklist composition of reader/writer pairs meeting at one key.

    Guarantees that in the result no key has both a consumer of row ``r``
    and a producer of the same row ``r`` (such pairs always compose), and
    no key has both a plain Delete and a plain Insert (they merge into a
    Modify).  A key may still carry one reader and one writer from
    *different* replacements — e.g. ``Delete((k, a))`` alongside
    ``Modify((k2, x) -> (k, b))`` — which is irreducible with row-level
    update operations.

    The reader/writer indexes are maintained incrementally: each
    composition removes two updates and inserts their replacements,
    re-enqueueing only the keys the replacements occupy.  Valid inputs
    carry at most one reader and one writer per key (the tracer enforces
    this and :func:`_compose_pair` preserves it), so every key is examined
    O(1) times per composition that touches it instead of restarting a
    full O(n²) scan after every composition.
    """
    alive: Dict[int, Update] = {}  # id -> update, insertion-ordered
    readers: Dict[QualifiedKey, Update] = {}
    writers: Dict[QualifiedKey, Update] = {}
    pending: Dict[QualifiedKey, None] = {}  # insertion-ordered key worklist

    def _add(update: Update) -> None:
        alive[id(update)] = update
        read_key = _reader_at(schema, update)
        if read_key is not None:
            readers[read_key] = update
            pending[read_key] = None
        write_key = _writer_at(schema, update)
        if write_key is not None:
            writers[write_key] = update
            pending[write_key] = None

    def _remove(update: Update) -> None:
        del alive[id(update)]
        read_key = _reader_at(schema, update)
        if read_key is not None and readers.get(read_key) is update:
            del readers[read_key]
        write_key = _writer_at(schema, update)
        if write_key is not None and writers.get(write_key) is update:
            del writers[write_key]

    for update in nets:
        _add(update)
    while pending:
        key = next(iter(pending))
        del pending[key]
        reader = readers.get(key)
        writer = writers.get(key)
        if reader is None or writer is None or reader is writer:
            continue
        replacement = _compose_pair(reader, writer)
        if replacement is None:
            continue
        _remove(reader)
        _remove(writer)
        for update in replacement:
            _add(update)
    return list(alive.values())


def _sort_key(schema: Schema, update: Update) -> Tuple:
    relation = schema.relation(update.relation)
    anchor = update.read_row() if update.read_row() is not None else update.written_row()
    return (update.relation, repr(relation.key_of(anchor)))


def _net_of_chains(schema: Schema, chains: List[_Chain]) -> List[Update]:
    """Minimised, deterministically ordered net updates of traced chains."""
    nets = [
        update
        for chain in chains
        if (update := _net_update(chain)) is not None
    ]
    nets = _minimise(schema, nets)
    nets.sort(key=lambda u: _sort_key(schema, u))
    return nets


@dataclass(frozen=True)
class FlattenResult:
    """Everything one chain trace of an update sequence yields.

    * ``operations`` — the minimal set of net updates (what
      :func:`flatten` returns);
    * ``keys_read`` — keys whose pre-existing state the sequence consumed
      (what :func:`keys_read` returns);
    * ``keys_touched`` — every key the sequence read or wrote, including
      intermediate steps (what :func:`keys_touched` returns).
    """

    operations: Tuple[Update, ...]
    keys_read: frozenset
    keys_touched: frozenset


_EMPTY_RESULT = None  # initialised below, after FlattenResult exists


def _single_update_result(schema: Schema, update: Update) -> FlattenResult:
    """FlattenResult of a one-update sequence, skipping the trace.

    A single update is always its own net effect: no chain can extend,
    cancel, or compose with it.  Its touched keys are the update's own,
    and it reads pre-existing state iff it consumes a row.
    """
    read = update.read_row()
    keys = update.keys_touched(schema)
    return FlattenResult(
        operations=(update,),
        keys_read=frozenset((keys[0],)) if read is not None else frozenset(),
        keys_touched=frozenset(keys),
    )


def flatten_once(schema: Schema, updates: Iterable[Update]) -> FlattenResult:
    """Flatten a sequence and report its key footprint in a single pass.

    Equivalent to calling :func:`flatten`, :func:`keys_read`, and
    :func:`keys_touched` on the same sequence, but the chains are traced
    exactly once.  This is the entry point for the reconciliation engine,
    which needs all three views of every footprint it considers.
    Zero- and one-update sequences — the bulk of a fine-grained workload —
    short-circuit without tracing at all.
    """
    if not isinstance(updates, (list, tuple)):
        updates = list(updates)
    if not updates:
        return _EMPTY_RESULT
    if len(updates) == 1:
        return _single_update_result(schema, updates[0])
    chains = _trace(schema, updates)
    read = frozenset(
        chain.first_key for chain in chains if chain.first_read is not None
    )
    touched: Set[QualifiedKey] = set()
    for chain in chains:
        touched.update(chain.touched)
    return FlattenResult(
        operations=tuple(_net_of_chains(schema, chains)),
        keys_read=read,
        keys_touched=frozenset(touched),
    )


_EMPTY_RESULT = FlattenResult(
    operations=(), keys_read=frozenset(), keys_touched=frozenset()
)


def flatten(schema: Schema, updates: Iterable[Update]) -> List[Update]:
    """Flatten an update sequence into a minimal set of net updates.

    The result is a deterministically ordered list representing a *set*
    of mutually independent updates: at most one update consumes a row at
    any key and at most one produces a row there, and no composable pair
    remains (see :func:`_minimise`).  Chains that cancel out contribute
    nothing.  Apply the result with
    :meth:`~repro.instance.base.Instance.apply_set`.

    Raises :class:`FlattenError` if the sequence is internally inconsistent
    (e.g. it deletes a row that the chain state shows is not present).
    """
    if not isinstance(updates, (list, tuple)):
        updates = list(updates)
    if len(updates) <= 1:
        return list(updates)  # a lone update is always its own net effect
    return _net_of_chains(schema, _trace(schema, updates))


def flatten_transactions(schema: Schema, transactions: Iterable) -> List[Update]:
    """Flatten the concatenated update sequences of ordered transactions."""
    sequence: List[Update] = []
    for txn in transactions:
        sequence.extend(txn.updates)
    return flatten(schema, sequence)


def keys_read(schema: Schema, updates: Iterable[Update]) -> Set[QualifiedKey]:
    """Keys whose pre-existing state the sequence consumed.

    Includes keys whose net effect cancelled out: a chain that read a value
    and restored it still depends on that value, which matters for
    dirty-value deferral.
    """
    return {
        chain.first_key
        for chain in _trace(schema, updates)
        if chain.first_read is not None
    }


def keys_touched(schema: Schema, updates: Iterable[Update]) -> Set[QualifiedKey]:
    """All keys the sequence read or wrote, including intermediate steps."""
    touched: Set[QualifiedKey] = set()
    for chain in _trace(schema, updates):
        touched.update(chain.touched)
    return touched
