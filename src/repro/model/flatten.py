"""Flattening of update sequences into minimal sets of net effects.

Section 4.2 of the paper relies on a function ``flatten(s)`` that, given a
sequence of updates, "produces a set of mutually independent updates with
all dependency chains removed" — the Heraclitus-style delta minimisation of
Ghandeharizadeh et al.  For example the sequence

    +F(mouse, prot2, cell-resp)
    F((mouse, prot2, cell-resp) -> (mouse, prot3, cell-resp))

flattens to the single insertion ``+F(mouse, prot3, cell-resp)``: the
intermediate state never needs to exist at the reconciling participant.

The implementation models *chains*: every row value alive during the
sequence belongs to a chain that began either with an insertion (no
pre-existing state consumed) or by consuming a pre-existing row (via a
deletion or the source side of a replacement).  Replacements extend a
chain, possibly moving it to a different key.  At the end of the sequence
each chain contributes at most one net update:

* began with insert, still alive            ->  Insert(final row)
* began with insert, later consumed          ->  nothing (cancelled)
* consumed row ``a``, now dead               ->  Delete(a)
* consumed row ``a``, alive as ``a``         ->  nothing (restored)
* consumed row ``a``, alive as ``b``         ->  Modify(a -> b)

A final minimisation fixpoint composes chains that meet at a key: a
``Delete(a)`` and an ``Insert(b)`` on the same key merge into
``Modify(a -> b)``, and a consumer/producer pair whose rows are identical
cancels at that key (e.g. ``Delete((k, r))`` plus ``Modify((k2, x) -> (k,
r))`` minimises to ``Delete((k2, x))``).  The result is a *set* of
mutually independent updates — at most one reader and at most one writer
per qualified key, with no composable pair remaining.  Because members of
the set may exchange rows between keys (renames, even cyclic ones), the
set must be applied with consume-then-produce set semantics
(:meth:`repro.instance.base.Instance.apply_set`), not sequentially.

A chain that returns a key to the row it started from (e.g. ``a -> b`` then
``b -> a``) flattens to nothing, which is exactly the paper's *least
interaction* principle: a revised-away modification must not conflict with
anyone.  The keys such a chain passed through are still reported by
:func:`keys_read` / :func:`keys_touched`, because dirty-value deferral cares
about reads even when the net effect is empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import FlattenError
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey
from repro.model.updates import Delete, Insert, Modify, Update


@dataclass
class _Chain:
    """One row lineage traced through an update sequence."""

    first_read: Optional[Tuple]  # pre-existing row consumed, if any
    first_key: QualifiedKey  # key where the chain began
    final_row: Optional[Tuple] = None  # row left behind (None = dead)
    final_key: Optional[QualifiedKey] = None  # key where final_row lives
    last_origin: int = 0
    touched: Set[QualifiedKey] = field(default_factory=set)


class _Tracer:
    """Folds an update sequence into chains, validating consistency."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._live: Dict[QualifiedKey, _Chain] = {}
        self.chains: List[_Chain] = []

    def _key(self, relation: str, row: Tuple) -> QualifiedKey:
        return (relation, self._schema.relation(relation).key_of(row))

    def _start_chain(
        self, key: QualifiedKey, read: Optional[Tuple], origin: int
    ) -> _Chain:
        chain = _Chain(first_read=read, first_key=key, last_origin=origin)
        chain.touched.add(key)
        self.chains.append(chain)
        return chain

    def _consume(self, key: QualifiedKey, row: Tuple, origin: int) -> _Chain:
        """Kill the live row under ``key`` (or consume pre-existing state)."""
        chain = self._live.pop(key, None)
        if chain is None:
            chain = self._start_chain(key, read=row, origin=origin)
        elif chain.final_row != row:
            raise FlattenError(
                f"sequence consumes row {row!r} under key {key}, but the "
                f"chain leaves {chain.final_row!r} there"
            )
        chain.final_row = None
        chain.final_key = None
        chain.last_origin = origin
        chain.touched.add(key)
        return chain

    def _produce(
        self, chain: _Chain, key: QualifiedKey, row: Tuple, origin: int
    ) -> None:
        if key in self._live:
            raise FlattenError(
                f"sequence writes {row!r} under key {key} while another "
                "chain still holds that key"
            )
        chain.final_row = row
        chain.final_key = key
        chain.last_origin = origin
        chain.touched.add(key)
        self._live[key] = chain

    def feed(self, update: Update) -> None:
        """Fold one update into the chain state."""
        if isinstance(update, Insert):
            key = self._key(update.relation, update.row)
            chain = self._start_chain(key, read=None, origin=update.origin)
            self._produce(chain, key, update.row, update.origin)
        elif isinstance(update, Delete):
            key = self._key(update.relation, update.row)
            self._consume(key, update.row, update.origin)
        elif isinstance(update, Modify):
            old_key = self._key(update.relation, update.old_row)
            new_key = self._key(update.relation, update.new_row)
            chain = self._consume(old_key, update.old_row, update.origin)
            self._produce(chain, new_key, update.new_row, update.origin)
        else:  # pragma: no cover - exhaustive over the Update union
            raise FlattenError(f"unknown update type: {update!r}")


def _trace(schema: Schema, updates: Iterable[Update]) -> List[_Chain]:
    tracer = _Tracer(schema)
    for update in updates:
        tracer.feed(update)
    return tracer.chains


def _net_update(chain: _Chain) -> Optional[Update]:
    """The net update contributed by one chain, or None if it cancelled."""
    relation = chain.first_key[0]
    if chain.first_read is None:
        if chain.final_row is None:
            return None  # inserted then consumed
        return Insert(relation, chain.final_row, chain.last_origin)
    if chain.final_row is None:
        return Delete(relation, chain.first_read, chain.last_origin)
    if chain.final_row == chain.first_read:
        return None  # restored to the original row
    return Modify(relation, chain.first_read, chain.final_row, chain.last_origin)


def _reader_at(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.read_row()
    if row is None:
        return None
    return (update.relation, schema.relation(update.relation).key_of(row))


def _writer_at(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.written_row()
    if row is None:
        return None
    return (update.relation, schema.relation(update.relation).key_of(row))


def _compose_pair(reader: Update, writer: Update) -> List[Update]:
    """Compose a reader and a writer that meet at one key.

    ``reader`` consumes row ``r`` at key ``k``; ``writer`` produces a row
    at ``k``.  When the produced row equals ``r`` the pair cancels at
    ``k`` and only their *other* ends survive; when the rows differ, a
    plain delete + insert pair still merges into a replacement.  Returns
    the replacement updates (possibly empty), or None when the pair
    cannot be composed.
    """
    consumed = reader.read_row()
    produced = writer.written_row()
    origin = writer.origin
    if consumed == produced:
        # The key ends up holding exactly the row it lost: compose out.
        if isinstance(reader, Delete) and isinstance(writer, Insert):
            return []
        if isinstance(reader, Delete) and isinstance(writer, Modify):
            return [Delete(writer.relation, writer.old_row, origin)]
        if isinstance(reader, Modify) and isinstance(writer, Insert):
            return [Insert(reader.relation, reader.new_row, reader.origin)]
        if isinstance(reader, Modify) and isinstance(writer, Modify):
            if writer.old_row == reader.new_row:
                return []
            return [
                Modify(writer.relation, writer.old_row, reader.new_row, origin)
            ]
    if isinstance(reader, Delete) and isinstance(writer, Insert):
        # Remove-then-replace expressed as two chains.
        return [Modify(reader.relation, consumed, produced, origin)]
    return None


def _minimise(schema: Schema, nets: List[Update]) -> List[Update]:
    """Fixpoint composition of reader/writer pairs meeting at one key.

    Guarantees that in the result no key has both a consumer of row ``r``
    and a producer of the same row ``r`` (such pairs always compose), and
    no key has both a plain Delete and a plain Insert (they merge into a
    Modify).  A key may still carry one reader and one writer from
    *different* replacements — e.g. ``Delete((k, a))`` alongside
    ``Modify((k2, x) -> (k, b))`` — which is irreducible with row-level
    update operations.
    """
    updates = list(nets)
    changed = True
    while changed:
        changed = False
        readers: Dict[QualifiedKey, Update] = {}
        writers: Dict[QualifiedKey, Update] = {}
        for update in updates:
            read_key = _reader_at(schema, update)
            if read_key is not None:
                readers[read_key] = update
            write_key = _writer_at(schema, update)
            if write_key is not None:
                writers[write_key] = update
        for key, reader in readers.items():
            writer = writers.get(key)
            if writer is None or writer is reader:
                continue
            replacement = _compose_pair(reader, writer)
            if replacement is None:
                continue
            updates = [u for u in updates if u is not reader and u is not writer]
            updates.extend(replacement)
            changed = True
            break
    return updates


def _sort_key(schema: Schema, update: Update) -> Tuple:
    relation = schema.relation(update.relation)
    anchor = update.read_row() if update.read_row() is not None else update.written_row()
    return (update.relation, repr(relation.key_of(anchor)))


def flatten(schema: Schema, updates: Iterable[Update]) -> List[Update]:
    """Flatten an update sequence into a minimal set of net updates.

    The result is a deterministically ordered list representing a *set*
    of mutually independent updates: at most one update consumes a row at
    any key and at most one produces a row there, and no composable pair
    remains (see :func:`_minimise`).  Chains that cancel out contribute
    nothing.  Apply the result with
    :meth:`~repro.instance.base.Instance.apply_set`.

    Raises :class:`FlattenError` if the sequence is internally inconsistent
    (e.g. it deletes a row that the chain state shows is not present).
    """
    nets = [
        update
        for chain in _trace(schema, updates)
        if (update := _net_update(chain)) is not None
    ]
    nets = _minimise(schema, nets)
    nets.sort(key=lambda u: _sort_key(schema, u))
    return nets


def flatten_transactions(schema: Schema, transactions: Iterable) -> List[Update]:
    """Flatten the concatenated update sequences of ordered transactions."""
    sequence: List[Update] = []
    for txn in transactions:
        sequence.extend(txn.updates)
    return flatten(schema, sequence)


def keys_read(schema: Schema, updates: Iterable[Update]) -> Set[QualifiedKey]:
    """Keys whose pre-existing state the sequence consumed.

    Includes keys whose net effect cancelled out: a chain that read a value
    and restored it still depends on that value, which matters for
    dirty-value deferral.
    """
    return {
        chain.first_key
        for chain in _trace(schema, updates)
        if chain.first_read is not None
    }


def keys_touched(schema: Schema, updates: Iterable[Update]) -> Set[QualifiedKey]:
    """All keys the sequence read or wrote, including intermediate steps."""
    touched: Set[QualifiedKey] = set()
    for chain in _trace(schema, updates):
        touched.update(chain.touched)
    return touched
