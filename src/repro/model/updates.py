"""The three update operations of the paper, and the conflict predicate.

Section 3.2 of the paper defines updates as value-based changes annotated
with the identity of a single originating participant:

* insert tuple, ``+R(a; i)`` — :class:`Insert`;
* delete tuple, ``-R(a; i)`` — :class:`Delete`;
* modify tuple, ``R(a -> a'; i)`` — :class:`Modify`.

Section 4 defines when two updates *conflict*.  :func:`updates_conflict`
implements that definition (it is symmetric).  The cases, quoting the paper:

1. both are insertions with the same key values but different values for at
   least one other attribute;
2. one is a deletion and the other is a replacement or insertion with the
   same key values;
3. both are replacements of the same source tuple to different values.

We add one documented generalisation required for soundness once update
extensions have been *flattened* (Section 4.2): two updates that both write
a row with the same key but different row values conflict even when neither
is literally an insertion (for example an insertion and a replacement whose
*target* carries the same key).  Without this, two flattened extensions
could both be accepted yet violate the key constraint when applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import UpdateError
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey


@dataclass(frozen=True)
class Insert:
    """Insert ``row`` into ``relation``; published by participant ``origin``."""

    relation: str
    row: Tuple
    origin: int

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (the inserted row)."""
        return self.row

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (none for an insert)."""
        return None

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes."""
        rel = schema.relation(self.relation)
        return ((self.relation, rel.key_of(self.row)),)

    def __str__(self) -> str:
        return f"+{self.relation}({', '.join(map(str, self.row))}; {self.origin})"


@dataclass(frozen=True)
class Delete:
    """Delete ``row`` from ``relation``; published by participant ``origin``."""

    relation: str
    row: Tuple
    origin: int

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (none for a delete)."""
        return None

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (the deleted row)."""
        return self.row

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes."""
        rel = schema.relation(self.relation)
        return ((self.relation, rel.key_of(self.row)),)

    def __str__(self) -> str:
        return f"-{self.relation}({', '.join(map(str, self.row))}; {self.origin})"


@dataclass(frozen=True)
class Modify:
    """Replace ``old_row`` with ``new_row`` in ``relation``.

    The paper calls this a *replacement*: ``R(a -> a'; i)``.  The source and
    target rows may have different key values (a key-changing replacement).
    """

    relation: str
    old_row: Tuple
    new_row: Tuple
    origin: int

    def __post_init__(self) -> None:
        if self.old_row == self.new_row:
            raise UpdateError(
                f"modify of {self.relation} replaces a row with itself: "
                f"{self.old_row!r}"
            )

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (the replacement)."""
        return self.new_row

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (the replaced row)."""
        return self.old_row

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes."""
        rel = schema.relation(self.relation)
        old_key = (self.relation, rel.key_of(self.old_row))
        new_key = (self.relation, rel.key_of(self.new_row))
        if old_key == new_key:
            return (old_key,)
        return (old_key, new_key)

    def __str__(self) -> str:
        old = ", ".join(map(str, self.old_row))
        new = ", ".join(map(str, self.new_row))
        return f"{self.relation}({old} -> {new}; {self.origin})"


#: Any of the three update operations.
Update = Union[Insert, Delete, Modify]


def _written_key(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.written_row()
    if row is None:
        return None
    rel = schema.relation(update.relation)
    return (update.relation, rel.key_of(row))


def _deleted_key(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    if not isinstance(update, Delete):
        return None
    rel = schema.relation(update.relation)
    return (update.relation, rel.key_of(update.row))


def _source_key(schema: Schema, update: Update) -> Optional[QualifiedKey]:
    row = update.read_row()
    if row is None:
        return None
    rel = schema.relation(update.relation)
    return (update.relation, rel.key_of(row))


def updates_conflict(schema: Schema, left: Update, right: Update) -> bool:
    """Return True if the two updates conflict under the paper's definition.

    The predicate is symmetric.  Updates on different relations never
    conflict directly (they may still be jointly incompatible with an
    instance through foreign keys; that is checked against the instance,
    not pairwise).
    """
    if left.relation != right.relation:
        return False
    if left == right:
        return False

    # Case 1: two insertions of the same key with different rows.
    if isinstance(left, Insert) and isinstance(right, Insert):
        same_key = _written_key(schema, left) == _written_key(schema, right)
        return same_key and left.row != right.row

    # Case 2: a deletion against an insertion or replacement of the same key.
    for deletion, other in ((left, right), (right, left)):
        if not isinstance(deletion, Delete):
            continue
        del_key = _deleted_key(schema, deletion)
        if isinstance(other, Insert):
            if _written_key(schema, other) == del_key:
                return True
        elif isinstance(other, Modify):
            if _source_key(schema, other) == del_key:
                return True
        elif isinstance(other, Delete):
            # Two deletions of the same key but different rows consume
            # incompatible versions of the tuple.
            if del_key == _deleted_key(schema, other) and deletion.row != other.row:
                return True
        if isinstance(other, Delete):
            break  # both are deletions; avoid re-checking symmetrically

    # Case 3: two replacements of the same source tuple to different values.
    if isinstance(left, Modify) and isinstance(right, Modify):
        if left.old_row == right.old_row and left.new_row != right.new_row:
            return True

    # Generalised write/write collision (see module docstring): two updates
    # that leave different rows under the same key cannot both be applied.
    left_written = _written_key(schema, left)
    if left_written is not None and left_written == _written_key(schema, right):
        if left.written_row() != right.written_row():
            return True

    return False
