"""The three update operations of the paper, and the conflict predicate.

Section 3.2 of the paper defines updates as value-based changes annotated
with the identity of a single originating participant:

* insert tuple, ``+R(a; i)`` — :class:`Insert`;
* delete tuple, ``-R(a; i)`` — :class:`Delete`;
* modify tuple, ``R(a -> a'; i)`` — :class:`Modify`.

Section 4 defines when two updates *conflict*.  :func:`updates_conflict`
implements that definition (it is symmetric).  The cases, quoting the paper:

1. both are insertions with the same key values but different values for at
   least one other attribute;
2. one is a deletion and the other is a replacement or insertion with the
   same key values;
3. both are replacements of the same source tuple to different values.

We add one documented generalisation required for soundness once update
extensions have been *flattened* (Section 4.2): two updates that both write
a row with the same key but different row values conflict even when neither
is literally an insertion (for example an insertion and a replacement whose
*target* carries the same key).  Without this, two flattened extensions
could both be accepted yet violate the key constraint when applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import UpdateError
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey


class _SlottedFrozen:
    """Pickle support for frozen, ``__slots__``-carrying update classes.

    The default slot pickling path assigns attributes with ``setattr``,
    which a frozen dataclass forbids; route restoration through
    ``object.__setattr__`` instead.  The per-schema key memo is transient
    and is not serialised.
    """

    __slots__ = ()

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_keys_memo" and hasattr(self, slot)
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)


@dataclass(frozen=True)
class Insert(_SlottedFrozen):
    """Insert ``row`` into ``relation``; published by participant ``origin``."""

    __slots__ = ("relation", "row", "origin", "_keys_memo")

    relation: str
    row: Tuple
    origin: int

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (the inserted row)."""
        return self.row

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (none for an insert)."""
        return None

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes (memoized)."""
        try:  # inline memo fast path: this runs millions of times
            memo = self._keys_memo
            if memo[0] is schema:
                return memo[1]
        except AttributeError:
            pass
        rel = schema.relation(self.relation)
        keys = ((self.relation, rel.key_of(self.row)),)
        object.__setattr__(self, "_keys_memo", (schema, keys))
        return keys

    def __str__(self) -> str:
        return f"+{self.relation}({', '.join(map(str, self.row))}; {self.origin})"


@dataclass(frozen=True)
class Delete(_SlottedFrozen):
    """Delete ``row`` from ``relation``; published by participant ``origin``."""

    __slots__ = ("relation", "row", "origin", "_keys_memo")

    relation: str
    row: Tuple
    origin: int

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (none for a delete)."""
        return None

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (the deleted row)."""
        return self.row

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes (memoized)."""
        try:  # inline memo fast path: this runs millions of times
            memo = self._keys_memo
            if memo[0] is schema:
                return memo[1]
        except AttributeError:
            pass
        rel = schema.relation(self.relation)
        keys = ((self.relation, rel.key_of(self.row)),)
        object.__setattr__(self, "_keys_memo", (schema, keys))
        return keys

    def __str__(self) -> str:
        return f"-{self.relation}({', '.join(map(str, self.row))}; {self.origin})"


@dataclass(frozen=True)
class Modify(_SlottedFrozen):
    """Replace ``old_row`` with ``new_row`` in ``relation``.

    The paper calls this a *replacement*: ``R(a -> a'; i)``.  The source and
    target rows may have different key values (a key-changing replacement).
    """

    __slots__ = ("relation", "old_row", "new_row", "origin", "_keys_memo")

    relation: str
    old_row: Tuple
    new_row: Tuple
    origin: int

    def __post_init__(self) -> None:
        if self.old_row == self.new_row:
            raise UpdateError(
                f"modify of {self.relation} replaces a row with itself: "
                f"{self.old_row!r}"
            )

    def written_row(self) -> Optional[Tuple]:
        """The row present after applying this update (the replacement)."""
        return self.new_row

    def read_row(self) -> Optional[Tuple]:
        """The pre-existing row this update consumes (the replaced row)."""
        return self.old_row

    def keys_touched(self, schema: Schema) -> Tuple[QualifiedKey, ...]:
        """Qualified keys this update reads or writes (memoized).

        The source key comes first; a key-changing replacement appends the
        target key.  (:func:`updates_conflict` relies on this order.)
        """
        try:  # inline memo fast path: this runs millions of times
            memo = self._keys_memo
            if memo[0] is schema:
                return memo[1]
        except AttributeError:
            pass
        rel = schema.relation(self.relation)
        old_key = (self.relation, rel.key_of(self.old_row))
        new_key = (self.relation, rel.key_of(self.new_row))
        keys = (old_key,) if old_key == new_key else (old_key, new_key)
        object.__setattr__(self, "_keys_memo", (schema, keys))
        return keys

    def __str__(self) -> str:
        old = ", ".join(map(str, self.old_row))
        new = ", ".join(map(str, self.new_row))
        return f"{self.relation}({old} -> {new}; {self.origin})"


#: Any of the three update operations.
Update = Union[Insert, Delete, Modify]


def updates_conflict(schema: Schema, left: Update, right: Update) -> bool:
    """Return True if the two updates conflict under the paper's definition.

    The predicate is symmetric.  Updates on different relations never
    conflict directly (they may still be jointly incompatible with an
    instance through foreign keys; that is checked against the instance,
    not pairwise).

    This predicate runs millions of times per reconciliation epoch (it is
    the innermost comparison of hash-based conflict detection), so each
    update's qualified keys are fetched once from the ``keys_touched``
    memo and the case analysis uses direct ``type`` dispatch.
    """
    if left.relation != right.relation:
        return False
    left_type = type(left)
    right_type = type(right)
    left_keys = left.keys_touched(schema)
    right_keys = right.keys_touched(schema)

    # Case 1 + the generalised write/write collision (module docstring):
    # two updates leaving different rows under the same key cannot both
    # be applied.  (Subsumes "two insertions of the same key with
    # different rows".)
    if left_type is not Delete and right_type is not Delete:
        if left_keys[-1] == right_keys[-1]:  # written (target) keys
            if left.written_row() != right.written_row():
                return True

    # Case 2: a deletion against an insertion or replacement of the same
    # key (or a second deletion of a different row version).
    for deletion, other, del_keys, other_keys, other_type in (
        (left, right, left_keys, right_keys, right_type),
        (right, left, right_keys, left_keys, left_type),
    ):
        if type(deletion) is not Delete:
            continue
        del_key = del_keys[0]
        if other_type is Insert:
            if other_keys[-1] == del_key:
                return True
        elif other_type is Modify:
            if other_keys[0] == del_key:
                return True
        else:  # both deletions: different rows of one key are incompatible
            if del_key == other_keys[0] and deletion.row != other.row:
                return True
            break  # symmetric; no need to re-check the swapped order

    # Case 3: two replacements of the same source tuple to different values.
    if left_type is Modify and right_type is Modify:
        if left.old_row == right.old_row and left.new_row != right.new_row:
            return True

    return False
