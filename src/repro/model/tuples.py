"""Helpers for working with rows (plain tuples) under a schema.

Rows in this library are ordinary Python tuples; the schema gives them
meaning.  These helpers centralise the two operations the reconciliation
semantics performs constantly: extracting a row's key and checking that a
row conforms to its relation schema.
"""

from __future__ import annotations

from typing import Tuple

from repro.model.schema import RelationSchema, Schema

#: A fully-qualified key: the relation name plus the key-attribute values.
#: All conflict bookkeeping (dirty values, conflict groups) is keyed on this.
QualifiedKey = Tuple[str, Tuple]


def key_of(schema: Schema, relation: str, row: Tuple) -> QualifiedKey:
    """Return the qualified key ``(relation, key-values)`` of ``row``."""
    rel = schema.relation(relation)
    return (relation, rel.key_of(row))


def row_matches_schema(rel: RelationSchema, row: Tuple) -> bool:
    """Return True if ``row`` conforms to ``rel`` (arity and types)."""
    try:
        rel.validate_row(row)
    except Exception:
        return False
    return True
