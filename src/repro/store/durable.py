"""The durable update store: full history on disk, RAM O(open frontier).

The paper assumes update stores are persistent — a participant's entire
state is reconstructible from the store alone (Section 5.2) — but until
this backend every registered driver kept its log in RAM (the
``central`` driver defaults to an in-memory sqlite database and holds
its applied-set version counters in Python dicts).  ``durable`` is the
honest persistent quadrant:

* the **append-only schema** of the central store (epochs, transaction
  bodies, antecedent edges, producers, verdicts, reconciliation
  records) written to a real database file in WAL mode, reusing the
  :mod:`repro.instance.sqlite_instance` idioms — explicit transactions,
  ``repr``/``ast.literal_eval`` row codecs;
* **bounded resident memory**: transaction bodies page from disk
  through a :class:`repro.core.cache.PageCache` (LRU, ``cache_size``
  entries), so reconciling over a multi-hundred-thousand-transaction
  history keeps O(cache) bodies in RAM, not O(history);
* **spill-aware retention**: the shared context-free extension memo's
  retired entries (:meth:`~repro.store.network_centric.NetworkCentricMixin.retire_shared_entries`)
  move to the ``retired_extensions`` table instead of being dropped, so
  a participant registered after retirement pages them back in rather
  than recomputing;
* **crash recovery**: reopening a database left by a crashed process
  replays sqlite's WAL, closes any epoch whose publisher died
  mid-publication (publication batches are transactional, so a torn
  batch is impossible — the dangling epoch is simply finished empty),
  and resumes the persisted per-participant applied-set version
  counters — recovery cost is O(delta), never a full-history replay.

Reopening a confederation from disk composes with the facade's
soft-state machinery: ``Confederation.open()`` re-registers the
configured peers (this store *adopts* a participant row that already
exists on disk) and ``Confederation.restore()`` rebuilds each
participant's replica and soft state from the persisted decisions.

Unlike the ``central`` driver this backend charges no per-call JDBC
overhead: it models an embedded durable store (the paper's participants
each hold "a complete copy of the shared database"), not a remote
commercial RDBMS.
"""

from __future__ import annotations

import ast
import sqlite3
from typing import Dict, List, Optional, Sequence

from repro.core.cache import PageCache
from repro.core.decisions import ReconcileResult
from repro.core.extensions import UpdateExtension
from repro.errors import StoreError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.model.updates import Delete, Insert, Modify
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.central import _SCHEMA_SQL, CentralUpdateStore, _explode
from repro.store.registry import StoreCapabilities

_DURABLE_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS applied_versions (
    participant INTEGER PRIMARY KEY,
    version INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS retired_extensions (
    participant INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (participant, seq)
);
CREATE INDEX IF NOT EXISTS idx_decisions_ord ON decisions (ord);
"""


def _encode_extension(extension: UpdateExtension) -> str:
    """Serialise an extension as a ``repr`` literal (see sqlite_instance).

    Every field is literal-representable: transaction ids become
    ``(participant, sequence)`` pairs, updates become
    ``(kind, relation, old_row, new_row, origin)`` tuples, and the
    touched-key set is sorted so the encoding is deterministic.
    """
    operations = []
    for update in extension.operations:
        kind, old_row, new_row = _explode(update)
        operations.append((kind, update.relation, old_row, new_row, update.origin))
    payload = (
        (extension.root.participant, extension.root.sequence),
        extension.priority,
        tuple((m.participant, m.sequence) for m in extension.members),
        tuple(operations),
        tuple(sorted(extension.touched)),
    )
    return repr(payload)


def _decode_extension(text: str) -> UpdateExtension:
    """Rebuild an :func:`_encode_extension` payload.

    The decoded extension is *value*-equal to the one spilled; the
    identity-keyed shared pair memo therefore misses against it and
    re-compares, which is exactly the semantics of a cache re-fill.
    """
    root_pair, priority, members, operations, touched = ast.literal_eval(text)
    updates = []
    for kind, relation, old_row, new_row, origin in operations:
        if kind == "insert":
            updates.append(Insert(relation, new_row, origin))
        elif kind == "delete":
            updates.append(Delete(relation, old_row, origin))
        else:
            updates.append(Modify(relation, old_row, new_row, origin))
    return UpdateExtension(
        root=TransactionId(*root_pair),
        members=tuple(TransactionId(*pair) for pair in members),
        operations=tuple(updates),
        touched=frozenset(touched),
        priority=priority,
    )


class DurableUpdateStore(CentralUpdateStore):
    """Disk-backed update store with crash recovery and paged bodies.

    Inherits the central store's schema, publication protocol
    (begin/write/finish epoch), stable-epoch computation, and
    network-centric accessors; overrides persistence-relevant seams:
    the connection (a real file, shareable across scheduler threads —
    every access is serialised under ``store.lock``), participant
    registration (adopt-on-reopen), applied-set version counters
    (persisted), body loading (paged through a bounded LRU), the
    retention spill seam, and the per-call cost model (embedded, so no
    simulated JDBC overhead).
    """

    capabilities = StoreCapabilities(
        ships_context_free=True,
        shared_pair_memo=True,
        durable=True,
        network_centric_batches=True,
    )

    #: Default transaction-body page-cache capacity (entries, not bytes):
    #: large enough that an evaluation-schedule frontier never thrashes,
    #: small enough that resident memory is visibly O(cache), not
    #: O(history), at benchmark scale.
    DEFAULT_CACHE_SIZE = 1024

    def __init__(
        self,
        schema: Schema,
        path: str = ":memory:",
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        cache_size: int = DEFAULT_CACHE_SIZE,
        real_latency: bool = False,
    ) -> None:
        """``path`` is the database file (":memory:" supported for
        tests, though it obviously cannot survive a process restart);
        ``cache_size`` bounds the resident transaction bodies."""
        # Deliberately skip CentralUpdateStore.__init__: the connection
        # settings differ (file path, cross-thread access) and the JDBC
        # call overhead does not apply to an embedded store.
        UpdateStore.__init__(
            self, schema, message_latency, real_latency=real_latency
        )
        self._call_overhead = 0.0
        self.path = path
        # The threaded epoch scheduler calls into the store from worker
        # threads; every call already holds the reentrant store.lock
        # (Participant._store_call), so cross-thread use of one
        # connection is serialised and safe.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        # The standard WAL pairing: commits append to the WAL without an
        # fsync of the main database; the log itself stays consistent, so
        # crash recovery is unaffected — only the most recent commits can
        # be lost, never torn.
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.executescript(_DURABLE_SCHEMA_SQL)
        self._policies = {}
        self._applied_versions = {}
        self._page_cache = PageCache(cache_size)
        self._recover()

    # ------------------------------------------------------------------
    # Crash recovery

    def _recover(self) -> None:
        """Resume from whatever the database file holds.

        Opening the connection already replayed sqlite's WAL.  Two
        pieces of soft state are then rebuilt in O(delta):

        * any epoch still marked unfinished belongs to a publisher that
          died between ``begin_publish`` and ``finish_publish``; its
          batch either committed atomically (``write_transactions`` is
          one sqlite transaction) or not at all, so the epoch is simply
          marked finished and stops blocking the stable-epoch
          computation;
        * the per-participant applied-set version counters are loaded
          from the ``applied_versions`` table — no history replay.
        """
        with self._conn:
            self._conn.execute("UPDATE epochs SET finished = 1 WHERE finished = 0")
        for pid, version in self._conn.execute(
            "SELECT participant, version FROM applied_versions ORDER BY participant"
        ).fetchall():
            self._applied_versions[int(pid)] = int(version)

    # ------------------------------------------------------------------
    # Registration: adopt participants already on disk

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Register a participant, adopting its on-disk record if any.

        Re-registering an id already attached *in this process* is
        still an error; an id present only in the database (a previous
        incarnation of the confederation) is adopted — its decisions,
        reconciliation epoch, and version counter all resume.  This is
        what lets ``Confederation.open()`` reopen a database file.
        """
        if participant in self._policies:
            raise StoreError(f"participant {participant} already registered")
        self._policies[participant] = policy
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO participants (id) VALUES (?)",
                (participant,),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO applied_versions (participant, version)"
                " VALUES (?, 0)",
                (participant,),
            )
        self._applied_versions.setdefault(participant, 0)
        self._charge_call()

    # ------------------------------------------------------------------
    # Persisted applied-set version counters

    def _bump_applied_version(self, participant: int) -> None:
        """Bump the counter in RAM and persist it.

        May run inside an open publication transaction (covered by the
        caller's commit) or standalone (committed here immediately).
        """
        super()._bump_applied_version(participant)
        in_txn = self._conn.in_transaction
        self._conn.execute(
            "INSERT INTO applied_versions (participant, version) VALUES (?, ?)"
            " ON CONFLICT(participant) DO UPDATE SET version = excluded.version",
            (participant, self._applied_versions[participant]),
        )
        if not in_txn:
            self._conn.commit()

    # ------------------------------------------------------------------
    # Set-based decision bookkeeping
    #
    # The central store's per-transaction COUNT query is fine at the
    # evaluation schedule's scale but quadratic over a benchmark-sized
    # history (each count scans the growing decisions table).  The
    # durable backend indexes ``decisions (ord)`` and resolves a whole
    # reconciliation's retirement set in O(result) chunked queries.

    #: sqlite bind-parameter batches stay well under SQLITE_MAX_VARIABLE_NUMBER.
    _SQL_CHUNK = 400

    def _ords_for(
        self, tids: Sequence[TransactionId]
    ) -> Dict[TransactionId, int]:
        """The ``txns.ord`` of every given transaction id, batched."""
        mapping: Dict[TransactionId, int] = {}
        for start in range(0, len(tids), self._SQL_CHUNK):
            chunk = tids[start : start + self._SQL_CHUNK]
            clause = " OR ".join(
                "(participant = ? AND seq = ?)" for _ in chunk
            )
            params = [
                value
                for tid in chunk
                for value in (tid.participant, tid.sequence)
            ]
            for pid, seq, ord_ in self._conn.execute(
                f"SELECT participant, seq, ord FROM txns WHERE {clause}",
                params,
            ).fetchall():
                mapping[TransactionId(pid, seq)] = ord_
        return mapping

    def _fully_decided(
        self, result: ReconcileResult
    ) -> List[TransactionId]:
        """Roots now finally decided by every participant (batched).

        Same answer as the central store's per-transaction counts, in
        O(result) grouped queries against the ``decisions (ord)`` index.
        """
        candidates = sorted(set(result.applied) | set(result.rejected))
        if not candidates:
            return []
        total = len(self._policies)
        ords = self._ords_for(candidates)
        decided = set()
        ord_list = sorted(ords.values())
        for start in range(0, len(ord_list), self._SQL_CHUNK):
            chunk = ord_list[start : start + self._SQL_CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            rows = self._conn.execute(
                f"SELECT ord FROM decisions WHERE ord IN ({placeholders})"
                " AND verdict IN ('applied', 'rejected')"
                " GROUP BY ord HAVING COUNT(DISTINCT participant) >= ?",
                (*chunk, total),
            ).fetchall()
            decided.update(ord_ for (ord_,) in rows)
        return [tid for tid in candidates if ords.get(tid) in decided]

    def retire_shared_entries(self, roots) -> None:
        """Retire memo entries, batching their spills into one commit.

        The mixin retires entry by entry; without an enclosing
        transaction every spilled extension would pay its own commit.
        """
        if self._conn.in_transaction:
            super().retire_shared_entries(roots)
            return
        self._conn.execute("BEGIN")
        try:
            super().retire_shared_entries(roots)
        except BaseException:
            self._conn.rollback()
            raise
        self._conn.commit()

    # ------------------------------------------------------------------
    # Paged transaction bodies

    def _load_transaction(self, ord_: int) -> Transaction:
        """A transaction body, served from the LRU page cache when hot."""
        cached = self._page_cache.get(ord_)
        if cached is not None:
            return cached
        transaction = super()._load_transaction(ord_)
        self._page_cache.put(ord_, transaction)
        return transaction

    def resident_bodies(self) -> int:
        """How many transaction bodies are currently resident in RAM."""
        return len(self._page_cache)

    def page_cache_stats(self) -> dict:
        """The body page cache's counters (JSON-friendly)."""
        return self._page_cache.as_dict()

    # ------------------------------------------------------------------
    # Spill-aware shared-memo retention

    def _spill_retired(
        self, tid: TransactionId, extension: UpdateExtension
    ) -> None:
        """Move a retired/evicted context-free extension to disk."""
        in_txn = self._conn.in_transaction
        self._conn.execute(
            "INSERT OR REPLACE INTO retired_extensions"
            " (participant, seq, payload) VALUES (?, ?, ?)",
            (tid.participant, tid.sequence, _encode_extension(extension)),
        )
        if not in_txn:
            self._conn.commit()

    def _load_retired(self, tid: TransactionId) -> Optional[UpdateExtension]:
        """Page a spilled context-free extension back in, if present."""
        record = self._conn.execute(
            "SELECT payload FROM retired_extensions"
            " WHERE participant = ? AND seq = ?",
            (tid.participant, tid.sequence),
        ).fetchone()
        if record is None:
            return None
        return _decode_extension(record[0])

    def retired_extension_count(self) -> int:
        """How many retired extensions have been spilled to disk."""
        record = self._conn.execute(
            "SELECT COUNT(*) FROM retired_extensions"
        ).fetchone()
        return int(record[0])
