"""The update-store interface and performance accounting.

Section 5.2: the update store's fundamental role is "to publish and
retrieve updates, and to associate each published transaction with a
client reconciliation time."  Our interface (all implementations):

* :meth:`UpdateStore.register_participant` — join the CDSS with a trust
  policy (the store applies trust predicates store-side, as in the
  paper's central implementation, so only relevant transactions travel);
* :meth:`UpdateStore.publish` — publish a batch of transactions under a
  fresh epoch; the publisher's own transactions are recorded as applied;
* :meth:`UpdateStore.begin_reconciliation` — pick the reconciliation
  epoch (the latest *stable* epoch), gather newly relevant trusted
  transactions with priorities and the antecedent closure, and return a
  :class:`~repro.core.extensions.ReconciliationBatch`;
* :meth:`UpdateStore.complete_reconciliation` — record the participant's
  accept/reject/defer decisions so nothing is delivered twice.

The batch protocol is the **single store contract** the session layer
consumes: :meth:`UpdateStore.reconciliation_batch` dispatches to the
client-centric or network-centric assembly and always attaches the
store's declared :class:`~repro.store.registry.StoreCapabilities` so the
decision kernel can judge shipped payloads (context-free extensions, the
shared pair memo) without knowing the store's type.  Everything above
the store boundary — :class:`~repro.core.session.ReconcileSession` and
the engine — sees only the batch.

Concurrency: every store carries a reentrant ``lock``.  Stores are not
internally thread-safe; the transport layer
(:class:`~repro.cdss.participant.Participant`) holds the lock around
each store call, which is what lets the threaded epoch scheduler run
many participants' sessions concurrently against one store.

Performance accounting: every store tracks a :class:`PerfCounters` of
messages exchanged and the simulated network latency they cost.  The
central store charges one request/reply pair per API call (client-server
round trip); the DHT store charges every protocol message of Figures 6-7.
Latency per message defaults to 500 microseconds, the floor the paper
injected in its distributed experiments.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.decisions import ReconcileResult
from repro.core.extensions import ReconciliationBatch
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.net.clock import BlockingLatencyClock, LatencyClock
from repro.policy.acceptance import TrustPolicy
from repro.store.registry import StoreCapabilities

#: One-way latency charged per simulated message, in seconds (paper: the
#: distributed experiments added "a delay of at least 500 microseconds ...
#: to every message (and reply) transmission").
DEFAULT_MESSAGE_LATENCY = 500e-6


@dataclass
class PerfCounters:
    """Cumulative traffic and simulated-latency accounting for a store."""

    messages: int = 0
    simulated_seconds: float = 0.0

    def charge(self, messages: int, latency: float) -> None:
        """Record ``messages`` messages at ``latency`` seconds each."""
        self.messages += messages
        self.simulated_seconds += messages * latency

    def snapshot(self) -> "PerfCounters":
        """An independent copy (for before/after deltas)."""
        return PerfCounters(self.messages, self.simulated_seconds)

    def minus(self, earlier: "PerfCounters") -> "PerfCounters":
        """The delta between this snapshot and an earlier one."""
        return PerfCounters(
            self.messages - earlier.messages,
            self.simulated_seconds - earlier.simulated_seconds,
        )


class UpdateStore(abc.ABC):
    """Interface every update store implements."""

    #: Honest capability flags for this backend (see
    #: :class:`repro.store.registry.StoreCapabilities`).  The engine and
    #: the confederation facade consult these — never the store's
    #: concrete type — when deciding whether to adopt shipped
    #: extensions, use the shared pair memo, or request network-centric
    #: reconciliation.  The base default declares nothing beyond the
    #: store contract; subclasses override.
    capabilities: StoreCapabilities = StoreCapabilities()

    def __init__(
        self,
        schema: Schema,
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        real_latency: bool = False,
    ) -> None:
        """``real_latency=True`` makes the injected per-message delay
        *real*: after a store call, the transport pays the simulated
        seconds the call charged (the paper's experiments injected these
        delays for real; by default we only account them).  The wait
        happens in :meth:`pay_latency`, outside the store ``lock``, and
        is delegated to the store's :attr:`clock` — blocking by
        default, so a threaded schedule overlaps different
        participants' waits; the asyncio scheduler swaps in an
        awaitable clock for the duration of a run."""
        self._schema = schema
        self._message_latency = message_latency
        self._real_latency = real_latency
        #: How charged latency is paid in wall time (see
        #: :mod:`repro.net.clock`).  The asyncio epoch scheduler swaps
        #: this for an :class:`~repro.net.clock.AsyncLatencyClock`
        #: while it runs, so payments accrue to tasks instead of
        #: blocking the event loop.
        self.clock: LatencyClock = BlockingLatencyClock()
        #: Serializes store access across the threaded epoch scheduler's
        #: workers; uncontended (and therefore near-free) under the
        #: default serial schedule.
        self.lock = threading.RLock()
        self.perf = PerfCounters()
        #: Optional hook bus (``repro.confed.hooks.HookBus``), attached
        #: by ``Confederation.open()`` so stores can surface fault /
        #: retry / degraded / recovery events; ``None`` when standalone.
        self.hooks = None

    def _emit(self, event: str, **payload) -> None:
        """Emit a hook event when a bus is attached (no-op otherwise)."""
        if self.hooks is not None:
            self.hooks.emit(event, **payload)

    @property
    def schema(self) -> Schema:
        """The shared CDSS schema."""
        return self._schema

    @property
    def message_latency(self) -> float:
        """Simulated one-way latency per message, in seconds."""
        return self._message_latency

    @property
    def real_latency(self) -> bool:
        """True when charged latency is slept for real (see ``__init__``)."""
        return self._real_latency

    def pay_latency(self, seconds: float) -> None:
        """Pay ``seconds`` through the clock if delays are real.

        Part of the store contract (every :class:`UpdateStore` provides
        it; this base implementation is the default): the transport layer
        (:meth:`repro.cdss.participant.Participant._store_call`) calls it
        unconditionally with the simulated-latency delta of the store
        call it just made, *after* releasing the store lock — concurrent
        sessions wait in parallel, exactly like clients of a real
        networked store.  The wait itself is delegated to :attr:`clock`
        (never an inline ``time.sleep`` — rule RPR010): blocking under
        the serial and threaded schedules, accrued-and-awaited under the
        asyncio schedule.  Third-party drivers must not remove it; a
        driver that charged latency but never paid it would silently
        break the paper's injected-delay experiments.
        """
        if self._real_latency and seconds > 0:
            self.clock.pay(seconds)

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Add a participant and its trust policy to the confederation."""

    @abc.abstractmethod
    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a transaction batch; returns the allocated epoch.

        The publisher's transactions are recorded as applied by it (they
        are already in its local instance).  An empty batch still allocates
        and finishes an epoch, which keeps the epoch clock advancing the
        way the paper's global ordering assumes.

        ``publish`` is the one-shot form of the decoupled protocol below:
        ``begin_publish`` + ``write_transactions`` + ``finish_publish``.
        """

    # ------------------------------------------------------------------
    # Decoupled publication (Section 5.2.1)
    #
    # "Since publishing is not instantaneous, each peer records when it
    # has started publishing, and also when it has finished. ... when a
    # peer requests to reconcile after publishing, it determines the
    # latest epoch not preceded by an 'unfinished' epoch."  Exposing the
    # begin/write/finish phases lets several peers publish concurrently
    # while reconciliations only ever see stable prefixes.

    @abc.abstractmethod
    def begin_publish(self, participant: int) -> int:
        """Allocate an epoch and mark it as publishing; returns the epoch."""

    @abc.abstractmethod
    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Write transactions under an epoch opened by ``begin_publish``."""

    @abc.abstractmethod
    def finish_publish(self, participant: int, epoch: int) -> None:
        """Mark the epoch finished; it can now become stable."""

    @abc.abstractmethod
    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the participant's next reconciliation batch."""

    def begin_network_reconciliation(
        self, participant: int
    ) -> ReconciliationBatch:
        """Network-centric variant: the store precomputes each root's
        update extension *against this participant's applied set* and the
        pairwise conflict adjacency, returning a fully-assembled batch
        (see :mod:`repro.store.network_centric`).  A backend implementing
        this advertises ``network_centric_batches`` in its capability
        flags; stores that only support client-centric reconciliation
        keep this default and raise :class:`NotImplementedError`."""
        raise NotImplementedError(
            f"{type(self).__name__} supports client-centric reconciliation only"
        )

    def reconciliation_batch(
        self, participant: int, network_centric: bool = False
    ) -> ReconciliationBatch:
        """The single batch contract the session layer consumes.

        Dispatches to :meth:`begin_network_reconciliation` or
        :meth:`begin_reconciliation` and guarantees the batch carries the
        store's declared capability flags — the engine judges shipped
        payloads by those flags, never by the store's concrete type.
        """
        if network_centric:
            batch = self.begin_network_reconciliation(participant)
        else:
            batch = self.begin_reconciliation(participant)
        if batch.capabilities is None:
            batch.capabilities = self.capabilities
        return batch

    @abc.abstractmethod
    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Record the decisions of a finished reconciliation."""

    # ------------------------------------------------------------------
    # Introspection shared by benchmarks and tests

    @abc.abstractmethod
    def current_epoch(self) -> int:
        """The highest epoch allocated so far."""

    @abc.abstractmethod
    def transaction_count(self) -> int:
        """Total number of transactions ever published."""

    @abc.abstractmethod
    def last_reconciliation_epoch(self, participant: int) -> int:
        """The epoch of the participant's most recent reconciliation."""

    def decided_transactions(
        self, participant: int
    ) -> Tuple[List[Transaction], List[TransactionId], List[TransactionId]]:
        """``(applied in publish order, rejected ids, deferred ids)``.

        This is the basis of the paper's soft-state claim: "it is possible
        to reconstruct the entire state of the participant, up to his or
        her last reconciliation, from the update store."  Stores that
        cannot enumerate decisions raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state reconstruction"
        )
