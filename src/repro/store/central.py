"""The central relational update store (Section 5.2.1), on sqlite3.

The paper built this on "a major commercial RDBMS"; sqlite3 (stdlib)
stands in.  The design points the paper highlights are reproduced:

* an epoch counter implemented as a database sequence (here the
  ``epochs`` table's row ids), with *begin* and *finish* markers per
  publication, so publishing is not assumed instantaneous;
* reconciliation picks "the latest epoch not preceded by an 'unfinished'
  epoch" and records it immediately in the ``reconciliations`` table,
  holding the epochs-table lock as briefly as possible;
* trust-predicate application and update-extension assembly happen
  store-side, so only relevant transactions and their antecedent closures
  travel to the client;
* the sets of applied and rejected transactions per participant live in
  the store (the client keeps only soft state) — a participant's full
  state is reconstructible from the store alone.

Trust policies themselves are Python callables and are held by the store
process rather than serialised into SQL; the paper's store likewise knows
each peer's trust conditions.
"""

from __future__ import annotations

import ast
import sqlite3
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.decisions import ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
)
from repro.errors import StoreError, UnknownTransactionError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.model.updates import Delete, Insert, Modify, Update
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.logic import antecedent_closure, compute_antecedents
from repro.store.network_centric import NetworkCentricMixin
from repro.store.registry import StoreCapabilities

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS epochs (
    epoch INTEGER PRIMARY KEY AUTOINCREMENT,
    participant INTEGER NOT NULL,
    finished INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS participants (
    id INTEGER PRIMARY KEY,
    last_recon_epoch INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS txns (
    ord INTEGER PRIMARY KEY AUTOINCREMENT,
    participant INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    epoch INTEGER NOT NULL,
    UNIQUE (participant, seq)
);
CREATE TABLE IF NOT EXISTS txn_updates (
    ord INTEGER NOT NULL,
    idx INTEGER NOT NULL,
    kind TEXT NOT NULL,
    relation TEXT NOT NULL,
    old_row TEXT,
    new_row TEXT,
    PRIMARY KEY (ord, idx)
);
CREATE TABLE IF NOT EXISTS antecedents (
    ord INTEGER NOT NULL,
    ante_ord INTEGER NOT NULL,
    PRIMARY KEY (ord, ante_ord)
);
CREATE TABLE IF NOT EXISTS producers (
    relation TEXT NOT NULL,
    row TEXT NOT NULL,
    ord INTEGER NOT NULL,
    PRIMARY KEY (relation, row)
);
CREATE TABLE IF NOT EXISTS decisions (
    participant INTEGER NOT NULL,
    ord INTEGER NOT NULL,
    verdict TEXT NOT NULL,
    PRIMARY KEY (participant, ord)
);
CREATE TABLE IF NOT EXISTS reconciliations (
    participant INTEGER NOT NULL,
    recno INTEGER NOT NULL,
    epoch INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_txns_epoch ON txns (epoch);
CREATE INDEX IF NOT EXISTS idx_decisions ON decisions (participant, verdict);
"""


def _encode_row(row: Optional[Tuple]) -> Optional[str]:
    return None if row is None else repr(row)


def _decode_row(text: Optional[str]) -> Optional[Tuple]:
    return None if text is None else ast.literal_eval(text)


class CentralUpdateStore(NetworkCentricMixin, UpdateStore):
    """Centralised update store persisted in sqlite3."""

    capabilities = StoreCapabilities(
        ships_context_free=True,
        shared_pair_memo=True,
        durable=True,
        network_centric_batches=True,
    )

    #: Default simulated cost per store API call, in seconds.  The paper's
    #: central store was a commercial RDBMS on a separate server reached
    #: over switched 100Mb Ethernet; each of the "constant number of
    #: procedures invoked during each reconciliation" paid a network round
    #: trip plus DBMS request processing.  Our in-process sqlite pays
    #: neither, so we charge this per-call overhead to preserve the
    #: fixed-cost-per-reconciliation behaviour that drives Figure 10
    #: (frequent reconciliation is expensive on the central store).  The
    #: value is calibrated to the order of magnitude of a 2006-era JDBC
    #: procedure call against a commercial DBMS over switched Ethernet.
    DEFAULT_CALL_OVERHEAD = 0.025

    def __init__(
        self,
        schema: Schema,
        path: str = ":memory:",
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        call_overhead_seconds: float = DEFAULT_CALL_OVERHEAD,
        real_latency: bool = False,
    ) -> None:
        super().__init__(schema, message_latency, real_latency=real_latency)
        self._call_overhead = call_overhead_seconds
        # Store calls are serialized under ``self.lock`` by every caller
        # (`RPR004`), so the connection may cross scheduler worker
        # threads without its own thread affinity check.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_SCHEMA_SQL)
        self._policies: Dict[int, TrustPolicy] = {}
        # Per-participant applied-set versions for the network-centric
        # caches.  Held in memory only: a fresh store object starts at
        # version 0 with empty caches, which is trivially consistent.
        self._applied_versions: Dict[int, int] = {}

    def close(self) -> None:
        """Close the sqlite connection."""
        self._conn.close()

    def __enter__(self) -> "CentralUpdateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Add a participant and its trust policy."""
        if participant in self._policies:
            raise StoreError(f"participant {participant} already registered")
        self._policies[participant] = policy
        with self._conn:
            self._conn.execute(
                "INSERT INTO participants (id) VALUES (?)", (participant,)
            )
        self._charge_call()

    def _charge_call(self) -> None:
        """Account one client-server procedure call (request + reply,
        plus the simulated DBMS round-trip overhead)."""
        self.perf.charge(2, self._message_latency)
        self.perf.simulated_seconds += self._call_overhead

    def _policy_of(self, participant: int) -> TrustPolicy:
        try:
            return self._policies[participant]
        except KeyError:
            raise StoreError(
                f"participant {participant} is not registered"
            ) from None

    # ------------------------------------------------------------------
    # Publication (begin epoch -> write transactions -> finish epoch)

    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a batch under a fresh epoch; see the base class."""
        epoch = self.begin_publish(participant)
        try:
            self.write_transactions(participant, epoch, transactions)
        finally:
            # Mark the epoch finished even on failure so it never blocks
            # the stable-epoch computation forever (aborted publications
            # contribute an empty epoch).
            self.finish_publish(participant, epoch)
        return epoch

    def begin_publish(self, participant: int) -> int:
        """Allocate an epoch and record that publishing has started."""
        self._policy_of(participant)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO epochs (participant, finished) VALUES (?, 0)",
                (participant,),
            )
            epoch = int(cursor.lastrowid)
        self._charge_call()
        return epoch

    def _validate_open_epoch(self, participant: int, epoch: int) -> None:
        record = self._conn.execute(
            "SELECT participant, finished FROM epochs WHERE epoch = ?",
            (epoch,),
        ).fetchone()
        if record is None or int(record[0]) != participant:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        if int(record[1]):
            raise StoreError(f"epoch {epoch} is already finished")

    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Write transactions under an open epoch."""
        self._validate_open_epoch(participant, epoch)
        with self._conn:
            for transaction in transactions:
                self._write_transaction(participant, epoch, transaction)
        self._charge_call()

    def finish_publish(self, participant: int, epoch: int) -> None:
        """Record that the peer has finished writing this epoch."""
        self._validate_open_epoch(participant, epoch)
        with self._conn:
            self._conn.execute(
                "UPDATE epochs SET finished = 1 WHERE epoch = ?", (epoch,)
            )
        self._charge_call()

    def _write_transaction(
        self, participant: int, epoch: int, transaction: Transaction
    ) -> None:
        if transaction.origin != participant:
            raise StoreError(
                f"participant {participant} cannot publish {transaction.tid}"
            )
        producers = self._producer_lookup(transaction)
        antecedents = compute_antecedents(producers, transaction)
        try:
            cursor = self._conn.execute(
                "INSERT INTO txns (participant, seq, epoch) VALUES (?, ?, ?)",
                (transaction.tid.participant, transaction.tid.sequence, epoch),
            )
        except sqlite3.IntegrityError:
            raise StoreError(
                f"transaction {transaction.tid} was already published"
            ) from None
        ord_ = int(cursor.lastrowid)
        for idx, update in enumerate(transaction.updates):
            kind, old_row, new_row = _explode(update)
            self._conn.execute(
                "INSERT INTO txn_updates (ord, idx, kind, relation, old_row,"
                " new_row) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    ord_,
                    idx,
                    kind,
                    update.relation,
                    _encode_row(old_row),
                    _encode_row(new_row),
                ),
            )
            written = update.written_row()
            if written is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO producers (relation, row, ord)"
                    " VALUES (?, ?, ?)",
                    (update.relation, _encode_row(written), ord_),
                )
        for ante in antecedents:
            ante_ord = self._ord_of(ante)
            self._conn.execute(
                "INSERT OR IGNORE INTO antecedents (ord, ante_ord)"
                " VALUES (?, ?)",
                (ord_, ante_ord),
            )
        # The publisher has, by definition, applied its own transaction.
        self._conn.execute(
            "INSERT OR REPLACE INTO decisions (participant, ord, verdict)"
            " VALUES (?, ?, 'applied')",
            (participant, ord_),
        )
        self._bump_applied_version(participant)

    def _producer_lookup(self, transaction: Transaction):
        """A mapping view good enough for ``compute_antecedents``."""
        store = self

        class _View(dict):
            # Intentional docstring gap: this is dict.get's contract
            # verbatim, narrowed to the producers table.
            def get(self, key, default=None):  # noqa: D102
                relation, row = key
                record = store._conn.execute(
                    "SELECT ord FROM producers WHERE relation = ? AND row = ?",
                    (relation, _encode_row(row)),
                ).fetchone()
                if record is None:
                    return default
                return store._tid_of(int(record[0]))

        return _View()

    # ------------------------------------------------------------------
    # Reconciliation

    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the next batch; see the base class."""
        policy = self._policy_of(participant)
        last = self.last_reconciliation_epoch(participant)

        # Stable epoch: largest prefix of finished epochs.  The paper holds
        # the epochs-table lock just long enough to read this and record
        # the reconciliation; sqlite's connection-level transaction gives
        # the same effect.
        with self._conn:
            record = self._conn.execute(
                "SELECT COALESCE(MIN(epoch) - 1, "
                " (SELECT COALESCE(MAX(epoch), 0) FROM epochs))"
                " FROM epochs WHERE finished = 0"
            ).fetchone()
            recon_epoch = int(record[0])
            self._conn.execute(
                "INSERT INTO reconciliations (participant, recno, epoch)"
                " VALUES (?, ?, ?)",
                (participant, recon_epoch, recon_epoch),
            )
            self._conn.execute(
                "UPDATE participants SET last_recon_epoch = ? WHERE id = ?",
                (recon_epoch, participant),
            )

        rows = self._conn.execute(
            "SELECT t.ord FROM txns t"
            " WHERE t.epoch > ? AND t.epoch <= ? AND t.participant != ?"
            " AND NOT EXISTS (SELECT 1 FROM decisions d WHERE"
            "   d.participant = ? AND d.ord = t.ord)"
            " ORDER BY t.ord",
            (last, recon_epoch, participant, participant),
        ).fetchall()

        roots: List[RelevantTransaction] = []
        for (ord_,) in rows:
            transaction = self._load_transaction(ord_)
            priority = policy.priority_of(self._schema, transaction)
            if priority <= 0:
                continue
            roots.append(
                RelevantTransaction(
                    transaction=transaction, priority=priority, order=ord_
                )
            )

        applied = self._decided_ords(participant, "applied")
        graph = TransactionGraph()
        closure = antecedent_closure(
            lambda tid: self._antecedent_tids(self._ord_of(tid)),
            [root.tid for root in roots],
            stop={self._tid_of(o) for o in applied},
        )
        for tid in closure:
            ord_ = self._ord_of(tid)
            graph.add(
                self._load_transaction(ord_),
                self._antecedent_tids(ord_),
                ord_,
            )

        self._charge_call()
        batch = ReconciliationBatch(
            recno=recon_epoch,
            roots=sorted(roots, key=lambda r: r.order),
            graph=graph,
        )
        # Derived data riding along with the closure transactions: the
        # flattened context-free extensions, computed once per published
        # transaction for the whole confederation (see the mixin).
        self.ship_context_free_extensions(batch)
        return batch

    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Record decisions; see the base class."""
        with self._conn:
            for tid in result.applied:
                self._record_decision(participant, tid, "applied")
            for tid in result.rejected:
                self._record_decision(participant, tid, "rejected")
            for tid in result.deferred:
                self._record_decision(participant, tid, "deferred")
        if result.applied:
            self._bump_applied_version(participant)
        self.retire_shared_entries(self._fully_decided(result))
        self._charge_call()

    def _fully_decided(
        self, result: ReconcileResult
    ) -> List[TransactionId]:
        """Roots of this result now finally decided by every participant."""
        candidates = set(result.applied) | set(result.rejected)
        if not candidates:
            return []
        total = len(self._policies)
        retired: List[TransactionId] = []
        for tid in sorted(candidates):
            (count,) = self._conn.execute(
                "SELECT COUNT(DISTINCT participant) FROM decisions"
                " WHERE ord = ? AND verdict IN ('applied', 'rejected')",
                (self._ord_of(tid),),
            ).fetchone()
            if count >= total:
                retired.append(tid)
        return retired

    def _bump_applied_version(self, participant: int) -> None:
        self._applied_versions[participant] = (
            self._applied_versions.get(participant, 0) + 1
        )

    def _record_decision(
        self, participant: int, tid: TransactionId, verdict: str
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO decisions (participant, ord, verdict)"
            " VALUES (?, ?, ?)",
            (participant, self._ord_of(tid), verdict),
        )

    # ------------------------------------------------------------------
    # Introspection

    def current_epoch(self) -> int:
        """The highest epoch allocated so far."""
        record = self._conn.execute(
            "SELECT COALESCE(MAX(epoch), 0) FROM epochs"
        ).fetchone()
        return int(record[0])

    def transaction_count(self) -> int:
        """Total number of transactions ever published."""
        record = self._conn.execute("SELECT COUNT(*) FROM txns").fetchone()
        return int(record[0])

    def last_reconciliation_epoch(self, participant: int) -> int:
        """The participant's most recent reconciliation epoch."""
        record = self._conn.execute(
            "SELECT last_recon_epoch FROM participants WHERE id = ?",
            (participant,),
        ).fetchone()
        if record is None:
            raise StoreError(f"participant {participant} is not registered")
        return int(record[0])

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """The antecedents computed for ``tid`` at publish time."""
        return self._antecedent_tids(self._ord_of(tid))

    def epoch_of(self, tid: TransactionId) -> int:
        """The epoch ``tid`` was published in."""
        record = self._conn.execute(
            "SELECT epoch FROM txns WHERE participant = ? AND seq = ?",
            (tid.participant, tid.sequence),
        ).fetchone()
        if record is None:
            raise UnknownTransactionError(str(tid))
        return int(record[0])

    def decided_transactions(self, participant: int):
        """Applied transactions (publish order) plus rejected/deferred ids."""
        applied_ords = sorted(self._decided_ords(participant, "applied"))
        return (
            [self._load_transaction(ord_) for ord_ in applied_ords],
            sorted(
                self._tid_of(o)
                for o in self._decided_ords(participant, "rejected")
            ),
            sorted(
                self._tid_of(o)
                for o in self._decided_ords(participant, "deferred")
            ),
        )

    # ------------------------------------------------------------------
    # Network-centric accessors (see repro.store.network_centric)

    def _nc_deferred_tids(self, participant: int):
        ords = sorted(self._decided_ords(participant, "deferred"))
        return [self._tid_of(o) for o in ords]

    def _nc_applied_tids(self, participant: int):
        return {
            self._tid_of(o) for o in self._decided_ords(participant, "applied")
        }

    def _nc_applied_version(self, participant: int) -> int:
        return self._applied_versions.get(participant, 0)

    def _nc_lookup(self, tid: TransactionId):
        ord_ = self._ord_of(tid)
        return self._load_transaction(ord_), self._antecedent_tids(ord_), ord_

    def _nc_priority(self, participant: int, transaction: Transaction) -> int:
        return self._policy_of(participant).priority_of(
            self._schema, transaction
        )

    # ------------------------------------------------------------------
    # Row/transaction codecs

    def _ord_of(self, tid: TransactionId) -> int:
        record = self._conn.execute(
            "SELECT ord FROM txns WHERE participant = ? AND seq = ?",
            (tid.participant, tid.sequence),
        ).fetchone()
        if record is None:
            raise UnknownTransactionError(str(tid))
        return int(record[0])

    def _tid_of(self, ord_: int) -> TransactionId:
        record = self._conn.execute(
            "SELECT participant, seq FROM txns WHERE ord = ?", (ord_,)
        ).fetchone()
        if record is None:
            raise UnknownTransactionError(f"ord={ord_}")
        return TransactionId(int(record[0]), int(record[1]))

    def _antecedent_tids(self, ord_: int) -> Tuple[TransactionId, ...]:
        rows = self._conn.execute(
            "SELECT t.participant, t.seq FROM antecedents a"
            " JOIN txns t ON t.ord = a.ante_ord WHERE a.ord = ?"
            " ORDER BY t.ord",
            (ord_,),
        ).fetchall()
        return tuple(TransactionId(int(p), int(s)) for p, s in rows)

    def _decided_ords(self, participant: int, verdict: str) -> Set[int]:
        rows = self._conn.execute(
            "SELECT ord FROM decisions WHERE participant = ? AND verdict = ?",
            (participant, verdict),
        ).fetchall()
        return {int(r[0]) for r in rows}

    def _load_transaction(self, ord_: int) -> Transaction:
        tid = self._tid_of(ord_)
        rows = self._conn.execute(
            "SELECT kind, relation, old_row, new_row FROM txn_updates"
            " WHERE ord = ? ORDER BY idx",
            (ord_,),
        ).fetchall()
        updates: List[Update] = []
        for kind, relation, old_text, new_text in rows:
            old_row = _decode_row(old_text)
            new_row = _decode_row(new_text)
            if kind == "insert":
                updates.append(Insert(relation, new_row, tid.participant))
            elif kind == "delete":
                updates.append(Delete(relation, old_row, tid.participant))
            else:
                updates.append(
                    Modify(relation, old_row, new_row, tid.participant)
                )
        return Transaction(tid, tuple(updates))


def _explode(update: Update) -> Tuple[str, Optional[Tuple], Optional[Tuple]]:
    """Decompose an update into (kind, old_row, new_row) for storage."""
    if isinstance(update, Insert):
        return "insert", None, update.row
    if isinstance(update, Delete):
        return "delete", update.row, None
    return "modify", update.old_row, update.new_row
