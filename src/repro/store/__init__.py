"""Update stores: the publication and retrieval substrate (Section 5.2).

The update store logs published transactions with their epochs, computes
antecedent edges at publish time, applies trust predicates, assembles
reconciliation batches, and records each participant's decisions so no
transaction is delivered twice.

Four implementations share the :class:`repro.store.base.UpdateStore`
interface and are registered in the **driver registry**
(:mod:`repro.store.registry`) so backends are selected by name with
honest capability flags:

* ``memory`` — :class:`repro.store.memory.MemoryUpdateStore` — plain
  in-process state; fastest, used by the state-ratio simulations; ships
  context-free extensions and the shared pair memo;
* ``central`` — :class:`repro.store.central.CentralUpdateStore` — the
  paper's central relational store (Section 5.2.1), here on sqlite3,
  with the epoch begin/finish protocol and stable-epoch computation;
  durable, ships context-free extensions and the shared pair memo;
* ``durable`` — :class:`repro.store.durable.DurableUpdateStore` — the
  persistent quadrant (PR 9): the central store's append-only schema on
  a real database file (WAL mode, crash recovery, adopt-on-reopen),
  transaction bodies paged through a bounded LRU so resident memory is
  O(open frontier), and retired shared-memo entries spilled to disk
  instead of dropped;
* ``dht`` — :class:`repro.store.dht.DhtUpdateStore` — the paper's
  distributed store (Section 5.2.2), simulated over a Pastry-style ring
  with per-message latency and byte accounting (Figures 6-7); since
  PR 3 its transaction controllers derive context-free extensions at
  publish time and ship them on fetch, with a confederation-wide pair
  memo (``ships_context_free=True``, ``shared_pair_memo=True``;
  ``ship_context_free=False`` restores the paper's client-compute-only
  behaviour); since PR 5 it also serves *fully* network-centric batches
  (``network_centric_batches=True``): controllers derive each
  participant's extensions against that participant's applied set over
  the ring, closing the last quadrant of Figure 3.

New backends call :func:`repro.store.registry.register_store` and become
selectable from a :class:`repro.confed.ConfederationConfig` without any
engine changes.
"""

from repro.store.base import PerfCounters, UpdateStore
from repro.store.central import CentralUpdateStore
from repro.store.dht import DhtUpdateStore
from repro.store.durable import DurableUpdateStore
from repro.store.memory import MemoryUpdateStore
from repro.store.registry import (
    StoreCapabilities,
    StoreDriver,
    available_stores,
    create_store,
    register_store,
    store_capabilities,
    store_driver,
    unregister_store,
)

register_store(
    "memory",
    lambda schema, **options: MemoryUpdateStore(schema, **options),
    MemoryUpdateStore.capabilities,
)
register_store(
    "central",
    lambda schema, **options: CentralUpdateStore(schema, **options),
    CentralUpdateStore.capabilities,
)
register_store(
    "dht",
    lambda schema, **options: DhtUpdateStore(schema, **options),
    DhtUpdateStore.capabilities,
)
register_store(
    "durable",
    lambda schema, **options: DurableUpdateStore(schema, **options),
    DurableUpdateStore.capabilities,
)

__all__ = [
    "CentralUpdateStore",
    "DhtUpdateStore",
    "DurableUpdateStore",
    "MemoryUpdateStore",
    "PerfCounters",
    "StoreCapabilities",
    "StoreDriver",
    "UpdateStore",
    "available_stores",
    "create_store",
    "register_store",
    "store_capabilities",
    "store_driver",
    "unregister_store",
]
