"""Update stores: the publication and retrieval substrate (Section 5.2).

The update store logs published transactions with their epochs, computes
antecedent edges at publish time, applies trust predicates, assembles
reconciliation batches, and records each participant's decisions so no
transaction is delivered twice.

Three implementations share the :class:`repro.store.base.UpdateStore`
interface:

* :class:`repro.store.memory.MemoryUpdateStore` — plain in-process state;
  fastest, used by the state-ratio simulations;
* :class:`repro.store.central.CentralUpdateStore` — the paper's central
  relational store (Section 5.2.1), here on sqlite3, with the epoch
  begin/finish protocol and stable-epoch computation;
* :class:`repro.store.dht.DhtUpdateStore` — the paper's distributed store
  (Section 5.2.2), simulated over a Pastry-style ring with per-message
  latency accounting (Figures 6-7).
"""

from repro.store.base import PerfCounters, UpdateStore
from repro.store.central import CentralUpdateStore
from repro.store.dht import DhtUpdateStore
from repro.store.memory import MemoryUpdateStore

__all__ = [
    "CentralUpdateStore",
    "DhtUpdateStore",
    "MemoryUpdateStore",
    "PerfCounters",
    "UpdateStore",
]
