"""The DHT-based distributed update store (Section 5.2.2, Figures 6-7).

The paper built this on FreePastry with all nodes on one server and at
least 500 microseconds charged per message.  Here the DHT is simulated on
:mod:`repro.net`: the participants' host nodes form a consistent-hashing
ring, and the store's logical roles are mapped onto them by key ownership:

* the **epoch allocator** owns the predesignated key ``"epoch-allocator"``
  and hands out the epoch counter;
* the **epoch controller** for epoch ``e`` owns ``"epoch:e"`` and records
  which transactions were published in ``e`` and whether the epoch is
  complete;
* the **transaction controller** for transaction ``X`` owns ``"txn:X"``
  and stores the transaction, its antecedents, its publish order, each
  peer's decision about it, and — because trust conditions live in the
  store — answers requests with the requester's priority for ``X``;
* the **value controller** for a row value owns ``"value:R:row"`` and
  maintains the producer index used to compute antecedents at publish
  time (an addition over the paper's prose, which does not say where
  ``ante`` is computed; DESIGN.md discusses this substitution);
* the **peer coordinator** for participant ``p`` owns ``"peer:p"`` and
  records ``p``'s reconciliation epochs.

Publication follows Figure 6 message-for-message; retrieval follows
Figure 7, including controller-side forwarding of antecedent requests so
the reconciling peer never chases chains itself.  Every message costs the
configured latency and is accounted serially, reproducing the paper's
message-count-dominated cost regime.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.decisions import ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
)
from repro.errors import StoreError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.net.ring import HashRing
from repro.net.simnet import Message, Network, Node
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.registry import StoreCapabilities

#: Publish order is (epoch, index within epoch) flattened to one integer.
_EPOCH_STRIDE = 1_000_000

#: Updates per message fragment: DHT messages are size-bounded, so a
#: transaction body travels as ceil(updates / this) fragments, each paying
#: the per-message latency.  Updates carry full tuple values (often two
#: tuples, for replacements), so one update per fragment is the realistic
#: granularity.  This keeps distributed reconciliation cost proportional
#: to the volume of transaction data moved — the regime the paper observes
#: ("requests to follow antecedent transaction chains dominate the running
#: time").
_UPDATES_PER_FRAGMENT = 1


def _payload_fragments(transaction: Transaction) -> int:
    """Fragments needed to ship a transaction body."""
    updates = len(transaction.updates)
    return max(1, -(-updates // _UPDATES_PER_FRAGMENT))


class _RingView:
    """A failure-aware view of the ring, shared by the store and all hosts.

    Ownership of a key routes to the next live node clockwise when the
    primary owner has failed — the standard DHT takeover rule.
    """

    def __init__(self, ring: HashRing) -> None:
        self._ring = ring
        self.failed: set = set()

    def owner(self, key: str) -> str:
        if self.failed:
            return self._ring.owner_excluding(key, self.failed)
        return self._ring.owner(key)


class _HostNode(Node):
    """One physical DHT peer, hosting whatever roles the ring assigns it."""

    def __init__(self, name: str, schema: Schema, cache_bodies: bool = True) -> None:
        super().__init__(name)
        self._schema = schema
        self._cache_bodies = cache_bodies
        # Epoch-allocator role.
        self.epoch_counter = 0
        # Epoch-controller role: epoch -> record.
        self.epochs: Dict[int, Dict[str, Any]] = {}
        # Transaction-controller role: tid -> record.
        self.txns: Dict[TransactionId, Dict[str, Any]] = {}
        # Value-controller role: (relation, row) -> producing tid.
        self.producers: Dict[Tuple[str, Tuple], TransactionId] = {}
        # Peer-coordinator role: participant -> record.
        self.peers: Dict[int, Dict[str, Any]] = {}
        # Trust conditions, replicated to every node at registration.
        self.policies: Dict[int, TrustPolicy] = {}
        # Failure-aware ring view, set by the store after construction.
        self.ring: Optional["_RingView"] = None
        # Dedup of served antecedent-forwarded requests: (token, tid).
        self.served: Set[Tuple[str, TransactionId]] = set()
        # Transactions whose full body each participant has already
        # received.  Clients cache transaction bodies in their soft state
        # (Section 5.2), so later deliveries of the same transaction —
        # e.g. an old antecedent reappearing in a new chain — only need a
        # small header, not the payload.
        self.delivered: Set[Tuple[int, TransactionId]] = set()

    # ------------------------------------------------------------------

    def handle(self, network: Network, message: Message) -> None:
        """Dispatch on message kind."""
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise StoreError(f"host cannot handle message kind {message.kind!r}")
        handler(network, message)

    # -- registration ---------------------------------------------------

    def _on_register_policy(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.policies[payload["participant"]] = payload["policy"]

    # -- epoch allocator (Figure 6, messages 1-4) -----------------------

    def _on_request_epoch(self, network: Network, message: Message) -> None:
        self.epoch_counter += 1
        epoch = self.epoch_counter
        controller = self.ring.owner(f"epoch:{epoch}")
        network.send(
            self.name,
            controller,
            "begin_epoch",
            epoch=epoch,
            publisher=message.payload["publisher"],
            reply_to=message.sender,
        )

    def _on_begin_epoch(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.epochs[payload["epoch"]] = {
            "publisher": payload["publisher"],
            "ids": [],
            "complete": False,
        }
        allocator = self.ring.owner("epoch-allocator")
        network.send(
            self.name,
            allocator,
            "epoch_begun",
            epoch=payload["epoch"],
            reply_to=payload["reply_to"],
        )

    def _on_epoch_begun(self, network: Network, message: Message) -> None:
        payload = message.payload
        network.send(
            self.name,
            payload["reply_to"],
            "begin_publishing",
            epoch=payload["epoch"],
        )

    def _on_get_current_epoch(self, network: Network, message: Message) -> None:
        network.send(
            self.name, message.sender, "current_epoch", epoch=self.epoch_counter
        )

    def _on_poll_max_epoch(self, network: Network, message: Message) -> None:
        """Report the largest epoch this node has seen (allocator recovery).

        Section 5.2.2: "if this peer were to fail, its data could be
        reconstructed by polling for the largest epoch present in the
        system" — every node answers with the largest epoch among those it
        controls (or has allocated).
        """
        known = max(self.epochs, default=0)
        network.send(
            self.name,
            message.sender,
            "max_epoch",
            epoch=max(known, self.epoch_counter),
        )

    def _on_set_epoch_counter(self, network: Network, message: Message) -> None:
        self.epoch_counter = max(self.epoch_counter, message.payload["epoch"])
        network.send(
            self.name, message.sender, "epoch_counter_set",
            epoch=self.epoch_counter,
        )

    # -- epoch controller (Figure 6, messages 5-6) ----------------------

    def _on_publish_ids(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.epochs.get(payload["epoch"])
        if record is None:  # pragma: no cover - protocol guarantee
            raise StoreError(f"epoch {payload['epoch']} was never begun here")
        record["ids"] = list(payload["ids"])
        record["complete"] = True
        network.send(
            self.name,
            message.sender,
            "epoch_finished",
            epoch=payload["epoch"],
        )

    def _on_get_epoch_contents(self, network: Network, message: Message) -> None:
        """Serve the contents of every requested epoch this node controls.

        The reconciling peer batches all epochs owned by the same
        controller into one request, so the per-reconciliation overhead is
        one round trip per *distinct controller*, not per epoch.
        """
        payload = message.payload
        results = []
        for epoch in payload["epochs"]:
            record = self.epochs.get(epoch)
            results.append(
                {
                    "epoch": epoch,
                    "ids": list(record["ids"]) if record else [],
                    "complete": bool(record and record["complete"]),
                    "exists": record is not None,
                }
            )
        network.send(
            self.name, message.sender, "epoch_contents", results=results
        )

    # -- value controllers (producer index) -----------------------------

    def _on_lookup_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        key = (payload["relation"], payload["row"])
        network.send(
            self.name,
            message.sender,
            "producer_is",
            relation=payload["relation"],
            row=payload["row"],
            producer=self.producers.get(key),
        )

    def _on_register_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.producers[(payload["relation"], payload["row"])] = payload["tid"]

    # -- transaction controllers ----------------------------------------

    def _on_store_txn(self, network: Network, message: Message) -> None:
        payload = message.payload
        transaction: Transaction = payload["transaction"]
        self.txns[transaction.tid] = {
            "transaction": transaction,
            "antecedents": tuple(payload["antecedents"]),
            "order": payload["order"],
            "decisions": {transaction.origin: "applied"},
        }
        network.send(
            self.name, message.sender, "txn_stored", tid=transaction.tid
        )

    def _on_request_txn(self, network: Network, message: Message) -> None:
        """Figure 7: serve a transaction, forwarding antecedent requests."""
        payload = message.payload
        tid: TransactionId = payload["tid"]
        participant: int = payload["participant"]
        client: str = payload["client"]
        token: str = payload["token"]
        as_root: bool = payload["as_root"]

        if (token, tid) in self.served:
            return  # someone already triggered this delivery

        record = self.txns.get(tid)
        if record is None:
            network.send(self.name, client, "txn_unknown", tid=tid)
            return

        verdict = record["decisions"].get(participant)
        transaction: Transaction = record["transaction"]
        priority = 0
        policy = self.policies.get(participant)
        if policy is not None:
            priority = policy.priority_of(self._schema, transaction)

        if verdict in ("applied", "rejected"):
            # Permanently irrelevant for this participant.
            self.served.add((token, tid))
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return
        if as_root and (verdict == "deferred" or priority <= 0):
            # Not deliverable as a root, but a later forwarded request may
            # still need it as an antecedent — do not mark it served.
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return

        self.served.add((token, tid))
        first_delivery = (
            not self._cache_bodies
            or (participant, tid) not in self.delivered
        )
        self.delivered.add((participant, tid))
        network.send(
            self.name,
            client,
            "txn_data",
            _fragments=_payload_fragments(transaction) if first_delivery else 1,
            tid=tid,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            priority=priority,
            as_root=as_root,
        )
        # Forward requests for the antecedents directly to their
        # controllers (Figure 7, messages 3-4): the peer never has to ask.
        for ante in record["antecedents"]:
            controller = self.ring.owner(f"txn:{ante}")
            network.send(
                self.name,
                controller,
                "request_txn",
                tid=ante,
                participant=participant,
                client=client,
                token=token,
                as_root=False,
            )

    def _on_record_decision(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.txns.get(payload["tid"])
        if record is None:  # pragma: no cover - protocol guarantee
            raise StoreError(f"no such transaction {payload['tid']}")
        record["decisions"][payload["participant"]] = payload["verdict"]
        network.send(
            self.name,
            message.sender,
            "decision_recorded",
            tid=payload["tid"],
        )

    # -- peer coordinators ----------------------------------------------

    def _on_record_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.peers.setdefault(
            payload["participant"], {"last_recon_epoch": 0}
        )
        record["last_recon_epoch"] = payload["epoch"]
        network.send(
            self.name, message.sender, "recon_recorded", epoch=payload["epoch"]
        )

    def _on_get_last_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.peers.get(payload["participant"], {"last_recon_epoch": 0})
        network.send(
            self.name,
            message.sender,
            "last_recon",
            epoch=record["last_recon_epoch"],
        )


class _ClientNode(Node):
    """The reconciling/publishing peer's endpoint: an inbox."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.inbox: List[Message] = []

    def handle(self, network: Network, message: Message) -> None:
        """Collect replies for the store driver to consume."""
        self.inbox.append(message)

    def drain(self) -> List[Message]:
        """Return and clear the inbox."""
        messages, self.inbox = self.inbox, []
        return messages


class DhtUpdateStore(UpdateStore):
    """Distributed update store over a simulated Pastry-style ring."""

    #: Honest flags: the DHT ships no context-free extensions and no
    #: shared pair memo (clients compute everything locally, as in the
    #: paper's distributed implementation), is simulated in-process
    #: (not durable), and supports client-centric reconciliation only.
    #: Extending context-free shipping to the DHT is a ROADMAP open
    #: item; when it lands, flipping ``ships_context_free`` here is the
    #: only switch the engine needs.
    capabilities = StoreCapabilities(
        ships_context_free=False,
        shared_pair_memo=False,
        durable=False,
        network_centric=False,
    )

    def __init__(
        self,
        schema: Schema,
        hosts: int = 4,
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        cache_bodies: bool = True,
    ) -> None:
        """``cache_bodies=False`` ablates the soft-state body cache:
        controllers re-ship full transaction payloads on every delivery,
        reproducing the round-trip-heavy behaviour the paper's early
        prototypes suffered from ("it was vital to reduce the number of
        messages sent between the update store and each participant")."""
        super().__init__(schema, message_latency)
        if hosts < 1:
            raise StoreError("the DHT needs at least one host node")
        self._network = Network(latency=message_latency)
        host_names = [f"host:{i}" for i in range(hosts)]
        self._hosts: Dict[str, _HostNode] = {}
        for name in host_names:
            node = _HostNode(name, schema, cache_bodies=cache_bodies)
            self._hosts[name] = node
            self._network.add_node(node)
        self._ring = _RingView(HashRing(host_names))
        for node in self._hosts.values():
            node.ring = self._ring
        self._clients: Dict[int, _ClientNode] = {}
        self._policies: Dict[int, TrustPolicy] = {}
        self._token_counter = 0
        self._failed_hosts: set = set()
        self._open_epochs: Dict[Tuple[int, int], List[TransactionId]] = {}

    # ------------------------------------------------------------------
    # Plumbing

    @property
    def network(self) -> Network:
        """The underlying simulated network (exposed for tests)."""
        return self._network

    def _client(self, participant: int) -> _ClientNode:
        try:
            return self._clients[participant]
        except KeyError:
            raise StoreError(
                f"participant {participant} is not registered"
            ) from None

    def _run(self) -> None:
        """Drain the network and mirror its counters into ``perf``."""
        before_msgs = self._network.messages_delivered
        before_secs = self._network.simulated_seconds
        self._network.run()
        self.perf.charge(self._network.messages_delivered - before_msgs, 0.0)
        self.perf.simulated_seconds += (
            self._network.simulated_seconds - before_secs
        )

    def _owner(self, key: str) -> str:
        return self._ring.owner(key)

    # ------------------------------------------------------------------
    # Registration

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Join the confederation; trust conditions replicate to all hosts."""
        if participant in self._clients:
            raise StoreError(f"participant {participant} already registered")
        client = _ClientNode(f"client:{participant}")
        self._clients[participant] = client
        self._policies[participant] = policy
        self._network.add_node(client)
        for host in self._hosts:
            self._network.send(
                client.name,
                host,
                "register_policy",
                participant=participant,
                policy=policy,
            )
        self._run()
        client.drain()

    # ------------------------------------------------------------------
    # Publication (Figure 6)

    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a batch; the full Figure 6 protocol plus producer upkeep."""
        epoch = self.begin_publish(participant)
        try:
            self.write_transactions(participant, epoch, transactions)
        finally:
            self.finish_publish(participant, epoch)
        return epoch

    def begin_publish(self, participant: int) -> int:
        """Figure 6, messages 1-4: obtain an epoch from the allocator."""
        client = self._client(participant)
        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "request_epoch",
            publisher=participant,
        )
        self._run()
        epoch = self._expect(client, "begin_publishing")["epoch"]
        self._open_epochs[(participant, epoch)] = []
        return epoch

    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Ship transactions to their controllers under an open epoch."""
        client = self._client(participant)
        ids = self._open_epochs.get((participant, epoch))
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        for transaction in transactions:
            if transaction.origin != participant:
                raise StoreError(
                    f"participant {participant} cannot publish {transaction.tid}"
                )
        for transaction in transactions:
            antecedents = self._compute_antecedents_remote(client, transaction)
            order = epoch * _EPOCH_STRIDE + len(ids)
            self._network.send(
                client.name,
                self._owner(f"txn:{transaction.tid}"),
                "store_txn",
                _fragments=_payload_fragments(transaction),
                transaction=transaction,
                antecedents=antecedents,
                order=order,
            )
            for update in transaction.updates:
                written = update.written_row()
                if written is not None:
                    self._network.send(
                        client.name,
                        self._owner(f"value:{update.relation}:{written!r}"),
                        "register_producer",
                        relation=update.relation,
                        row=written,
                        tid=transaction.tid,
                    )
            self._run()
            client.drain()
            ids.append(transaction.tid)

    def finish_publish(self, participant: int, epoch: int) -> None:
        """Figure 6, messages 5-6: hand the id list to the epoch controller."""
        client = self._client(participant)
        ids = self._open_epochs.pop((participant, epoch), None)
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        self._network.send(
            client.name,
            self._owner(f"epoch:{epoch}"),
            "publish_ids",
            epoch=epoch,
            ids=ids,
        )
        self._run()
        self._expect(client, "epoch_finished")

    def _compute_antecedents_remote(
        self, client: _ClientNode, transaction: Transaction
    ) -> List[TransactionId]:
        """Antecedents via value-controller lookups (one round trip each).

        Rows produced earlier inside the same transaction are internal
        chains, not antecedent edges; earlier transactions of the same
        batch have already registered their producers, so the remote
        lookup resolves cross-transaction dependencies within a batch too.
        """
        antecedents: List[TransactionId] = []
        produced_in_txn: Set[Tuple[str, Tuple]] = set()
        for update in transaction.updates:
            read = update.read_row()
            if read is not None:
                key = (update.relation, read)
                if key in produced_in_txn:
                    produced_in_txn.discard(key)
                else:
                    self._lookup_and_add(client, update, antecedents, transaction)
            written = update.written_row()
            if written is not None:
                produced_in_txn.add((update.relation, written))
        return antecedents

    def _lookup_and_add(
        self,
        client: _ClientNode,
        update,
        antecedents: List[TransactionId],
        transaction: Transaction,
    ) -> None:
        read = update.read_row()
        self._network.send(
            client.name,
            self._owner(f"value:{update.relation}:{read!r}"),
            "lookup_producer",
            relation=update.relation,
            row=read,
        )
        self._run()
        reply = self._expect(client, "producer_is")
        producer = reply["producer"]
        if (
            producer is not None
            and producer != transaction.tid
            and producer not in antecedents
        ):
            antecedents.append(producer)

    # ------------------------------------------------------------------
    # Reconciliation (Figure 7)

    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the next batch via the distributed retrieval protocol."""
        client = self._client(participant)

        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "get_current_epoch",
        )
        self._run()
        current = self._expect(client, "current_epoch")["epoch"]

        self._network.send(
            client.name,
            self._owner(f"peer:{participant}"),
            "get_last_recon",
            participant=participant,
        )
        self._run()
        last = self._expect(client, "last_recon")["epoch"]

        # Fetch epoch contents — one batched request per distinct epoch
        # controller — and find the most recent stable epoch.
        by_controller: Dict[str, List[int]] = {}
        for epoch in range(last + 1, current + 1):
            controller = self._owner(f"epoch:{epoch}")
            by_controller.setdefault(controller, []).append(epoch)
        for controller, epochs in by_controller.items():
            self._network.send(
                client.name, controller, "get_epoch_contents", epochs=epochs
            )
        self._run()
        per_epoch: Dict[int, Dict] = {}
        for _ in range(len(by_controller)):
            reply = self._expect(client, "epoch_contents")
            for entry in reply["results"]:
                per_epoch[entry["epoch"]] = entry
        contents: Dict[int, List[TransactionId]] = {}
        stable = last
        for epoch in range(last + 1, current + 1):
            entry = per_epoch.get(epoch)
            if entry is None or not entry["exists"] or not entry["complete"]:
                break
            contents[epoch] = entry["ids"]
            stable = epoch

        self._network.send(
            client.name,
            self._owner(f"peer:{participant}"),
            "record_recon",
            participant=participant,
            epoch=stable,
        )
        self._run()
        self._expect(client, "recon_recorded")

        # Request every candidate root; controllers forward antecedents.
        self._token_counter += 1
        token = f"recon:{participant}:{self._token_counter}"
        requested_roots: Set[TransactionId] = set()
        for epoch in sorted(contents):
            if epoch > stable:
                continue
            for tid in contents[epoch]:
                if tid.participant == participant:
                    continue
                requested_roots.add(tid)
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "request_txn",
                    tid=tid,
                    participant=participant,
                    client=client.name,
                    token=token,
                    as_root=True,
                )
        self._run()

        roots: List[RelevantTransaction] = []
        graph = TransactionGraph()
        for message in client.drain():
            if message.kind != "txn_data":
                continue
            payload = message.payload
            graph.add(
                payload["transaction"],
                payload["antecedents"],
                payload["order"],
            )
            if payload["as_root"] and payload["tid"] in requested_roots:
                roots.append(
                    RelevantTransaction(
                        transaction=payload["transaction"],
                        priority=payload["priority"],
                        order=payload["order"],
                    )
                )
        return ReconciliationBatch(
            recno=stable,
            roots=sorted(roots, key=lambda r: r.order),
            graph=graph,
        )

    # ------------------------------------------------------------------

    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Notify each transaction controller of the decision."""
        client = self._client(participant)
        decisions = [
            (tid, "applied") for tid in result.applied
        ] + [
            (tid, "rejected") for tid in result.rejected
        ] + [
            (tid, "deferred") for tid in result.deferred
        ]
        for tid, verdict in decisions:
            self._network.send(
                client.name,
                self._owner(f"txn:{tid}"),
                "record_decision",
                tid=tid,
                participant=participant,
                verdict=verdict,
            )
        self._run()
        client.drain()

    # ------------------------------------------------------------------
    # Failure injection and recovery (Section 5.2.2's sketch)

    def fail_host(self, host_name: str) -> None:
        """Take a physical host down.

        Role ownership routes around failed hosts from now on (the next
        live node clockwise takes over each key).  State held by the
        failed host is lost except for the epoch allocator's counter,
        which :meth:`recover_epoch_allocator` reconstructs by polling —
        the recovery path the paper sketches.  Full data re-replication
        is future work in the paper and out of scope here.
        """
        if host_name not in self._hosts:
            raise StoreError(f"unknown host {host_name!r}")
        live = set(self._hosts) - self._failed_hosts - {host_name}
        if not live:
            raise StoreError("cannot fail the last live host")
        self._network.fail_node(host_name)
        self._failed_hosts.add(host_name)
        self._ring.failed.add(host_name)

    def allocator_host(self) -> str:
        """The host currently owning the epoch-allocator role."""
        return self._owner("epoch-allocator")

    def recover_epoch_allocator(self, participant: int) -> int:
        """Rebuild the epoch counter at the allocator role's new owner.

        ``participant`` drives the recovery: it polls every live host for
        the largest epoch it has seen and installs the maximum at the new
        allocator.  Returns the recovered epoch counter.
        """
        client = self._client(participant)
        live_hosts = [
            name for name in self._hosts if name not in self._failed_hosts
        ]
        for host in live_hosts:
            self._network.send(client.name, host, "poll_max_epoch")
        self._run()
        largest = 0
        for _ in range(len(live_hosts)):
            reply = self._expect(client, "max_epoch")
            largest = max(largest, reply["epoch"])
        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "set_epoch_counter",
            epoch=largest,
        )
        self._run()
        reply = self._expect(client, "epoch_counter_set")
        return reply["epoch"]

    # ------------------------------------------------------------------
    # Introspection

    def current_epoch(self) -> int:
        """The allocator's epoch counter (read locally, no messages)."""
        allocator = self._hosts[self._owner("epoch-allocator")]
        return allocator.epoch_counter

    def transaction_count(self) -> int:
        """Total transactions stored across all controllers."""
        return sum(len(host.txns) for host in self._hosts.values())

    def last_reconciliation_epoch(self, participant: int) -> int:
        """The peer coordinator's record (read locally, no messages)."""
        self._client(participant)  # validate registration
        coordinator = self._hosts[self._owner(f"peer:{participant}")]
        record = coordinator.peers.get(participant, {"last_recon_epoch": 0})
        return record["last_recon_epoch"]

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """The antecedents stored at the transaction's controller."""
        return self._nc_lookup(tid)[1]

    def decided_transactions(self, participant: int):
        """Applied transactions (publish order) plus rejected/deferred ids.

        Aggregated across controllers by the driver (state reconstruction
        is a maintenance operation, not part of the timed protocols).
        """
        self._client(participant)  # validate registration
        applied: List[Tuple[int, Transaction]] = []
        rejected: List[TransactionId] = []
        deferred: List[TransactionId] = []
        for host in self._hosts.values():
            for tid, record in host.txns.items():
                verdict = record["decisions"].get(participant)
                if verdict == "applied":
                    applied.append((record["order"], record["transaction"]))
                elif verdict == "rejected":
                    rejected.append(tid)
                elif verdict == "deferred":
                    deferred.append(tid)
        applied.sort(key=lambda pair: pair[0])
        return (
            [transaction for _order, transaction in applied],
            sorted(rejected),
            sorted(deferred),
        )

    def _nc_lookup(self, tid: TransactionId):
        """Driver-side transaction lookup (used by state reconstruction)."""
        controller = self._hosts[self._owner(f"txn:{tid}")]
        record = controller.txns.get(tid)
        if record is None:
            from repro.errors import UnknownTransactionError

            raise UnknownTransactionError(str(tid))
        return record["transaction"], record["antecedents"], record["order"]

    # ------------------------------------------------------------------

    def _expect(self, client: _ClientNode, kind: str) -> Dict[str, Any]:
        """Pop the first inbox message of ``kind``; error if absent."""
        for index, message in enumerate(client.inbox):
            if message.kind == kind:
                client.inbox.pop(index)
                return message.payload
        raise StoreError(
            f"expected a {kind!r} reply; inbox has "
            f"{[m.kind for m in client.inbox]}"
        )
