"""The DHT-based distributed update store (Section 5.2.2, Figures 6-7).

The paper built this on FreePastry with all nodes on one server and at
least 500 microseconds charged per message.  Here the DHT is simulated on
:mod:`repro.net`: the participants' host nodes form a consistent-hashing
ring, and the store's logical roles are mapped onto them by key ownership:

* the **epoch allocator** owns the predesignated key ``"epoch-allocator"``
  and hands out the epoch counter;
* the **epoch controller** for epoch ``e`` owns ``"epoch:e"`` and records
  which transactions were published in ``e`` and whether the epoch is
  complete;
* the **transaction controller** for transaction ``X`` owns ``"txn:X"``
  and stores the transaction, its antecedents, its publish order, each
  peer's decision about it, and — because trust conditions live in the
  store — answers requests with the requester's priority for ``X``;
* the **value controller** for a row value owns ``"value:R:row"`` and
  maintains the producer index used to compute antecedents at publish
  time (an addition over the paper's prose, which does not say where
  ``ante`` is computed; DESIGN.md discusses this substitution);
* the **peer coordinator** for participant ``p`` owns ``"peer:p"`` and
  records ``p``'s reconciliation epochs.

Publication follows Figure 6 message-for-message; retrieval follows
Figure 7, including controller-side forwarding of antecedent requests so
the reconciling peer never chases chains itself.  Every message costs the
configured latency and is accounted serially (messages *and* estimated
bytes — see :mod:`repro.net.simnet`), reproducing the paper's
message-count-dominated cost regime.

Context-free shipping (PR 3)
----------------------------

The paper's distributed store left clients to compute every update
extension locally.  Since PR 3 the DHT has shipping parity with the
central stores — the "distributed store + network-centric" quadrant of
Figure 3:

* **derive once at publish** — when a transaction controller stores a
  new transaction it collects the antecedent closure from the other
  controllers over the simulated network (``cf_fetch``/``cf_data``
  messages, bodies paying fragment costs) and computes the transaction's
  *context-free* update extension (flattened against an empty applied
  set — fixed at publish time, so derived exactly once for the whole
  confederation);
* **ship on fetch** — root deliveries (``txn_data``) carry the derived
  extension, charged as extra fragments/bytes on the first delivery to
  each participant (clients cache it in soft state like bodies);
* **shared pair memo** — the driver keeps one confederation-wide
  :class:`~repro.core.cache.ConflictCache` attached to every batch;
  because every client receives the *same* extension object for a given
  (transaction, priority), the first client to compare a pair serves
  all the others.

The reconciling engine adopts a shipped extension only when its member
closure is disjoint from the local applied set — exactly the condition
under which it equals the local computation — so decisions are
byte-identical to the client-computed path
(``tests/integration/test_store_equivalence.py`` pins this).  Both
memos use reconciliation-aware retention: once every participant holds
a final verdict for a transaction, its controller drops the derived
extension and the driver drops the pairs it participates in.
``ship_context_free=False`` restores the paper's client-compute-only
behaviour (and honestly downgrades the instance's capability flags).

Fully network-centric batches (PR 5)
------------------------------------

``begin_network_reconciliation`` closes the last quadrant of Figure 3:
a *distributed* store whose batches arrive fully assembled.  Transaction
controllers already learn every participant's verdicts about their
transactions through the ``record_decision`` feedback; a ``nc_request``
makes the root's controller derive that participant's update extension
*against its applied set*, walking the antecedent closure with
per-member verdict queries (``nc_fetch``/``nc_member`` — the verdict
must be refetched every round, the body only until this controller has
cached it).  The finished extension and any bodies the participant
lacks return as one sized ``nc_data`` message; the driver — standing in
for the peer coordinator, as it already does for antecedent lookups —
runs the shared pairwise conflict assembly and prices the adjacency as
a final ``nc_adjacency`` message.  Controllers memoize the derived
extension per (participant, applied-version), so the repeated-deferral
rounds the paper worries about are re-ships, not re-derivations; a
final verdict retires the memo entry.  The client then runs only
``CheckState``, ``DoGroup``, and application — decisions stay
byte-identical to every other path on the equivalence matrix.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cache import ConflictCache
from repro.core.decisions import ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
    UpdateExtension,
    compute_update_extension,
)
from repro.errors import FlattenError, StoreError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.net.ring import HashRing
from repro.net.simnet import Message, Network, Node
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.network_centric import (
    NetworkCentricMixin,
    attach_assembled_payload,
)
from repro.store.registry import StoreCapabilities

#: Publish order is (epoch, index within epoch) flattened to one integer.
_EPOCH_STRIDE = 1_000_000

#: Updates per message fragment: DHT messages are size-bounded, so a
#: transaction body travels as ceil(updates / this) fragments, each paying
#: the per-message latency.  Updates carry full tuple values (often two
#: tuples, for replacements), so one update per fragment is the realistic
#: granularity.  This keeps distributed reconciliation cost proportional
#: to the volume of transaction data moved — the regime the paper observes
#: ("requests to follow antecedent transaction chains dominate the running
#: time").
_UPDATES_PER_FRAGMENT = 1


#: Estimated wire bytes per update (full tuple values, often two rows) and
#: per message header; drives the network's byte accounting.
_UPDATE_WIRE_BYTES = 96
_HEADER_WIRE_BYTES = 48


def _payload_fragments(transaction: Transaction) -> int:
    """Fragments needed to ship a transaction body."""
    updates = len(transaction.updates)
    return max(1, -(-updates // _UPDATES_PER_FRAGMENT))


def _body_bytes(transaction: Transaction) -> int:
    """Estimated wire size of a transaction body."""
    return _HEADER_WIRE_BYTES + _UPDATE_WIRE_BYTES * len(transaction.updates)


def _extension_fragments(extension: UpdateExtension) -> int:
    """Fragments needed to ship a derived context-free extension."""
    return max(1, -(-len(extension.operations) // _UPDATES_PER_FRAGMENT))


def _extension_bytes(extension: UpdateExtension) -> int:
    """Estimated wire size of a derived context-free extension."""
    return _HEADER_WIRE_BYTES + _UPDATE_WIRE_BYTES * len(extension.operations)


class _RingView:
    """A failure-aware view of the ring, shared by the store and all hosts.

    Ownership of a key routes to the next live node clockwise when the
    primary owner has failed — the standard DHT takeover rule.
    """

    def __init__(self, ring: HashRing) -> None:
        self._ring = ring
        self.failed: set = set()

    def owner(self, key: str) -> str:
        if self.failed:
            return self._ring.owner_excluding(key, self.failed)
        return self._ring.owner(key)


class _HostNode(Node):
    """One physical DHT peer, hosting whatever roles the ring assigns it."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        cache_bodies: bool = True,
        ship_context_free: bool = True,
    ) -> None:
        super().__init__(name)
        self._schema = schema
        self._cache_bodies = cache_bodies
        self._ship_context_free = ship_context_free
        # In-flight context-free derivations, keyed by token: the closure
        # bodies gathered so far and the antecedent fetches still pending.
        self.derivations: Dict[str, Dict[str, Any]] = {}
        # Closure bodies fetched by past derivations, kept for reuse: a
        # dependent published later shares most of its closure with its
        # antecedents, so each body crosses the ring to this controller
        # at most once (bounded by the same O(history) the controllers'
        # own transaction logs already occupy).
        self.cf_bodies: Dict[
            TransactionId, Tuple[Transaction, Tuple[TransactionId, ...], int]
        ] = {}
        # Epoch-allocator role.
        self.epoch_counter = 0
        # Epoch-controller role: epoch -> record.
        self.epochs: Dict[int, Dict[str, Any]] = {}
        # Transaction-controller role: tid -> record.
        self.txns: Dict[TransactionId, Dict[str, Any]] = {}
        # Value-controller role: (relation, row) -> producing tid.
        self.producers: Dict[Tuple[str, Tuple], TransactionId] = {}
        # Peer-coordinator role: participant -> record.
        self.peers: Dict[int, Dict[str, Any]] = {}
        # Trust conditions, replicated to every node at registration.
        self.policies: Dict[int, TrustPolicy] = {}
        # Failure-aware ring view, set by the store after construction.
        self.ring: Optional["_RingView"] = None
        # Dedup of served antecedent-forwarded requests: (token, tid).
        self.served: Set[Tuple[str, TransactionId]] = set()
        # Transactions whose full body each participant has already
        # received.  Clients cache transaction bodies in their soft state
        # (Section 5.2), so later deliveries of the same transaction —
        # e.g. an old antecedent reappearing in a new chain — only need a
        # small header, not the payload.
        self.delivered: Set[Tuple[int, TransactionId]] = set()
        # Fully network-centric mode (PR 5): in-flight per-participant
        # extension derivations, and the (participant, tid) ->
        # (applied-version, extension) memo that makes repeated deferral
        # rounds O(1) re-ships instead of re-derivations.  Entries leave
        # when the participant's final verdict arrives (record_decision).
        self.nc_derivations: Dict[str, Dict[str, Any]] = {}
        self.nc_memo: Dict[
            Tuple[int, TransactionId], Tuple[int, UpdateExtension]
        ] = {}

    # ------------------------------------------------------------------

    def handle(self, network: Network, message: Message) -> None:
        """Dispatch on message kind."""
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise StoreError(f"host cannot handle message kind {message.kind!r}")
        handler(network, message)

    # -- registration ---------------------------------------------------

    def _on_register_policy(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.policies[payload["participant"]] = payload["policy"]

    # -- epoch allocator (Figure 6, messages 1-4) -----------------------

    def _on_request_epoch(self, network: Network, message: Message) -> None:
        self.epoch_counter += 1
        epoch = self.epoch_counter
        controller = self.ring.owner(f"epoch:{epoch}")
        network.send(
            self.name,
            controller,
            "begin_epoch",
            epoch=epoch,
            publisher=message.payload["publisher"],
            reply_to=message.sender,
        )

    def _on_begin_epoch(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.epochs[payload["epoch"]] = {
            "publisher": payload["publisher"],
            "ids": [],
            "complete": False,
        }
        allocator = self.ring.owner("epoch-allocator")
        network.send(
            self.name,
            allocator,
            "epoch_begun",
            epoch=payload["epoch"],
            reply_to=payload["reply_to"],
        )

    def _on_epoch_begun(self, network: Network, message: Message) -> None:
        payload = message.payload
        network.send(
            self.name,
            payload["reply_to"],
            "begin_publishing",
            epoch=payload["epoch"],
        )

    def _on_get_current_epoch(self, network: Network, message: Message) -> None:
        network.send(
            self.name, message.sender, "current_epoch", epoch=self.epoch_counter
        )

    def _on_poll_max_epoch(self, network: Network, message: Message) -> None:
        """Report the largest epoch this node has seen (allocator recovery).

        Section 5.2.2: "if this peer were to fail, its data could be
        reconstructed by polling for the largest epoch present in the
        system" — every node answers with the largest epoch among those it
        controls (or has allocated).
        """
        known = max(self.epochs, default=0)
        network.send(
            self.name,
            message.sender,
            "max_epoch",
            epoch=max(known, self.epoch_counter),
        )

    def _on_set_epoch_counter(self, network: Network, message: Message) -> None:
        self.epoch_counter = max(self.epoch_counter, message.payload["epoch"])
        network.send(
            self.name, message.sender, "epoch_counter_set",
            epoch=self.epoch_counter,
        )

    # -- epoch controller (Figure 6, messages 5-6) ----------------------

    def _on_publish_ids(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.epochs.get(payload["epoch"])
        if record is None:  # pragma: no cover - protocol guarantee
            raise StoreError(f"epoch {payload['epoch']} was never begun here")
        record["ids"] = list(payload["ids"])
        record["complete"] = True
        network.send(
            self.name,
            message.sender,
            "epoch_finished",
            epoch=payload["epoch"],
        )

    def _on_get_epoch_contents(self, network: Network, message: Message) -> None:
        """Serve the contents of every requested epoch this node controls.

        The reconciling peer batches all epochs owned by the same
        controller into one request, so the per-reconciliation overhead is
        one round trip per *distinct controller*, not per epoch.
        """
        payload = message.payload
        results = []
        for epoch in payload["epochs"]:
            record = self.epochs.get(epoch)
            results.append(
                {
                    "epoch": epoch,
                    "ids": list(record["ids"]) if record else [],
                    "complete": bool(record and record["complete"]),
                    "exists": record is not None,
                }
            )
        network.send(
            self.name, message.sender, "epoch_contents", results=results
        )

    # -- value controllers (producer index) -----------------------------

    def _on_lookup_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        key = (payload["relation"], payload["row"])
        network.send(
            self.name,
            message.sender,
            "producer_is",
            relation=payload["relation"],
            row=payload["row"],
            producer=self.producers.get(key),
        )

    def _on_register_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.producers[(payload["relation"], payload["row"])] = payload["tid"]

    # -- transaction controllers ----------------------------------------

    def _on_store_txn(self, network: Network, message: Message) -> None:
        payload = message.payload
        transaction: Transaction = payload["transaction"]
        self.txns[transaction.tid] = {
            "transaction": transaction,
            "antecedents": tuple(payload["antecedents"]),
            "order": payload["order"],
            "decisions": {transaction.origin: "applied"},
            "context_free": None,
        }
        network.send(
            self.name, message.sender, "txn_stored", tid=transaction.tid
        )
        if self._ship_context_free:
            self._begin_cf_derivation(network, transaction.tid)

    # -- context-free derivation (derive once at publish) ---------------

    def _begin_cf_derivation(
        self, network: Network, tid: TransactionId
    ) -> None:
        """Gather the antecedent closure and derive the transaction's
        context-free extension.

        Antecedents are always published (and hence stored) before their
        dependents, so every body this walk requests already sits at a
        controller.  Bodies this controller already holds — its own
        transactions, or closure bodies fetched by earlier derivations
        (``cf_bodies``) — are absorbed locally; only the rest cross the
        ring as ``cf_fetch``/``cf_data`` pairs, each paying the body's
        fragment and byte costs.  With the reuse cache, a body travels
        to this controller at most once ever, so chains cost O(new
        members) per publish instead of refetching the whole closure.
        """
        record = self.txns[tid]
        token = f"cf:{self.name}:{tid}"
        derivation: Dict[str, Any] = {
            "tid": tid,
            "bodies": {
                tid: (record["transaction"], record["antecedents"],
                      record["order"])
            },
            "pending": set(),
            "failed": False,
        }
        self.derivations[token] = derivation
        self._cf_request(network, derivation, token, record["antecedents"])
        if not derivation["pending"]:
            self._finish_cf_derivation(token)

    def _cf_local_body(self, tid: TransactionId):
        """A body this controller can serve without a network fetch."""
        record = self.txns.get(tid)
        if record is not None:
            return (record["transaction"], record["antecedents"],
                    record["order"])
        return self.cf_bodies.get(tid)

    def _cf_request(
        self, network: Network, derivation: Dict[str, Any], token: str, tids
    ) -> None:
        """Absorb locally-available bodies (walking their antecedents
        too) and send ``cf_fetch`` for the rest."""
        worklist = list(tids)
        while worklist:
            tid = worklist.pop()
            if tid in derivation["bodies"] or tid in derivation["pending"]:
                continue
            body = self._cf_local_body(tid)
            if body is not None:
                derivation["bodies"][tid] = body
                worklist.extend(body[1])
                continue
            derivation["pending"].add(tid)
            network.send(
                self.name,
                self.ring.owner(f"txn:{tid}"),
                "cf_fetch",
                tid=tid,
                token=token,
                reply_to=self.name,
            )

    def _on_cf_fetch(self, network: Network, message: Message) -> None:
        payload = message.payload
        tid: TransactionId = payload["tid"]
        record = self.txns.get(tid)
        if record is None:
            network.send(
                self.name,
                payload["reply_to"],
                "cf_unknown",
                tid=tid,
                token=payload["token"],
            )
            return
        transaction = record["transaction"]
        network.send(
            self.name,
            payload["reply_to"],
            "cf_data",
            _fragments=_payload_fragments(transaction),
            _size_bytes=_body_bytes(transaction),
            tid=tid,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            token=payload["token"],
        )

    def _on_cf_data(self, network: Network, message: Message) -> None:
        payload = message.payload
        derivation = self.derivations.get(payload["token"])
        if derivation is None or derivation["failed"]:
            return
        tid: TransactionId = payload["tid"]
        derivation["pending"].discard(tid)
        body = (
            payload["transaction"],
            payload["antecedents"],
            payload["order"],
        )
        derivation["bodies"][tid] = body
        self.cf_bodies.setdefault(tid, body)
        self._cf_request(
            network, derivation, payload["token"], payload["antecedents"]
        )
        if not derivation["pending"]:
            self._finish_cf_derivation(payload["token"])

    def _on_cf_unknown(self, network: Network, message: Message) -> None:
        """Part of the closure is gone (e.g. its controller failed before
        re-replication): abort — the root ships no extension and clients
        fall back to local computation."""
        derivation = self.derivations.pop(message.payload["token"], None)
        if derivation is not None:
            derivation["failed"] = True

    def _finish_cf_derivation(self, token: str) -> None:
        derivation = self.derivations.pop(token)
        tid: TransactionId = derivation["tid"]
        graph = TransactionGraph()
        for transaction, antecedents, order in derivation["bodies"].values():
            graph.add(transaction, antecedents, order)
        record = self.txns[tid]
        # Priority 0 marks "participant-agnostic"; the driver substitutes
        # each requester's priority (memoized, so object identity — which
        # the shared pair memo validates by — is preserved per priority).
        root = RelevantTransaction(
            transaction=record["transaction"],
            priority=0,
            order=record["order"],
        )
        try:
            record["context_free"] = compute_update_extension(
                self._schema, graph, root, frozenset()
            )
        except FlattenError:
            record["context_free"] = None

    # -- fully network-centric batches (PR 5) ---------------------------
    #
    # ``begin_network_reconciliation`` over the ring: the reconciling
    # peer's driver sends one ``nc_request`` per candidate root to the
    # root's transaction controller.  The controller derives the root's
    # update extension *against that participant's applied set*: it walks
    # the antecedent closure, asking each member's controller for the
    # participant's verdict on that member (``nc_fetch``/``nc_member`` —
    # bodies ride along, priced in fragments and bytes, only when this
    # controller has not cached them from an earlier derivation; the
    # verdict itself must always be refetched, which is the mode's honest
    # extra chatter).  The finished extension, the root body, and any
    # member bodies the participant has not yet received ship back as one
    # ``nc_data`` message.  Controllers learn the per-participant
    # applied/rejected verdicts from the ``record_decision`` feedback the
    # driver already routes to them after every reconciliation.

    def _on_nc_request(self, network: Network, message: Message) -> None:
        """Serve one root of a fully network-centric batch."""
        payload = message.payload
        tid: TransactionId = payload["tid"]
        participant: int = payload["participant"]
        record = self.txns.get(tid)
        if record is None:
            # Same reply a client-centric request_txn gets for a lost
            # record; the driver ignores it either way, so the root
            # drops out of the batch identically in both modes.
            network.send(self.name, payload["client"], "txn_unknown", tid=tid)
            return
        verdict = record["decisions"].get(participant)
        priority = 0
        policy = self.policies.get(participant)
        if policy is not None:
            priority = policy.priority_of(self._schema, record["transaction"])
        if verdict in ("applied", "rejected") or priority <= 0:
            network.send(
                self.name, payload["client"], "nc_irrelevant", tid=tid
            )
            return
        version: int = payload["version"]
        memo = self.nc_memo.get((participant, tid))
        if (
            memo is not None
            and memo[0] == version
            and memo[1].priority == priority
            and self._nc_ship_from_memo(
                network, payload, record, memo[1], priority
            )
        ):
            return
        dkey = f"{payload['token']}:{tid}"
        derivation: Dict[str, Any] = {
            "tid": tid,
            "participant": participant,
            "version": version,
            "priority": priority,
            "client": payload["client"],
            "bodies": {
                tid: (record["transaction"], record["antecedents"],
                      record["order"])
            },
            "applied": set(),
            "pending": set(),
            "failed": False,
        }
        self.nc_derivations[dkey] = derivation
        self._nc_walk(network, derivation, dkey, record["antecedents"])
        if not derivation["pending"]:
            self._finish_nc_derivation(network, dkey)

    def _nc_ship_from_memo(
        self, network, payload, record, extension, priority
    ) -> bool:
        """Re-ship a memoized extension; False when a member body has
        been lost locally (forces a fresh derivation)."""
        bodies = {}
        for member in extension.members:
            body = self._cf_local_body(member)
            if body is None:  # pragma: no cover - bodies cache is unbounded
                return False
            bodies[member] = body
        self._nc_send_data(
            network,
            client=payload["client"],
            participant=payload["participant"],
            record=record,
            priority=priority,
            extension=extension,
            bodies=bodies,
        )
        return True

    def _nc_walk(
        self, network: Network, derivation: Dict[str, Any], dkey: str, tids
    ) -> None:
        """Advance the closure walk: absorb members whose verdict this
        controller holds (its own transactions), ask other controllers
        for the rest."""
        participant = derivation["participant"]
        worklist = list(tids)
        while worklist:
            tid = worklist.pop()
            if (
                tid in derivation["bodies"]
                or tid in derivation["applied"]
                or tid in derivation["pending"]
            ):
                continue
            record = self.txns.get(tid)
            if record is not None:
                # Our own transaction: verdict and body are local.
                if record["decisions"].get(participant) == "applied":
                    derivation["applied"].add(tid)
                    continue
                derivation["bodies"][tid] = (
                    record["transaction"], record["antecedents"],
                    record["order"],
                )
                worklist.extend(record["antecedents"])
                continue
            derivation["pending"].add(tid)
            network.send(
                self.name,
                self.ring.owner(f"txn:{tid}"),
                "nc_fetch",
                tid=tid,
                participant=participant,
                token=dkey,
                reply_to=self.name,
                need_body=tid not in self.cf_bodies,
            )

    def _on_nc_fetch(self, network: Network, message: Message) -> None:
        """Answer a member query: the participant's verdict, plus the
        body when the asking controller does not hold it yet."""
        payload = message.payload
        tid: TransactionId = payload["tid"]
        record = self.txns.get(tid)
        if record is None:
            network.send(
                self.name,
                payload["reply_to"],
                "nc_unknown_member",
                tid=tid,
                token=payload["token"],
            )
            return
        applied = (
            record["decisions"].get(payload["participant"]) == "applied"
        )
        if applied or not payload["need_body"]:
            network.send(
                self.name,
                payload["reply_to"],
                "nc_member",
                tid=tid,
                token=payload["token"],
                applied=applied,
                transaction=None,
                antecedents=record["antecedents"],
                order=record["order"],
            )
            return
        transaction = record["transaction"]
        network.send(
            self.name,
            payload["reply_to"],
            "nc_member",
            _fragments=_payload_fragments(transaction),
            _size_bytes=_body_bytes(transaction),
            tid=tid,
            token=payload["token"],
            applied=False,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
        )

    def _on_nc_member(self, network: Network, message: Message) -> None:
        payload = message.payload
        derivation = self.nc_derivations.get(payload["token"])
        if derivation is None:
            return
        tid: TransactionId = payload["tid"]
        derivation["pending"].discard(tid)
        if derivation["failed"]:
            if not derivation["pending"]:
                self._finish_nc_derivation(network, payload["token"])
            return
        if payload["applied"]:
            derivation["applied"].add(tid)
        else:
            if payload["transaction"] is not None:
                body = (
                    payload["transaction"],
                    payload["antecedents"],
                    payload["order"],
                )
                self.cf_bodies.setdefault(tid, body)
            else:
                body = self.cf_bodies.get(tid)
            if body is None:  # pragma: no cover - protocol guarantee
                derivation["failed"] = True
            else:
                derivation["bodies"][tid] = body
                self._nc_walk(
                    network, derivation, payload["token"], body[1]
                )
        if not derivation["pending"]:
            self._finish_nc_derivation(network, payload["token"])

    def _on_nc_unknown_member(self, network: Network, message: Message) -> None:
        """Part of the closure is gone: the derivation cannot finish;
        the driver falls back to the classic Figure-7 retrieval for this
        root and the client computes locally."""
        derivation = self.nc_derivations.get(message.payload["token"])
        if derivation is None:
            return
        derivation["failed"] = True
        derivation["pending"].discard(message.payload["tid"])
        if not derivation["pending"]:
            self._finish_nc_derivation(network, message.payload["token"])

    def _finish_nc_derivation(self, network: Network, dkey: str) -> None:
        derivation = self.nc_derivations.pop(dkey)
        tid: TransactionId = derivation["tid"]
        record = self.txns[tid]
        if derivation["failed"]:
            network.send(
                self.name,
                derivation["client"],
                "nc_data",
                tid=tid,
                failed=True,
                extension=None,
            )
            return
        graph = TransactionGraph()
        for transaction, antecedents, order in derivation["bodies"].values():
            graph.add(transaction, antecedents, order)
        root = RelevantTransaction(
            transaction=record["transaction"],
            priority=derivation["priority"],
            order=record["order"],
        )
        try:
            extension = compute_update_extension(
                self._schema, graph, root, frozenset(derivation["applied"])
            )
        except FlattenError:
            # Ship the bodies with no extension: the client's fallback
            # recomputation reaches the same FlattenError and rejects
            # the root, byte-identically to the client-centric path.
            extension = None
        if extension is not None:
            self.nc_memo[(derivation["participant"], tid)] = (
                derivation["version"], extension,
            )
        self._nc_send_data(
            network,
            client=derivation["client"],
            participant=derivation["participant"],
            record=record,
            priority=derivation["priority"],
            extension=extension,
            bodies=derivation["bodies"],
        )

    def _nc_send_data(
        self,
        network: Network,
        client: str,
        participant: int,
        record: Dict[str, Any],
        priority: int,
        extension: Optional[UpdateExtension],
        bodies: Dict[
            TransactionId, Tuple[Transaction, Tuple[TransactionId, ...], int]
        ],
    ) -> None:
        """One ``nc_data`` delivery: root body, derived extension, and
        the member bodies this participant has not received before.

        Pricing mirrors ``txn_data``: each body not yet delivered to the
        participant (as this controller knows it — a body another
        controller delivered may be re-priced, a deliberately
        conservative estimate) pays its fragments and bytes; the derived
        extension pays its own fragments on top; everything already held
        client-side rides in the header.
        """
        transaction: Transaction = record["transaction"]
        tid = transaction.tid
        fragments = 0
        size = _HEADER_WIRE_BYTES
        members = []
        for member, body in sorted(
            bodies.items(), key=lambda item: item[1][2]
        ):
            first = (
                not self._cache_bodies
                or (participant, member) not in self.delivered
            )
            self.delivered.add((participant, member))
            if first:
                fragments += _payload_fragments(body[0])
                size += _body_bytes(body[0])
            if member != tid:
                members.append(body)
        if extension is not None:
            fragments += _extension_fragments(extension)
            size += _extension_bytes(extension)
        network.send(
            self.name,
            client,
            "nc_data",
            _fragments=max(1, fragments),
            _size_bytes=size,
            tid=tid,
            failed=False,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            priority=priority,
            extension=extension,
            members=members,
        )

    def _on_request_txn(self, network: Network, message: Message) -> None:
        """Figure 7: serve a transaction, forwarding antecedent requests."""
        payload = message.payload
        tid: TransactionId = payload["tid"]
        participant: int = payload["participant"]
        client: str = payload["client"]
        token: str = payload["token"]
        as_root: bool = payload["as_root"]

        if (token, tid) in self.served:
            return  # someone already triggered this delivery

        record = self.txns.get(tid)
        if record is None:
            network.send(self.name, client, "txn_unknown", tid=tid)
            return

        verdict = record["decisions"].get(participant)
        transaction: Transaction = record["transaction"]
        priority = 0
        policy = self.policies.get(participant)
        if policy is not None:
            priority = policy.priority_of(self._schema, transaction)

        if verdict in ("applied", "rejected"):
            # Permanently irrelevant for this participant.
            self.served.add((token, tid))
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return
        if as_root and (verdict == "deferred" or priority <= 0):
            # Not deliverable as a root, but a later forwarded request may
            # still need it as an antecedent — do not mark it served.
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return

        self.served.add((token, tid))
        first_delivery = (
            not self._cache_bodies
            or (participant, tid) not in self.delivered
        )
        self.delivered.add((participant, tid))
        # Ship the derived context-free extension with root deliveries
        # (the reconciling engine only consults shipped extensions for
        # roots).  It is derived data, but it still travels: the first
        # delivery to each participant pays its fragments and bytes.
        context_free = record.get("context_free") if as_root else None
        fragments = _payload_fragments(transaction) if first_delivery else 1
        size = _body_bytes(transaction) if first_delivery else _HEADER_WIRE_BYTES
        if context_free is not None and first_delivery:
            fragments += _extension_fragments(context_free)
            size += _extension_bytes(context_free)
        network.send(
            self.name,
            client,
            "txn_data",
            _fragments=fragments,
            _size_bytes=size,
            tid=tid,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            priority=priority,
            as_root=as_root,
            context_free=context_free,
        )
        # Forward requests for the antecedents directly to their
        # controllers (Figure 7, messages 3-4): the peer never has to ask.
        for ante in record["antecedents"]:
            controller = self.ring.owner(f"txn:{ante}")
            network.send(
                self.name,
                controller,
                "request_txn",
                tid=ante,
                participant=participant,
                client=client,
                token=token,
                as_root=False,
            )

    def _on_record_decision(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.txns.get(payload["tid"])
        if record is None:  # pragma: no cover - protocol guarantee
            raise StoreError(f"no such transaction {payload['tid']}")
        record["decisions"][payload["participant"]] = payload["verdict"]
        # A final verdict retires the per-participant derived extension:
        # this participant can never be served this root again.  A
        # deferral keeps it — the next round's re-derivation becomes a
        # memo hit while the applied set is unchanged.
        if payload["verdict"] in ("applied", "rejected"):
            self.nc_memo.pop(
                (payload["participant"], payload["tid"]), None
            )
        # Reconciliation-aware retention: once every registered
        # participant holds a final verdict the derived extension can
        # never be requested again — drop it and tell the driver so it
        # retires the shared pair-memo entries too.
        retired = False
        if record.get("context_free") is not None:
            decisions = record["decisions"]
            if all(
                decisions.get(pid) in ("applied", "rejected")
                for pid in self.policies
            ):
                record["context_free"] = None
                retired = True
        network.send(
            self.name,
            message.sender,
            "decision_recorded",
            tid=payload["tid"],
            retired=retired,
        )

    # -- peer coordinators ----------------------------------------------

    def _on_record_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.peers.setdefault(
            payload["participant"], {"last_recon_epoch": 0}
        )
        record["last_recon_epoch"] = payload["epoch"]
        network.send(
            self.name, message.sender, "recon_recorded", epoch=payload["epoch"]
        )

    def _on_get_last_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self.peers.get(payload["participant"], {"last_recon_epoch": 0})
        network.send(
            self.name,
            message.sender,
            "last_recon",
            epoch=record["last_recon_epoch"],
        )


class _ClientNode(Node):
    """The reconciling/publishing peer's endpoint: an inbox."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.inbox: List[Message] = []

    def handle(self, network: Network, message: Message) -> None:
        """Collect replies for the store driver to consume."""
        self.inbox.append(message)

    def drain(self) -> List[Message]:
        """Return and clear the inbox."""
        messages, self.inbox = self.inbox, []
        return messages


class DhtUpdateStore(UpdateStore):
    """Distributed update store over a simulated Pastry-style ring."""

    #: Honest flags: since PR 3 the DHT derives context-free extensions
    #: at publish time and ships them on fetch, and the driver keeps the
    #: confederation-wide pair memo — shipping parity with the central
    #: stores.  Since PR 5 it also implements the fully store-computed
    #: batch (``begin_network_reconciliation``): transaction controllers
    #: derive per-participant extensions over the ring and the driver —
    #: standing in for the participant's peer coordinator — assembles
    #: the conflict adjacency, closing the last quadrant of Figure 3.
    #: It is still simulated in-process, hence not durable.
    capabilities = StoreCapabilities(
        ships_context_free=True,
        shared_pair_memo=True,
        durable=False,
        network_centric_batches=True,
    )

    def __init__(
        self,
        schema: Schema,
        hosts: int = 4,
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        cache_bodies: bool = True,
        ship_context_free: bool = True,
        real_latency: bool = False,
    ) -> None:
        """``cache_bodies=False`` ablates the soft-state body cache:
        controllers re-ship full transaction payloads on every delivery,
        reproducing the round-trip-heavy behaviour the paper's early
        prototypes suffered from ("it was vital to reduce the number of
        messages sent between the update store and each participant").
        ``ship_context_free=False`` restores the paper's
        client-compute-only distributed store: controllers derive and
        ship nothing, no pair memo travels, and the instance's
        capability flags are downgraded to match."""
        super().__init__(schema, message_latency, real_latency=real_latency)
        if hosts < 1:
            raise StoreError("the DHT needs at least one host node")
        if not ship_context_free:
            self.capabilities = replace(
                type(self).capabilities,
                ships_context_free=False,
                shared_pair_memo=False,
            )
        self._ship_context_free = ship_context_free
        self._network = Network(latency=message_latency)
        host_names = [f"host:{i}" for i in range(hosts)]
        self._hosts: Dict[str, _HostNode] = {}
        for name in host_names:
            node = _HostNode(
                name,
                schema,
                cache_bodies=cache_bodies,
                ship_context_free=ship_context_free,
            )
            self._hosts[name] = node
            self._network.add_node(node)
        self._ring = _RingView(HashRing(host_names))
        for node in self._hosts.values():
            node.ring = self._ring
        self._clients: Dict[int, _ClientNode] = {}
        self._policies: Dict[int, TrustPolicy] = {}
        self._token_counter = 0
        self._failed_hosts: set = set()
        self._open_epochs: Dict[Tuple[int, int], List[TransactionId]] = {}
        # The confederation-wide pair memo (attached to every batch) and
        # the per-(transaction, priority) memo that re-prices controller
        # extensions (derived at priority 0) for each requester while
        # preserving object identity — the pair memo validates entries by
        # identity, so every participant at one priority must receive the
        # *same* extension object.  Retention (complete_reconciliation)
        # is the primary eviction; the FIFO limit is the same backstop
        # the central stores' shared memos carry.
        self._shared_pairs = ConflictCache(
            limit=NetworkCentricMixin.SHARED_MEMO_LIMIT
        )
        self._cf_priority_memo: Dict[
            Tuple[TransactionId, int],
            Tuple[UpdateExtension, UpdateExtension],
        ] = {}
        # Peer-coordinator bookkeeping for the fully network-centric
        # batch (PR 5), maintained from the same ``record_decision``
        # feedback the controllers receive: the participant's open
        # deferred set (those roots re-enter every store-computed batch)
        # and a monotone applied-set version that drives the
        # controllers' per-participant extension memos.
        self._nc_peers: Dict[int, Dict[str, Any]] = {}
        # Per-participant conflict-pair caches for batch assembly (the
        # peer coordinator's working memory, held driver-side like the
        # other coordinator mirrors).
        self._nc_pair_caches: Dict[int, ConflictCache] = {}

    # ------------------------------------------------------------------
    # Plumbing

    @property
    def network(self) -> Network:
        """The underlying simulated network (exposed for tests)."""
        return self._network

    def _client(self, participant: int) -> _ClientNode:
        try:
            return self._clients[participant]
        except KeyError:
            raise StoreError(
                f"participant {participant} is not registered"
            ) from None

    def _run(self) -> None:
        """Drain the network and mirror its counters into ``perf``."""
        before_msgs = self._network.messages_delivered
        before_secs = self._network.simulated_seconds
        self._network.run()
        self.perf.charge(self._network.messages_delivered - before_msgs, 0.0)
        self.perf.simulated_seconds += (
            self._network.simulated_seconds - before_secs
        )

    def _owner(self, key: str) -> str:
        return self._ring.owner(key)

    # ------------------------------------------------------------------
    # Registration

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Join the confederation; trust conditions replicate to all hosts."""
        if participant in self._clients:
            raise StoreError(f"participant {participant} already registered")
        client = _ClientNode(f"client:{participant}")
        self._clients[participant] = client
        self._policies[participant] = policy
        self._network.add_node(client)
        for host in self._hosts:
            self._network.send(
                client.name,
                host,
                "register_policy",
                participant=participant,
                policy=policy,
            )
        self._run()
        client.drain()

    # ------------------------------------------------------------------
    # Publication (Figure 6)

    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a batch; the full Figure 6 protocol plus producer upkeep."""
        epoch = self.begin_publish(participant)
        try:
            self.write_transactions(participant, epoch, transactions)
        finally:
            self.finish_publish(participant, epoch)
        return epoch

    def begin_publish(self, participant: int) -> int:
        """Figure 6, messages 1-4: obtain an epoch from the allocator."""
        client = self._client(participant)
        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "request_epoch",
            publisher=participant,
        )
        self._run()
        epoch = self._expect(client, "begin_publishing")["epoch"]
        self._open_epochs[(participant, epoch)] = []
        return epoch

    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Ship transactions to their controllers under an open epoch."""
        client = self._client(participant)
        ids = self._open_epochs.get((participant, epoch))
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        for transaction in transactions:
            if transaction.origin != participant:
                raise StoreError(
                    f"participant {participant} cannot publish {transaction.tid}"
                )
        for transaction in transactions:
            antecedents = self._compute_antecedents_remote(client, transaction)
            order = epoch * _EPOCH_STRIDE + len(ids)
            self._network.send(
                client.name,
                self._owner(f"txn:{transaction.tid}"),
                "store_txn",
                _fragments=_payload_fragments(transaction),
                _size_bytes=_body_bytes(transaction),
                transaction=transaction,
                antecedents=antecedents,
                order=order,
            )
            for update in transaction.updates:
                written = update.written_row()
                if written is not None:
                    self._network.send(
                        client.name,
                        self._owner(f"value:{update.relation}:{written!r}"),
                        "register_producer",
                        relation=update.relation,
                        row=written,
                        tid=transaction.tid,
                    )
            self._run()
            client.drain()
            ids.append(transaction.tid)

    def finish_publish(self, participant: int, epoch: int) -> None:
        """Figure 6, messages 5-6: hand the id list to the epoch controller."""
        client = self._client(participant)
        ids = self._open_epochs.pop((participant, epoch), None)
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        self._network.send(
            client.name,
            self._owner(f"epoch:{epoch}"),
            "publish_ids",
            epoch=epoch,
            ids=ids,
        )
        self._run()
        self._expect(client, "epoch_finished")

    def _compute_antecedents_remote(
        self, client: _ClientNode, transaction: Transaction
    ) -> List[TransactionId]:
        """Antecedents via value-controller lookups (one round trip each).

        Rows produced earlier inside the same transaction are internal
        chains, not antecedent edges; earlier transactions of the same
        batch have already registered their producers, so the remote
        lookup resolves cross-transaction dependencies within a batch too.
        """
        antecedents: List[TransactionId] = []
        produced_in_txn: Set[Tuple[str, Tuple]] = set()
        for update in transaction.updates:
            read = update.read_row()
            if read is not None:
                key = (update.relation, read)
                if key in produced_in_txn:
                    produced_in_txn.discard(key)
                else:
                    self._lookup_and_add(client, update, antecedents, transaction)
            written = update.written_row()
            if written is not None:
                produced_in_txn.add((update.relation, written))
        return antecedents

    def _lookup_and_add(
        self,
        client: _ClientNode,
        update,
        antecedents: List[TransactionId],
        transaction: Transaction,
    ) -> None:
        read = update.read_row()
        self._network.send(
            client.name,
            self._owner(f"value:{update.relation}:{read!r}"),
            "lookup_producer",
            relation=update.relation,
            row=read,
        )
        self._run()
        reply = self._expect(client, "producer_is")
        producer = reply["producer"]
        if (
            producer is not None
            and producer != transaction.tid
            and producer not in antecedents
        ):
            antecedents.append(producer)

    # ------------------------------------------------------------------
    # Reconciliation (Figure 7)

    def _discover_stable(
        self, participant: int, client: _ClientNode
    ) -> Tuple[int, Dict[int, List[TransactionId]]]:
        """The retrieval front half shared by both reconciliation modes:
        find the most recent stable epoch, fetch the contents of every
        newly stable epoch (one batched request per distinct epoch
        controller), and record the reconciliation at the peer
        coordinator.  Returns ``(stable, {epoch: ids})``."""
        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "get_current_epoch",
        )
        self._run()
        current = self._expect(client, "current_epoch")["epoch"]

        self._network.send(
            client.name,
            self._owner(f"peer:{participant}"),
            "get_last_recon",
            participant=participant,
        )
        self._run()
        last = self._expect(client, "last_recon")["epoch"]

        by_controller: Dict[str, List[int]] = {}
        for epoch in range(last + 1, current + 1):
            controller = self._owner(f"epoch:{epoch}")
            by_controller.setdefault(controller, []).append(epoch)
        for controller, epochs in by_controller.items():
            self._network.send(
                client.name, controller, "get_epoch_contents", epochs=epochs
            )
        self._run()
        per_epoch: Dict[int, Dict] = {}
        for _ in range(len(by_controller)):
            reply = self._expect(client, "epoch_contents")
            for entry in reply["results"]:
                per_epoch[entry["epoch"]] = entry
        contents: Dict[int, List[TransactionId]] = {}
        stable = last
        for epoch in range(last + 1, current + 1):
            entry = per_epoch.get(epoch)
            if entry is None or not entry["exists"] or not entry["complete"]:
                break
            contents[epoch] = entry["ids"]
            stable = epoch

        self._network.send(
            client.name,
            self._owner(f"peer:{participant}"),
            "record_recon",
            participant=participant,
            epoch=stable,
        )
        self._run()
        self._expect(client, "recon_recorded")
        return stable, contents

    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the next batch via the distributed retrieval protocol."""
        client = self._client(participant)
        stable, contents = self._discover_stable(participant, client)

        # Request every candidate root; controllers forward antecedents.
        self._token_counter += 1
        token = f"recon:{participant}:{self._token_counter}"
        requested_roots: Set[TransactionId] = set()
        for epoch in sorted(contents):
            if epoch > stable:
                continue
            for tid in contents[epoch]:
                if tid.participant == participant:
                    continue
                requested_roots.add(tid)
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "request_txn",
                    tid=tid,
                    participant=participant,
                    client=client.name,
                    token=token,
                    as_root=True,
                )
        self._run()

        roots: List[RelevantTransaction] = []
        graph = TransactionGraph()
        shipped: Dict[TransactionId, UpdateExtension] = {}
        for message in client.drain():
            if message.kind != "txn_data":
                continue
            payload = message.payload
            graph.add(
                payload["transaction"],
                payload["antecedents"],
                payload["order"],
            )
            if payload["as_root"] and payload["tid"] in requested_roots:
                roots.append(
                    RelevantTransaction(
                        transaction=payload["transaction"],
                        priority=payload["priority"],
                        order=payload["order"],
                    )
                )
                extension = payload.get("context_free")
                if extension is not None:
                    shipped[payload["tid"]] = self._cf_with_priority(
                        payload["tid"], extension, payload["priority"]
                    )
        batch = ReconciliationBatch(
            recno=stable,
            roots=sorted(roots, key=lambda r: r.order),
            graph=graph,
        )
        if self._ship_context_free:
            batch.extensions = shipped or None
            batch.pair_cache = self._shared_pairs
        return batch

    def _cf_with_priority(
        self,
        tid: TransactionId,
        extension: UpdateExtension,
        priority: int,
    ) -> UpdateExtension:
        """The controller's extension re-priced to the requester's
        priority, memoized per (transaction, priority) so every
        participant at one priority sees the identical object (the
        shared pair memo validates by object identity)."""
        if extension.priority == priority:
            return extension
        key = (tid, priority)
        entry = self._cf_priority_memo.get(key)
        if entry is None or entry[0] is not extension:
            entry = (extension, replace(extension, priority=priority))
            self._cf_priority_memo[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Fully network-centric reconciliation (PR 5)

    def _nc_peer(self, participant: int) -> Dict[str, Any]:
        """The driver's peer-coordinator record for ``participant``."""
        record = self._nc_peers.get(participant)
        if record is None:
            record = self._nc_peers[participant] = {
                "version": 0,
                "deferred": set(),
            }
        return record

    def begin_network_reconciliation(
        self, participant: int
    ) -> ReconciliationBatch:
        """A fully store-computed batch over the ring (Figure 3's last
        quadrant).

        The epoch-discovery front half is identical to the
        client-centric protocol.  Every candidate root — newly stable
        transactions plus the participant's open deferred set, which the
        store reconsiders each round exactly like the central backends —
        is then requested with ``nc_request``: the root's transaction
        controller derives the participant's update extension against
        its applied set (walking the closure with per-member verdict
        queries to the other controllers) and ships it, with any bodies
        the participant lacks, as ``nc_data``.  The driver, standing in
        for the peer coordinator, runs the shared pairwise conflict
        assembly (:func:`~repro.store.network_centric.attach_assembled_payload`)
        and prices the adjacency shipment as one final sized message.

        A root whose derivation failed (a closure member's controller
        lost its record) degrades to the classic Figure-7 retrieval so
        the client computes — and decides — exactly as it would have
        client-centrically.
        """
        client = self._client(participant)
        stable, contents = self._discover_stable(participant, client)
        peer = self._nc_peer(participant)

        candidates: List[TransactionId] = []
        for epoch in sorted(contents):
            if epoch > stable:
                continue
            for tid in contents[epoch]:
                if tid.participant != participant:
                    candidates.append(tid)
        for tid in sorted(peer["deferred"]):
            if tid not in candidates:
                candidates.append(tid)

        self._token_counter += 1
        token = f"ncrecon:{participant}:{self._token_counter}"
        for tid in candidates:
            self._network.send(
                client.name,
                self._owner(f"txn:{tid}"),
                "nc_request",
                tid=tid,
                participant=participant,
                version=peer["version"],
                client=client.name,
                token=token,
            )
        self._run()

        roots: List[RelevantTransaction] = []
        graph = TransactionGraph()
        derived: Dict[TransactionId, UpdateExtension] = {}
        failed: List[TransactionId] = []
        # ``nc_irrelevant`` and ``txn_unknown`` replies are deliberately
        # ignored: a decided/untrusted root, or one whose controller
        # lost its record, drops out of the batch exactly as it does on
        # the client-centric path.
        for message in client.drain():
            if message.kind != "nc_data":
                continue
            payload = message.payload
            if payload["failed"]:
                failed.append(payload["tid"])
                continue
            graph.add(
                payload["transaction"],
                payload["antecedents"],
                payload["order"],
            )
            for transaction, antecedents, order in payload["members"]:
                graph.add(transaction, antecedents, order)
            roots.append(
                RelevantTransaction(
                    transaction=payload["transaction"],
                    priority=payload["priority"],
                    order=payload["order"],
                )
            )
            if payload["extension"] is not None:
                derived[payload["tid"]] = payload["extension"]

        if failed:
            # Degraded roots travel the classic client-centric protocol;
            # the engine recomputes their extensions locally.
            self._token_counter += 1
            fallback = f"recon:{participant}:{self._token_counter}"
            for tid in failed:
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "request_txn",
                    tid=tid,
                    participant=participant,
                    client=client.name,
                    token=fallback,
                    as_root=True,
                )
            self._run()
            failed_set = set(failed)
            for message in client.drain():
                if message.kind != "txn_data":
                    continue
                payload = message.payload
                graph.add(
                    payload["transaction"],
                    payload["antecedents"],
                    payload["order"],
                )
                if payload["as_root"] and payload["tid"] in failed_set:
                    roots.append(
                        RelevantTransaction(
                            transaction=payload["transaction"],
                            priority=payload["priority"],
                            order=payload["order"],
                        )
                    )

        roots.sort(key=lambda root: root.order)
        batch = ReconciliationBatch(recno=stable, roots=roots, graph=graph)
        extensions = {
            root.tid: derived[root.tid]
            for root in roots
            if root.tid in derived
        }
        pair_cache = self._nc_pair_caches.get(participant)
        if pair_cache is None:
            pair_cache = self._nc_pair_caches[participant] = ConflictCache()
        attach_assembled_payload(self.schema, batch, extensions, pair_cache)
        pair_cache.prune(extensions)

        # The assembled adjacency travels from the peer coordinator as
        # one sized message (extensions already paid their fragments on
        # each nc_data delivery).
        edges = sum(len(adj) for adj in batch.conflicts.values()) // 2
        self._network.send(
            self._owner(f"peer:{participant}"),
            client.name,
            "nc_adjacency",
            _fragments=1 + edges,
            _size_bytes=_HEADER_WIRE_BYTES * (1 + edges),
            token=token,
        )
        self._run()
        client.drain()

        if self._ship_context_free:
            batch.pair_cache = self._shared_pairs
        return batch

    # ------------------------------------------------------------------

    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Notify each transaction controller of the decision."""
        client = self._client(participant)
        decisions = [
            (tid, "applied") for tid in result.applied
        ] + [
            (tid, "rejected") for tid in result.rejected
        ] + [
            (tid, "deferred") for tid in result.deferred
        ]
        for tid, verdict in decisions:
            self._network.send(
                client.name,
                self._owner(f"txn:{tid}"),
                "record_decision",
                tid=tid,
                participant=participant,
                verdict=verdict,
            )
        self._run()
        # Peer-coordinator upkeep for the store-computed batch: the open
        # deferred set re-enters every network-centric batch, and the
        # applied-set version validates the controllers' per-participant
        # extension memos.  (Upstream results carry only *newly* deferred
        # roots; removal happens on the eventual final verdict.)
        peer = self._nc_peer(participant)
        peer["deferred"].update(result.deferred)
        peer["deferred"].difference_update(result.applied)
        peer["deferred"].difference_update(result.rejected)
        if result.applied:
            peer["version"] += 1
        retired = [
            message.payload["tid"]
            for message in client.drain()
            if message.kind == "decision_recorded"
            and message.payload.get("retired")
        ]
        if retired:
            # Controllers dropped their derived extensions; retire the
            # driver-side shared memos for the same roots.
            self._shared_pairs.discard(retired)
            gone = set(retired)
            for key in [
                k for k in self._cf_priority_memo if k[0] in gone
            ]:
                del self._cf_priority_memo[key]

    # ------------------------------------------------------------------
    # Failure injection and recovery (Section 5.2.2's sketch)

    def fail_host(self, host_name: str) -> None:
        """Take a physical host down.

        Role ownership routes around failed hosts from now on (the next
        live node clockwise takes over each key).  State held by the
        failed host is lost except for the epoch allocator's counter,
        which :meth:`recover_epoch_allocator` reconstructs by polling —
        the recovery path the paper sketches.  Full data re-replication
        is future work in the paper and out of scope here.
        """
        if host_name not in self._hosts:
            raise StoreError(f"unknown host {host_name!r}")
        live = set(self._hosts) - self._failed_hosts - {host_name}
        if not live:
            raise StoreError("cannot fail the last live host")
        self._network.fail_node(host_name)
        self._failed_hosts.add(host_name)
        self._ring.failed.add(host_name)

    def allocator_host(self) -> str:
        """The host currently owning the epoch-allocator role."""
        return self._owner("epoch-allocator")

    def recover_epoch_allocator(self, participant: int) -> int:
        """Rebuild the epoch counter at the allocator role's new owner.

        ``participant`` drives the recovery: it polls every live host for
        the largest epoch it has seen and installs the maximum at the new
        allocator.  Returns the recovered epoch counter.
        """
        client = self._client(participant)
        live_hosts = [
            name for name in self._hosts if name not in self._failed_hosts
        ]
        for host in live_hosts:
            self._network.send(client.name, host, "poll_max_epoch")
        self._run()
        largest = 0
        for _ in range(len(live_hosts)):
            reply = self._expect(client, "max_epoch")
            largest = max(largest, reply["epoch"])
        self._network.send(
            client.name,
            self._owner("epoch-allocator"),
            "set_epoch_counter",
            epoch=largest,
        )
        self._run()
        reply = self._expect(client, "epoch_counter_set")
        return reply["epoch"]

    # ------------------------------------------------------------------
    # Introspection

    def current_epoch(self) -> int:
        """The allocator's epoch counter (read locally, no messages)."""
        allocator = self._hosts[self._owner("epoch-allocator")]
        return allocator.epoch_counter

    def transaction_count(self) -> int:
        """Total transactions stored across all controllers."""
        return sum(len(host.txns) for host in self._hosts.values())

    def last_reconciliation_epoch(self, participant: int) -> int:
        """The peer coordinator's record (read locally, no messages)."""
        self._client(participant)  # validate registration
        coordinator = self._hosts[self._owner(f"peer:{participant}")]
        record = coordinator.peers.get(participant, {"last_recon_epoch": 0})
        return record["last_recon_epoch"]

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """The antecedents stored at the transaction's controller."""
        return self._nc_lookup(tid)[1]

    def decided_transactions(self, participant: int):
        """Applied transactions (publish order) plus rejected/deferred ids.

        Aggregated across controllers by the driver (state reconstruction
        is a maintenance operation, not part of the timed protocols).
        """
        self._client(participant)  # validate registration
        applied: List[Tuple[int, Transaction]] = []
        rejected: List[TransactionId] = []
        deferred: List[TransactionId] = []
        for host in self._hosts.values():
            for tid, record in host.txns.items():
                verdict = record["decisions"].get(participant)
                if verdict == "applied":
                    applied.append((record["order"], record["transaction"]))
                elif verdict == "rejected":
                    rejected.append(tid)
                elif verdict == "deferred":
                    deferred.append(tid)
        applied.sort(key=lambda pair: pair[0])
        return (
            [transaction for _order, transaction in applied],
            sorted(rejected),
            sorted(deferred),
        )

    def _nc_lookup(self, tid: TransactionId):
        """Driver-side transaction lookup (used by state reconstruction)."""
        controller = self._hosts[self._owner(f"txn:{tid}")]
        record = controller.txns.get(tid)
        if record is None:
            from repro.errors import UnknownTransactionError

            raise UnknownTransactionError(str(tid))
        return record["transaction"], record["antecedents"], record["order"]

    # ------------------------------------------------------------------

    def _expect(self, client: _ClientNode, kind: str) -> Dict[str, Any]:
        """Pop the first inbox message of ``kind``; error if absent."""
        for index, message in enumerate(client.inbox):
            if message.kind == kind:
                client.inbox.pop(index)
                return message.payload
        raise StoreError(
            f"expected a {kind!r} reply; inbox has "
            f"{[m.kind for m in client.inbox]}"
        )
