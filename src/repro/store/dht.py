"""The DHT-based distributed update store (Section 5.2.2, Figures 6-7).

The paper built this on FreePastry with all nodes on one server and at
least 500 microseconds charged per message.  Here the DHT is simulated on
:mod:`repro.net`: the participants' host nodes form a consistent-hashing
ring, and the store's logical roles are mapped onto them by key ownership:

* the **epoch allocator** owns the predesignated key ``"epoch-allocator"``
  and hands out the epoch counter;
* the **epoch controller** for epoch ``e`` owns ``"epoch:e"`` and records
  which transactions were published in ``e`` and whether the epoch is
  complete;
* the **transaction controller** for transaction ``X`` owns ``"txn:X"``
  and stores the transaction, its antecedents, its publish order, each
  peer's decision about it, and — because trust conditions live in the
  store — answers requests with the requester's priority for ``X``;
* the **value controller** for a row value owns ``"value:R:row"`` and
  maintains the producer index used to compute antecedents at publish
  time (an addition over the paper's prose, which does not say where
  ``ante`` is computed; DESIGN.md discusses this substitution);
* the **peer coordinator** for participant ``p`` owns ``"peer:p"`` and
  records ``p``'s reconciliation epochs.

Publication follows Figure 6 message-for-message; retrieval follows
Figure 7, including controller-side forwarding of antecedent requests so
the reconciling peer never chases chains itself.  Every message costs the
configured latency and is accounted serially (messages *and* estimated
bytes — see :mod:`repro.net.simnet`), reproducing the paper's
message-count-dominated cost regime.

Context-free shipping (PR 3)
----------------------------

The paper's distributed store left clients to compute every update
extension locally.  Since PR 3 the DHT has shipping parity with the
central stores — the "distributed store + network-centric" quadrant of
Figure 3:

* **derive once at publish** — when a transaction controller stores a
  new transaction it collects the antecedent closure from the other
  controllers over the simulated network (``cf_fetch``/``cf_data``
  messages, bodies paying fragment costs) and computes the transaction's
  *context-free* update extension (flattened against an empty applied
  set — fixed at publish time, so derived exactly once for the whole
  confederation);
* **ship on fetch** — root deliveries (``txn_data``) carry the derived
  extension, charged as extra fragments/bytes on the first delivery to
  each participant (clients cache it in soft state like bodies);
* **shared pair memo** — the driver keeps one confederation-wide
  :class:`~repro.core.cache.ConflictCache` attached to every batch;
  because every client receives the *same* extension object for a given
  (transaction, priority), the first client to compare a pair serves
  all the others.

The reconciling engine adopts a shipped extension only when its member
closure is disjoint from the local applied set — exactly the condition
under which it equals the local computation — so decisions are
byte-identical to the client-computed path
(``tests/integration/test_store_equivalence.py`` pins this).  Both
memos use reconciliation-aware retention: once every participant holds
a final verdict for a transaction, its controller drops the derived
extension and the driver drops the pairs it participates in.
``ship_context_free=False`` restores the paper's client-compute-only
behaviour (and honestly downgrades the instance's capability flags).

Fully network-centric batches (PR 5, wire protocol PR 8)
--------------------------------------------------------

``begin_network_reconciliation`` closes the last quadrant of Figure 3:
a *distributed* store whose batches arrive fully assembled.  Transaction
controllers already learn every participant's verdicts about their
transactions through the ``record_decision`` feedback; the reconciling
peer's driver groups its candidate roots by owning controller and sends
each controller one ``nc_request`` carrying all of them.  The
controller derives each root's update extension *against that
participant's applied set*, walking the antecedent closure with
*batched* verdict queries: all unresolved members owned by another
controller are collected and asked in one
``nc_fetch_batch``/``nc_member_batch`` round trip per member controller
(the per-participant verdict must be refetched every round — the
mode's honest extra chatter — while bodies ride along only until this
controller has cached them).  The finished extensions and any bodies
the participant lacks return *coalesced*, as one sized ``nc_data``
message per (controller, participant); the driver — standing in for
the peer coordinator, as it already does for antecedent lookups — runs
the pairwise conflict assembly and prices the adjacency as a final
``nc_adjacency`` message.  Controllers memoize the derived extension
per (participant, applied-version) together with a stable content
digest, so the repeated-deferral rounds the paper worries about are
*delta-encoded*: when the client proves (by echoing the digest) that it
still retains the previous round's assembled payload, the controller
answers with a tiny ``nc_unchanged`` token instead of re-shipping
bodies — O(delta) re-delivery cost, not O(state) — with a full-payload
fallback when the client no longer holds it.  The comparison is by
*content*, not version: when the applied set moved, the controller
re-derives and still answers with the token whenever the fresh digest
matches the echo (the root's closure was disjoint from whatever was
newly applied — the common case).  First deliveries are cheap too: the
derived extension travels dictionary-encoded against the member bodies
in the same reply, so only genuinely composed operations pay full
update bytes.  A final verdict retires the memo entry.  The client then runs only ``CheckState``,
``DoGroup``, and application — decisions stay byte-identical to every
other path on the equivalence matrix.

Fault tolerance (PR 6)
----------------------

Three mechanisms close Section 5.2.2's failure sketch:

* **successor replication** — with ``replication_factor=k`` every
  controller-side write (transaction records, decisions, epoch records,
  producer-index entries, peer-coordinator records, the allocator's
  counter) also ships to the key's next ``k - 1`` live ring successors
  as priced ``replicate`` messages.  After :meth:`DhtUpdateStore.fail_host`
  wipes a host, the takeover owner serves each record from its replica
  (promoting it to primary and re-replicating on first access);
  :meth:`DhtUpdateStore.recover_host` rejoins the ring and a
  ``rebalance`` sweep re-ships every record the returning host should
  hold, re-establishing the invariant.
* **retry with request ids** — every request/reply exchange carries a
  request id that is stable across retries and echoed by the handler;
  the driver retries a missing reply with deterministic exponential
  backoff (bounded by ``max_retries``, then
  :class:`~repro.errors.RetryExhaustedError`).  Handlers are idempotent
  and the epoch allocator deduplicates ``request_epoch`` by id, so
  retries and injected duplicates never burn an epoch or skew a
  decision stream.
* **degradation** — cascaded retrievals (``request_txn``,
  ``nc_request``) are retried batch-wise under fresh tokens (the
  controllers' per-token dedup would silently absorb a same-token
  re-request); a store-computed derivation that still fails falls back
  to the client-computed path for that root (surfaced as a
  ``degraded`` hook event), preserving byte-identical decisions.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cache import ConflictCache
from repro.core.decisions import ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
    UpdateExtension,
    compute_update_extension,
)
from repro.errors import FlattenError, RetryExhaustedError, StoreError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.net.ring import HashRing
from repro.net.simnet import (
    DEFAULT_FRAGMENT_BYTES,
    Message,
    Network,
    Node,
)
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.network_centric import (
    NetworkCentricMixin,
    attach_assembled_payload,
)
from repro.store.registry import StoreCapabilities

#: Publish order is (epoch, index within epoch) flattened to one integer.
_EPOCH_STRIDE = 1_000_000

#: Updates per message fragment: DHT messages are size-bounded, so a
#: transaction body travels as ceil(updates / this) fragments, each paying
#: the per-message latency.  Updates carry full tuple values (often two
#: tuples, for replacements), so one update per fragment is the realistic
#: granularity.  This keeps distributed reconciliation cost proportional
#: to the volume of transaction data moved — the regime the paper observes
#: ("requests to follow antecedent transaction chains dominate the running
#: time").
_UPDATES_PER_FRAGMENT = 1


#: Estimated wire bytes per update (full tuple values, often two rows) and
#: per message header; drives the network's byte accounting.
_UPDATE_WIRE_BYTES = 96
_HEADER_WIRE_BYTES = 48


def _payload_fragments(transaction: Transaction) -> int:
    """Fragments needed to ship a transaction body."""
    updates = len(transaction.updates)
    return max(1, -(-updates // _UPDATES_PER_FRAGMENT))


def _body_bytes(transaction: Transaction) -> int:
    """Estimated wire size of a transaction body."""
    return _HEADER_WIRE_BYTES + _UPDATE_WIRE_BYTES * len(transaction.updates)


def _extension_fragments(extension: UpdateExtension) -> int:
    """Fragments needed to ship a derived context-free extension."""
    return max(1, -(-len(extension.operations) // _UPDATES_PER_FRAGMENT))


def _extension_bytes(extension: UpdateExtension) -> int:
    """Estimated wire size of a derived context-free extension."""
    return _HEADER_WIRE_BYTES + _UPDATE_WIRE_BYTES * len(extension.operations)


#: Wire bytes of a transaction id riding in a batched request or reply
#: entry, and of a content digest (a truncated hash on a real wire);
#: these price the tiny batched/delta messages byte-accurately instead
#: of charging a whole default fragment per entry.
_TID_WIRE_BYTES = 16
_DIGEST_WIRE_BYTES = 16

#: A flattened extension operation that is byte-identical to an update
#: inside a member body the client holds (shipped in the same coalesced
#: reply, or delivered in an earlier round) is dictionary-encoded as a
#: (member, update-index) reference instead of travelling in full —
#: the client materialises it by copying, no re-flattening involved.
_OP_REF_WIRE_BYTES = 8
_OP_REFS_PER_FRAGMENT = DEFAULT_FRAGMENT_BYTES // _OP_REF_WIRE_BYTES


def _encoded_extension_cost(
    extension: UpdateExtension, member_updates: Set[str]
) -> Tuple[int, int]:
    """(fragments, bytes) of a derived extension dictionary-encoded
    against the member bodies the client holds.

    Only *composed* operations — nets of several raw updates, which the
    flattening merged and therefore appear in no body verbatim — pay
    full update bytes; everything else rides as a tiny reference.
    """
    verbatim = sum(
        1
        for operation in extension.operations
        if repr(operation) in member_updates
    )
    composed = len(extension.operations) - verbatim
    size = (
        _HEADER_WIRE_BYTES
        + _UPDATE_WIRE_BYTES * composed
        + _OP_REF_WIRE_BYTES * verbatim
    )
    fragments = max(
        1, composed + -(-verbatim // _OP_REFS_PER_FRAGMENT)
    )
    return fragments, size


def _extension_digest(extension: UpdateExtension) -> str:
    """A stable content digest of a derived extension.

    This is the ``nc_unchanged`` token: the client echoes it to prove
    the assembled payload it retained is byte-for-byte the one the
    controller memoized, and the controller answers with the digest
    alone instead of re-shipping bodies.  Built from printable content
    only — never object identities — so it is deterministic across
    processes and restarts.
    """
    content = repr(
        (
            str(extension.root),
            extension.priority,
            tuple(str(member) for member in extension.members),
            tuple(repr(operation) for operation in extension.operations),
        )
    )
    return hashlib.sha1(content.encode("utf-8")).hexdigest()


#: Every message kind this module puts on the wire or handles — the
#: registry RPR009 checks ``Network.send`` literals and ``_on_<kind>``
#: handlers against.  A typo'd kind would otherwise fail silently as an
#: unanswered request that burns the whole retry budget.
KINDS = frozenset(
    {
        # replication and recovery
        "replicate",
        "rebalance",
        # registration
        "register_policy",
        "policy_registered",
        # epoch allocation and publication
        "request_epoch",
        "begin_epoch",
        "epoch_begun",
        "begin_publishing",
        "get_current_epoch",
        "current_epoch",
        "poll_max_epoch",
        "max_epoch",
        "set_epoch_counter",
        "epoch_counter_set",
        "publish_ids",
        "epoch_finished",
        "get_epoch_contents",
        "epoch_contents",
        "lookup_producer",
        "producer_is",
        "register_producer",
        "producer_registered",
        "store_txn",
        "txn_stored",
        # context-free derivation at publish time
        "cf_fetch",
        "cf_data",
        "cf_unknown",
        # client-centric retrieval (Figure 7)
        "request_txn",
        "txn_data",
        "txn_irrelevant",
        "txn_unknown",
        # fully network-centric batches
        "nc_request",
        "nc_fetch_batch",
        "nc_member_batch",
        "nc_data",
        "nc_unchanged",
        "nc_adjacency",
        # decision and reconciliation records
        "record_decision",
        "decision_recorded",
        "record_recon",
        "recon_recorded",
        "get_last_recon",
        "last_recon",
    }
)


class _RingView:
    """A failure-aware view of the ring, shared by the store and all hosts.

    Ownership of a key routes to the next live node clockwise when the
    primary owner has failed — the standard DHT takeover rule.
    """

    def __init__(self, ring: HashRing) -> None:
        self._ring = ring
        self.failed: set = set()

    def owner(self, key: str) -> str:
        """The live owner of ``key``, routing around failed hosts."""
        if self.failed:
            return self._ring.owner_excluding(key, self.failed)
        return self._ring.owner(key)

    def owners(self, key: str, count: int) -> List[str]:
        """The key's live owner followed by its live replica successors
        (successor replication's placement list, at most ``count``)."""
        return self._ring.successors(key, count, excluded=self.failed)


class _HostNode(Node):
    """One physical DHT peer, hosting whatever roles the ring assigns it."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        cache_bodies: bool = True,
        ship_context_free: bool = True,
    ) -> None:
        super().__init__(name)
        self._schema = schema
        self._cache_bodies = cache_bodies
        self._ship_context_free = ship_context_free
        # In-flight context-free derivations, keyed by token: the closure
        # bodies gathered so far and the antecedent fetches still pending.
        self.derivations: Dict[str, Dict[str, Any]] = {}
        # Closure bodies fetched by past derivations, kept for reuse: a
        # dependent published later shares most of its closure with its
        # antecedents, so each body crosses the ring to this controller
        # at most once (bounded by the same O(history) the controllers'
        # own transaction logs already occupy).
        self.cf_bodies: Dict[
            TransactionId, Tuple[Transaction, Tuple[TransactionId, ...], int]
        ] = {}
        # Epoch-allocator role.
        self.epoch_counter = 0
        # Epoch-controller role: epoch -> record.
        self.epochs: Dict[int, Dict[str, Any]] = {}
        # Transaction-controller role: tid -> record.
        self.txns: Dict[TransactionId, Dict[str, Any]] = {}
        # Value-controller role: (relation, row) -> producing tid.
        self.producers: Dict[Tuple[str, Tuple], TransactionId] = {}
        # Peer-coordinator role: participant -> record.
        self.peers: Dict[int, Dict[str, Any]] = {}
        # Trust conditions, replicated to every node at registration.
        self.policies: Dict[int, TrustPolicy] = {}
        # Failure-aware ring view, set by the store after construction.
        self.ring: Optional["_RingView"] = None
        # Dedup of served antecedent-forwarded requests: (token, tid).
        self.served: Set[Tuple[str, TransactionId]] = set()
        # Transactions whose full body each participant has already
        # received.  Clients cache transaction bodies in their soft state
        # (Section 5.2), so later deliveries of the same transaction —
        # e.g. an old antecedent reappearing in a new chain — only need a
        # small header, not the payload.
        self.delivered: Set[Tuple[int, TransactionId]] = set()
        # Fully network-centric mode (PR 5, batched wire protocol PR 8):
        # in-flight per-(participant, token) batches of extension
        # derivations, the tokens already accepted (so an injected
        # duplicate ``nc_request`` cannot restart a batch), and the
        # (participant, tid) -> (applied-version, extension, digest)
        # memo that makes repeated deferral rounds O(1) — a digest-token
        # re-ship when the client retains the payload, a full re-ship
        # otherwise, never a re-derivation.  Entries leave when the
        # participant's final verdict arrives (record_decision).
        self.nc_batches: Dict[str, Dict[str, Any]] = {}
        self.nc_served: Set[str] = set()
        self.nc_memo: Dict[
            Tuple[int, TransactionId], Tuple[int, UpdateExtension, str]
        ] = {}
        # Successor replication (PR 6): how many copies of each record
        # the ring keeps (1 = primary only), and the replicas this host
        # holds for keys it does not own, keyed by (role, key).
        self.replication = 1
        self.replicas: Dict[Tuple[str, Any], Any] = {}
        # At-most-once epoch allocation: publisher -> (request id, epoch),
        # so a retried or duplicated request_epoch re-drives the same
        # epoch instead of burning a new one.
        self.last_alloc: Dict[int, Tuple[Any, int]] = {}

    # ------------------------------------------------------------------

    def wipe(self) -> None:
        """Forget everything — a crash loses the host's in-memory state.

        What survives a crash is whatever the rest of the ring holds:
        successor replicas (``replication >= 2``), the pollable epoch
        history, and the trust policies the driver re-sends on recovery.
        """
        self.derivations.clear()
        self.cf_bodies.clear()
        self.epoch_counter = 0
        self.epochs.clear()
        self.txns.clear()
        self.producers.clear()
        self.peers.clear()
        self.policies.clear()
        self.served.clear()
        self.delivered.clear()
        self.nc_batches.clear()
        self.nc_served.clear()
        self.nc_memo.clear()
        self.replicas.clear()
        self.last_alloc.clear()

    # ------------------------------------------------------------------

    def handle(self, network: Network, message: Message) -> None:
        """Dispatch on message kind."""
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is None:
            raise StoreError(f"host cannot handle message kind {message.kind!r}")
        handler(network, message)

    # -- successor replication (PR 6) -----------------------------------

    @staticmethod
    def _role_key(role: str, key: Any) -> str:
        """The ring key a replicated (role, key) record routes by."""
        if role in ("txn", "txn_decision"):
            return f"txn:{key}"
        if role == "epoch":
            return f"epoch:{key}"
        if role == "producer":
            relation, row = key
            return f"value:{relation}:{row!r}"
        if role == "peer":
            return f"peer:{key}"
        if role == "epoch_counter":
            return "epoch-allocator"
        raise StoreError(f"unknown replication role {role!r}")

    @staticmethod
    def _txn_state(record: Dict[str, Any]) -> Dict[str, Any]:
        """A detached copy of a transaction record for shipping.  The
        derived context-free extension is not replicated: a promoted
        replica serves bodies and verdicts, and clients recompute
        extensions locally — the maskable degradation."""
        return {
            "transaction": record["transaction"],
            "antecedents": record["antecedents"],
            "order": record["order"],
            "decisions": dict(record["decisions"]),
            "context_free": None,
        }

    @staticmethod
    def _epoch_state(record: Dict[str, Any]) -> Dict[str, Any]:
        """A detached copy of an epoch record for shipping."""
        return {
            "publisher": record["publisher"],
            "ids": list(record["ids"]),
            "complete": record["complete"],
        }

    def _replicate(
        self,
        network: Network,
        role: str,
        key: Any,
        state: Any,
        fragments: int = 1,
        size_bytes: int = 0,
    ) -> None:
        """Ship one record copy to each live successor (priced)."""
        if self.replication < 2 or self.ring is None:
            return
        owners = self.ring.owners(self._role_key(role, key), self.replication)
        for target in owners:
            if target == self.name:
                continue
            network.send(
                self.name,
                target,
                "replicate",
                fragments=fragments,
                size_bytes=size_bytes,
                role=role,
                key=key,
                state=state,
            )

    def _replicate_txn(self, network: Network, record: Dict[str, Any]) -> None:
        transaction = record["transaction"]
        self._replicate(
            network,
            "txn",
            transaction.tid,
            self._txn_state(record),
            fragments=_payload_fragments(transaction),
            size_bytes=_body_bytes(transaction),
        )

    def _install_primary(self, role: str, key: Any, state: Any) -> None:
        """Adopt a shipped record as this host's primary copy (the
        takeover-promotion and rebalance paths).  Merges keep the most
        advanced copy when several holders re-ship the same record."""
        if role == "txn":
            existing = self.txns.get(key)
            if existing is None or (
                len(existing["decisions"]) < len(state["decisions"])
            ):
                self.txns[key] = state
        elif role == "epoch":
            existing = self.epochs.get(key)
            if existing is None or (
                state["complete"] and not existing["complete"]
            ):
                self.epochs[key] = state
        elif role == "producer":
            self.producers[key] = state
        elif role == "peer":
            existing = self.peers.get(key)
            if existing is None or (
                existing["last_recon_epoch"] < state["last_recon_epoch"]
            ):
                self.peers[key] = state
        elif role == "epoch_counter":
            self.epoch_counter = max(self.epoch_counter, state)

    def _install_replica(self, role: str, key: Any, state: Any) -> None:
        """File a shipped record as a replica (same merge rules)."""
        slot = (role, key)
        existing = self.replicas.get(slot)
        if existing is not None:
            if role == "txn" and (
                len(existing["decisions"]) > len(state["decisions"])
            ):
                return
            if role == "epoch" and existing["complete"]:
                return
            if role == "peer" and (
                existing["last_recon_epoch"] > state["last_recon_epoch"]
            ):
                return
            if role == "epoch_counter":
                state = max(existing, state)
        self.replicas[slot] = state

    def _on_replicate(self, network: Network, message: Message) -> None:
        payload = message.payload
        role, key, state = payload["role"], payload["key"], payload["state"]
        if role == "txn_decision":
            # A decision delta: apply to whichever copy this host holds.
            participant, verdict = state
            record = self.txns.get(key)
            if record is None:
                record = self.replicas.get(("txn", key))
            if record is not None:
                record["decisions"][participant] = verdict
            return
        if (
            self.ring is not None
            and self.ring.owner(self._role_key(role, key)) == self.name
        ):
            self._install_primary(role, key, state)
        else:
            self._install_replica(role, key, state)

    def _on_rebalance(self, network: Network, message: Message) -> None:
        """Re-establish the replication invariant after a host returns.

        The driver broadcasts one ``rebalance`` per live host naming the
        recovered ``target``; each host re-ships every record the target
        should now hold (as owner or replica successor) and re-files its
        own copies — promoting, demoting, or handing them off — under
        the new ownership map.  Shipments are priced like write-time
        replication, so recovery cost shows up in the network counters.
        """
        target = message.payload["target"]

        def place(role, key, state, fragments=1, size_bytes=0):
            """Ship ``target`` its copy of one record under the new map."""
            owners = self.ring.owners(
                self._role_key(role, key), self.replication
            )
            if target in owners and target != self.name:
                network.send(
                    self.name,
                    target,
                    "replicate",
                    fragments=fragments,
                    size_bytes=size_bytes,
                    role=role,
                    key=key,
                    state=state,
                )
            return owners

        for tid, record in list(self.txns.items()):
            transaction = record["transaction"]
            owners = place(
                "txn", tid, self._txn_state(record),
                _payload_fragments(transaction), _body_bytes(transaction),
            )
            if self.name not in owners:
                if target in owners:  # handed off, not lost
                    del self.txns[tid]
            elif owners[0] != self.name:
                self._install_replica("txn", tid, self.txns.pop(tid))
        for epoch, record in list(self.epochs.items()):
            owners = place("epoch", epoch, self._epoch_state(record))
            if self.name not in owners:
                if target in owners:
                    del self.epochs[epoch]
            elif owners[0] != self.name:
                self._install_replica("epoch", epoch, self.epochs.pop(epoch))
        for key, tid in list(self.producers.items()):
            owners = place("producer", key, tid)
            if self.name not in owners:
                if target in owners:
                    del self.producers[key]
            elif owners[0] != self.name:
                self._install_replica("producer", key, self.producers.pop(key))
        for participant, record in list(self.peers.items()):
            owners = place("peer", participant, dict(record))
            if self.name not in owners:
                if target in owners:
                    del self.peers[participant]
            elif owners[0] != self.name:
                self._install_replica(
                    "peer", participant, self.peers.pop(participant)
                )
        counter = self._allocator_counter()
        if counter:
            owners = place("epoch_counter", 0, counter)
            if owners[0] == self.name:
                self.epoch_counter = counter
            else:
                self.epoch_counter = 0
                self.replicas.pop(("epoch_counter", 0), None)
                if self.name in owners:
                    self._install_replica("epoch_counter", 0, counter)
        # Re-file held replicas under the new ownership map.
        for (role, key), state in list(self.replicas.items()):
            if role == "epoch_counter":
                continue  # handled with the counter above
            fragments, size = 1, 0
            if role == "txn":
                fragments = _payload_fragments(state["transaction"])
                size = _body_bytes(state["transaction"])
            owners = place(role, key, state, fragments, size)
            if self.name not in owners:
                if target in owners:
                    del self.replicas[(role, key)]
            elif owners[0] == self.name:
                self._install_primary(role, key, self.replicas.pop((role, key)))

    # -- replica-aware accessors ----------------------------------------

    def _allocator_counter(self) -> int:
        """The effective epoch counter: primary or surviving replica."""
        return max(
            self.epoch_counter, self.replicas.get(("epoch_counter", 0), 0)
        )

    def _promote(self, network: Network, role: str, key: Any):
        """Serve a key this host now owns from its replica: promote the
        replica to primary and re-replicate so the copy count recovers
        (the original owner is down, so the successor chain shifted)."""
        slot = (role, key)
        if slot not in self.replicas:
            return None
        if self.ring is None or (
            self.ring.owner(self._role_key(role, key)) != self.name
        ):
            return None
        state = self.replicas.pop(slot)
        self._install_primary(role, key, state)
        return state

    def _txn_record(
        self, network: Network, tid: TransactionId
    ) -> Optional[Dict[str, Any]]:
        record = self.txns.get(tid)
        if record is None and self._promote(network, "txn", tid) is not None:
            record = self.txns[tid]
            self._replicate_txn(network, record)
        return record

    def _epoch_record(
        self, network: Network, epoch: int
    ) -> Optional[Dict[str, Any]]:
        record = self.epochs.get(epoch)
        if record is None and self._promote(network, "epoch", epoch) is not None:
            record = self.epochs[epoch]
            self._replicate(network, "epoch", epoch, self._epoch_state(record))
        return record

    def _peer_record(
        self, network: Network, participant: int
    ) -> Optional[Dict[str, Any]]:
        record = self.peers.get(participant)
        if record is None and (
            self._promote(network, "peer", participant) is not None
        ):
            record = self.peers[participant]
            self._replicate(network, "peer", participant, dict(record))
        return record

    def _producer_lookup(
        self, network: Network, key: Tuple[str, Tuple]
    ) -> Optional[TransactionId]:
        producer = self.producers.get(key)
        if producer is None and (
            self._promote(network, "producer", key) is not None
        ):
            producer = self.producers[key]
            self._replicate(network, "producer", key, producer)
        return producer

    # -- registration ---------------------------------------------------

    def _on_register_policy(self, network: Network, message: Message) -> None:
        payload = message.payload
        self.policies[payload["participant"]] = payload["policy"]
        network.send(
            self.name,
            message.sender,
            "policy_registered",
            participant=payload["participant"],
            req=payload.get("req"),
        )

    # -- epoch allocator (Figure 6, messages 1-4) -----------------------

    def _on_request_epoch(self, network: Network, message: Message) -> None:
        payload = message.payload
        publisher = payload["publisher"]
        req = payload.get("req")
        last = self.last_alloc.get(publisher)
        if req is not None and last is not None and last[0] == req:
            # At-most-once: a retried (or duplicated) request re-drives
            # the already-allocated epoch instead of burning a new one.
            epoch = last[1]
        else:
            self.epoch_counter = self._allocator_counter() + 1
            epoch = self.epoch_counter
            self.last_alloc[publisher] = (req, epoch)
            self._replicate(network, "epoch_counter", 0, self.epoch_counter)
        controller = self.ring.owner(f"epoch:{epoch}")
        network.send(
            self.name,
            controller,
            "begin_epoch",
            epoch=epoch,
            publisher=publisher,
            reply_to=message.sender,
            req=req,
        )

    def _on_begin_epoch(self, network: Network, message: Message) -> None:
        payload = message.payload
        epoch = payload["epoch"]
        record = self._epoch_record(network, epoch)
        if record is None:
            # A duplicated begin_epoch must not reopen an existing
            # (possibly completed) epoch record.
            record = self.epochs[epoch] = {
                "publisher": payload["publisher"],
                "ids": [],
                "complete": False,
            }
            self._replicate(network, "epoch", epoch, self._epoch_state(record))
        allocator = self.ring.owner("epoch-allocator")
        network.send(
            self.name,
            allocator,
            "epoch_begun",
            epoch=epoch,
            reply_to=payload["reply_to"],
            req=payload.get("req"),
        )

    def _on_epoch_begun(self, network: Network, message: Message) -> None:
        payload = message.payload
        network.send(
            self.name,
            payload["reply_to"],
            "begin_publishing",
            epoch=payload["epoch"],
            req=payload.get("req"),
        )

    def _on_get_current_epoch(self, network: Network, message: Message) -> None:
        network.send(
            self.name,
            message.sender,
            "current_epoch",
            epoch=self._allocator_counter(),
            req=message.payload.get("req"),
        )

    def _on_poll_max_epoch(self, network: Network, message: Message) -> None:
        """Report the largest epoch this node has seen (allocator recovery).

        Section 5.2.2: "if this peer were to fail, its data could be
        reconstructed by polling for the largest epoch present in the
        system" — every node answers with the largest epoch among those it
        controls (or has allocated), including replicated epoch records.
        """
        known = max(self.epochs, default=0)
        replicated = max(
            (key for role, key in self.replicas if role == "epoch"),
            default=0,
        )
        network.send(
            self.name,
            message.sender,
            "max_epoch",
            epoch=max(known, replicated, self._allocator_counter()),
            req=message.payload.get("req"),
        )

    def _on_set_epoch_counter(self, network: Network, message: Message) -> None:
        self.epoch_counter = max(self.epoch_counter, message.payload["epoch"])
        self._replicate(network, "epoch_counter", 0, self.epoch_counter)
        network.send(
            self.name, message.sender, "epoch_counter_set",
            epoch=self.epoch_counter,
            req=message.payload.get("req"),
        )

    # -- epoch controller (Figure 6, messages 5-6) ----------------------

    def _on_publish_ids(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self._epoch_record(network, payload["epoch"])
        if record is None:
            raise StoreError(f"epoch {payload['epoch']} was never begun here")
        if not record["complete"]:  # duplicate closes are no-ops
            record["ids"] = list(payload["ids"])
            record["complete"] = True
            self._replicate(
                network, "epoch", payload["epoch"], self._epoch_state(record)
            )
        network.send(
            self.name,
            message.sender,
            "epoch_finished",
            epoch=payload["epoch"],
            req=payload.get("req"),
        )

    def _on_get_epoch_contents(self, network: Network, message: Message) -> None:
        """Serve the contents of every requested epoch this node controls.

        The reconciling peer batches all epochs owned by the same
        controller into one request, so the per-reconciliation overhead is
        one round trip per *distinct controller*, not per epoch.
        """
        payload = message.payload
        results = []
        for epoch in payload["epochs"]:
            record = self._epoch_record(network, epoch)
            results.append(
                {
                    "epoch": epoch,
                    "ids": list(record["ids"]) if record else [],
                    "complete": bool(record and record["complete"]),
                    "exists": record is not None,
                }
            )
        network.send(
            self.name, message.sender, "epoch_contents", results=results,
            req=payload.get("req"),
        )

    # -- value controllers (producer index) -----------------------------

    def _on_lookup_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        key = (payload["relation"], payload["row"])
        network.send(
            self.name,
            message.sender,
            "producer_is",
            relation=payload["relation"],
            row=payload["row"],
            producer=self._producer_lookup(network, key),
            req=payload.get("req"),
        )

    def _on_register_producer(self, network: Network, message: Message) -> None:
        payload = message.payload
        key = (payload["relation"], payload["row"])
        self.producers[key] = payload["tid"]
        self._replicate(network, "producer", key, payload["tid"])
        network.send(
            self.name,
            message.sender,
            "producer_registered",
            relation=payload["relation"],
            row=payload["row"],
            req=payload.get("req"),
        )

    # -- transaction controllers ----------------------------------------

    def _on_store_txn(self, network: Network, message: Message) -> None:
        payload = message.payload
        transaction: Transaction = payload["transaction"]
        record = self._txn_record(network, transaction.tid)
        fresh = record is None
        if fresh:
            record = self.txns[transaction.tid] = {
                "transaction": transaction,
                "antecedents": tuple(payload["antecedents"]),
                "order": payload["order"],
                "decisions": {transaction.origin: "applied"},
                "context_free": None,
            }
            self._replicate_txn(network, record)
        network.send(
            self.name, message.sender, "txn_stored", tid=transaction.tid,
            req=payload.get("req"),
        )
        if fresh and self._ship_context_free:
            self._begin_cf_derivation(network, transaction.tid)

    # -- context-free derivation (derive once at publish) ---------------

    def _begin_cf_derivation(
        self, network: Network, tid: TransactionId
    ) -> None:
        """Gather the antecedent closure and derive the transaction's
        context-free extension.

        Antecedents are always published (and hence stored) before their
        dependents, so every body this walk requests already sits at a
        controller.  Bodies this controller already holds — its own
        transactions, or closure bodies fetched by earlier derivations
        (``cf_bodies``) — are absorbed locally; only the rest cross the
        ring as ``cf_fetch``/``cf_data`` pairs, each paying the body's
        fragment and byte costs.  With the reuse cache, a body travels
        to this controller at most once ever, so chains cost O(new
        members) per publish instead of refetching the whole closure.
        """
        record = self.txns[tid]
        token = f"cf:{self.name}:{tid}"
        derivation: Dict[str, Any] = {
            "tid": tid,
            "bodies": {
                tid: (record["transaction"], record["antecedents"],
                      record["order"])
            },
            "pending": set(),
            "failed": False,
        }
        self.derivations[token] = derivation
        self._cf_request(network, derivation, token, record["antecedents"])
        if not derivation["pending"]:
            self._finish_cf_derivation(token)

    def _cf_local_body(self, tid: TransactionId):
        """A body this controller can serve without a network fetch."""
        record = self.txns.get(tid)
        if record is not None:
            return (record["transaction"], record["antecedents"],
                    record["order"])
        return self.cf_bodies.get(tid)

    def _cf_request(
        self, network: Network, derivation: Dict[str, Any], token: str, tids
    ) -> None:
        """Absorb locally-available bodies (walking their antecedents
        too) and send ``cf_fetch`` for the rest."""
        worklist = list(tids)
        while worklist:
            tid = worklist.pop()
            if tid in derivation["bodies"] or tid in derivation["pending"]:
                continue
            body = self._cf_local_body(tid)
            if body is not None:
                derivation["bodies"][tid] = body
                worklist.extend(body[1])
                continue
            derivation["pending"].add(tid)
            network.send(
                self.name,
                self.ring.owner(f"txn:{tid}"),
                "cf_fetch",
                tid=tid,
                token=token,
                reply_to=self.name,
            )

    def _on_cf_fetch(self, network: Network, message: Message) -> None:
        payload = message.payload
        tid: TransactionId = payload["tid"]
        record = self._txn_record(network, tid)
        if record is None:
            network.send(
                self.name,
                payload["reply_to"],
                "cf_unknown",
                tid=tid,
                token=payload["token"],
            )
            return
        transaction = record["transaction"]
        network.send(
            self.name,
            payload["reply_to"],
            "cf_data",
            fragments=_payload_fragments(transaction),
            size_bytes=_body_bytes(transaction),
            tid=tid,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            token=payload["token"],
        )

    def _on_cf_data(self, network: Network, message: Message) -> None:
        payload = message.payload
        derivation = self.derivations.get(payload["token"])
        if derivation is None or derivation["failed"]:
            return
        tid: TransactionId = payload["tid"]
        derivation["pending"].discard(tid)
        body = (
            payload["transaction"],
            payload["antecedents"],
            payload["order"],
        )
        derivation["bodies"][tid] = body
        self.cf_bodies.setdefault(tid, body)
        self._cf_request(
            network, derivation, payload["token"], payload["antecedents"]
        )
        if not derivation["pending"]:
            self._finish_cf_derivation(payload["token"])

    def _on_cf_unknown(self, network: Network, message: Message) -> None:
        """Part of the closure is gone (e.g. its controller failed before
        re-replication): abort — the root ships no extension and clients
        fall back to local computation."""
        derivation = self.derivations.pop(message.payload["token"], None)
        if derivation is not None:
            derivation["failed"] = True

    def _finish_cf_derivation(self, token: str) -> None:
        derivation = self.derivations.pop(token)
        tid: TransactionId = derivation["tid"]
        graph = TransactionGraph()
        for transaction, antecedents, order in derivation["bodies"].values():
            graph.add(transaction, antecedents, order)
        record = self.txns[tid]
        # Priority 0 marks "participant-agnostic"; the driver substitutes
        # each requester's priority (memoized, so object identity — which
        # the shared pair memo validates by — is preserved per priority).
        root = RelevantTransaction(
            transaction=record["transaction"],
            priority=0,
            order=record["order"],
        )
        try:
            record["context_free"] = compute_update_extension(
                self._schema, graph, root, frozenset()
            )
        except FlattenError:
            record["context_free"] = None

    # -- fully network-centric batches (PR 5, batched wire PR 8) --------
    #
    # ``begin_network_reconciliation`` over the ring: the reconciling
    # peer's driver groups its candidate roots by owning controller and
    # sends each controller one ``nc_request`` carrying all of them.
    # The controller derives each root's update extension *against that
    # participant's applied set*.  The closure walk is batched: bodies
    # cached from earlier derivations (``cf_bodies``) make the closure
    # structure locally known, so the walk expands through them
    # speculatively and collects every unresolved member, then asks each
    # member's controller with one ``nc_fetch_batch`` per (controller,
    # round) — the per-participant verdict must be refetched every
    # round, which is the mode's honest extra chatter, while bodies ride
    # along in the ``nc_member_batch`` reply only until this controller
    # has cached them.  Finished roots coalesce into one sized
    # ``nc_data`` reply per (controller, participant) carrying all
    # extensions and any bodies the participant lacks; roots whose
    # extension — memoized or freshly re-derived — is content-identical
    # to the payload the client retains (it echoed the matching digest)
    # answer inside a tiny ``nc_unchanged`` token message instead — the
    # delta-encoded re-ship, O(delta) not O(state).  Controllers learn the
    # per-participant applied/rejected verdicts from the
    # ``record_decision`` feedback the driver already routes to them
    # after every reconciliation.

    def _on_nc_request(self, network: Network, message: Message) -> None:
        """Open one participant's batch of candidate roots."""
        payload = message.payload
        token: str = payload["token"]
        if token in self.nc_batches or token in self.nc_served:
            return  # an injected duplicate of a batch already accepted
        self.nc_served.add(token)
        participant: int = payload["participant"]
        version: int = payload["version"]
        batch: Dict[str, Any] = {
            "client": payload["client"],
            "participant": participant,
            "version": version,
            # Per-root derivation state, and the roots still walking.
            "roots": {},
            "open": set(),
            # Coalesced reply under construction: per-root entries, the
            # provably-unchanged digests, and the accumulated pricing.
            "entries": {},
            "unchanged": {},
            "fragments": 0,
            "size": _HEADER_WIRE_BYTES,
            # Member verdicts resolved this round (shared across the
            # batch's roots — one wire query per member per round), the
            # members already queried, the frontier still to query, and
            # which roots wait on which member.
            "resolved": {},
            "asked": set(),
            "to_ask": set(),
            "waiters": {},
        }
        self.nc_batches[token] = batch
        for entry in payload["roots"]:
            tid: TransactionId = entry["tid"]
            record = self._txn_record(network, tid)
            if record is None:
                # Same terminal answer a client-centric request_txn gets
                # for a lost record: the root drops out of the batch
                # identically in both modes.
                batch["entries"][tid] = {"tid": tid, "status": "unknown"}
                continue
            verdict = record["decisions"].get(participant)
            priority = 0
            policy = self.policies.get(participant)
            if policy is not None:
                priority = policy.priority_of(
                    self._schema, record["transaction"]
                )
            if verdict in ("applied", "rejected") or priority <= 0:
                batch["entries"][tid] = {"tid": tid, "status": "irrelevant"}
                continue
            memo = self.nc_memo.get((participant, tid))
            if (
                memo is not None
                and memo[0] == version
                and memo[1].priority == priority
            ):
                if entry.get("digest") == memo[2]:
                    # The client proved it retains the identical
                    # assembled payload: the digest token alone answers
                    # this root (the delta-encoded re-ship).
                    batch["unchanged"][tid] = memo[2]
                    continue
                if self._nc_stage_from_memo(
                    batch, record, priority, memo[1], memo[2]
                ):
                    continue
            rstate: Dict[str, Any] = {
                "tid": tid,
                "record": record,
                "priority": priority,
                # The digest of the payload the client retains, if any:
                # a stale-version re-derivation that lands on the same
                # content still answers with a token, not bodies.
                "want_digest": entry.get("digest"),
                "bodies": {
                    tid: (record["transaction"], record["antecedents"],
                          record["order"])
                },
                "applied": set(),
                "waiting": set(),
            }
            batch["roots"][tid] = rstate
            batch["open"].add(tid)
            self._nc_expand(batch, rstate, record["antecedents"])
        self._nc_pump(network, token)

    def _nc_expand(
        self, batch: Dict[str, Any], rstate: Dict[str, Any], tids
    ) -> None:
        """Advance one root's closure walk as far as local knowledge
        allows: absorb members whose verdict this controller holds (its
        own transactions) or that another root of this batch already
        resolved, expand *structurally* through the ``cf_bodies`` cache
        even before the member's verdict is back (the verdict only
        decides where flattening stops — fetching it is exactly what the
        batched query is for), and queue everything unresolved for the
        next ``nc_fetch_batch`` round."""
        participant = batch["participant"]
        worklist = list(tids)
        while worklist:
            tid = worklist.pop()
            if (
                tid in rstate["bodies"]
                or tid in rstate["applied"]
                or tid in rstate["waiting"]
            ):
                continue
            resolution = batch["resolved"].get(tid)
            if resolution is None:
                record = self.txns.get(tid)
                if record is not None:
                    # Our own transaction: verdict and body are local.
                    if record["decisions"].get(participant) == "applied":
                        resolution = ("applied", None)
                    else:
                        resolution = (
                            "body",
                            (record["transaction"], record["antecedents"],
                             record["order"]),
                        )
                    batch["resolved"][tid] = resolution
            if resolution is None:
                # Remote member: its controller owes us the verdict
                # (and the body, unless cached).  Walk the known
                # structure now so the whole frontier lands in one
                # query round.
                rstate["waiting"].add(tid)
                batch["waiters"].setdefault(tid, set()).add(rstate["tid"])
                batch["to_ask"].add(tid)
                body = self.cf_bodies.get(tid)
                if body is not None:
                    rstate["bodies"][tid] = body
                    worklist.extend(body[1])
                continue
            kind, body = resolution
            if kind == "applied":
                rstate["applied"].add(tid)
            elif kind == "body":
                rstate["bodies"][tid] = body
                worklist.extend(body[1])
            # An "unknown" member leaves a hole; _nc_finish_root fails
            # the root only if the hole is actually reachable.

    def _nc_pump(self, network: Network, token: str) -> None:
        """Finish roots whose walk completed, flush the batched member
        queries, and ship the coalesced replies once nothing is open."""
        batch = self.nc_batches.get(token)
        if batch is None:
            return
        for tid in sorted(batch["open"]):
            if not batch["roots"][tid]["waiting"]:
                batch["open"].discard(tid)
                self._nc_finish_root(batch, tid)
        queries: Dict[str, List[TransactionId]] = {}
        for tid in sorted(batch["to_ask"]):
            if tid in batch["asked"]:
                continue
            batch["asked"].add(tid)
            queries.setdefault(
                self.ring.owner(f"txn:{tid}"), []
            ).append(tid)
        batch["to_ask"] = set()
        for controller in sorted(queries):
            members = queries[controller]
            network.send(
                self.name,
                controller,
                "nc_fetch_batch",
                size_bytes=(
                    _HEADER_WIRE_BYTES + len(members) * _TID_WIRE_BYTES
                ),
                token=token,
                participant=batch["participant"],
                reply_to=self.name,
                members=[
                    {"tid": tid, "need_body": tid not in self.cf_bodies}
                    for tid in members
                ],
            )
        if not batch["open"]:
            self._nc_flush_batch(network, token)

    def _on_nc_fetch_batch(self, network: Network, message: Message) -> None:
        """Answer a batched member query: the participant's verdict for
        every member this controller owns, plus the bodies the asking
        controller does not hold yet — one reply per (controller,
        controller, round) instead of one per member."""
        payload = message.payload
        participant: int = payload["participant"]
        entries: List[Dict[str, Any]] = []
        fragments = 0
        size = _HEADER_WIRE_BYTES
        for member in payload["members"]:
            tid: TransactionId = member["tid"]
            size += _TID_WIRE_BYTES
            record = self._txn_record(network, tid)
            if record is None:
                entries.append({"tid": tid, "status": "unknown"})
                continue
            applied = (
                record["decisions"].get(participant) == "applied"
            )
            transaction = None
            if not applied and member["need_body"]:
                transaction = record["transaction"]
                fragments += _payload_fragments(transaction)
                size += _body_bytes(transaction)
            entries.append(
                {
                    "tid": tid,
                    "status": "member",
                    "applied": applied,
                    "transaction": transaction,
                    "antecedents": record["antecedents"],
                    "order": record["order"],
                }
            )
        network.send(
            self.name,
            payload["reply_to"],
            "nc_member_batch",
            fragments=max(1, fragments),
            size_bytes=size,
            token=payload["token"],
            entries=entries,
        )

    def _on_nc_member_batch(self, network: Network, message: Message) -> None:
        payload = message.payload
        batch = self.nc_batches.get(payload["token"])
        if batch is None:
            return  # stale traffic for a finished or abandoned batch
        for entry in payload["entries"]:
            tid: TransactionId = entry["tid"]
            if tid in batch["resolved"]:
                continue  # an injected duplicate reply
            if entry["status"] == "unknown":
                resolution = ("unknown", None)
            elif entry["applied"]:
                resolution = ("applied", None)
            else:
                if entry["transaction"] is not None:
                    body = (
                        entry["transaction"],
                        entry["antecedents"],
                        entry["order"],
                    )
                    self.cf_bodies.setdefault(tid, body)
                else:
                    body = self.cf_bodies.get(tid)
                if body is None:  # pragma: no cover - protocol guarantee
                    resolution = ("unknown", None)
                else:
                    resolution = ("body", body)
            batch["resolved"][tid] = resolution
            for root_tid in sorted(batch["waiters"].pop(tid, ())):
                rstate = batch["roots"][root_tid]
                rstate["waiting"].discard(tid)
                kind, body = resolution
                if kind == "applied":
                    rstate["applied"].add(tid)
                elif kind == "body":
                    # The speculative walk may already hold this body
                    # from cf_bodies; absorbing it again is a no-op.
                    had = tid in rstate["bodies"]
                    rstate["bodies"][tid] = body
                    if not had:
                        self._nc_expand(batch, rstate, body[1])
                else:
                    rstate["bodies"].pop(tid, None)
        self._nc_pump(network, payload["token"])

    def _nc_finish_root(
        self, batch: Dict[str, Any], root_tid: TransactionId
    ) -> None:
        """Derive and stage one finished root of the batch."""
        rstate = batch["roots"].pop(root_tid)
        record = rstate["record"]
        # The precise closure: reachable from the root through the
        # gathered bodies, stopping at the participant's applied
        # transactions.  The speculative cf_bodies expansion may have
        # walked past an applied stop; anything beyond it is neither
        # shipped nor required to have resolved.
        needed: Dict[
            TransactionId, Tuple[Transaction, Tuple[TransactionId, ...], int]
        ] = {}
        missing = False
        worklist: List[TransactionId] = [root_tid]
        while worklist:
            tid = worklist.pop()
            if tid in needed or tid in rstate["applied"]:
                continue
            body = rstate["bodies"].get(tid)
            if body is None:
                missing = True
                continue
            needed[tid] = body
            worklist.extend(body[1])
        if missing:
            # Part of the closure is gone (a controller lost the record
            # beyond the replication budget): the driver falls back to
            # the classic Figure-7 retrieval for this root and the
            # client computes — and decides — locally.
            batch["entries"][root_tid] = {
                "tid": root_tid, "status": "failed",
            }
            return
        graph = TransactionGraph()
        for transaction, antecedents, order in needed.values():
            graph.add(transaction, antecedents, order)
        root = RelevantTransaction(
            transaction=record["transaction"],
            priority=rstate["priority"],
            order=record["order"],
        )
        try:
            extension = compute_update_extension(
                self._schema, graph, root, frozenset(rstate["applied"])
            )
        except FlattenError:
            # Ship the bodies with no extension: the client's fallback
            # recomputation reaches the same FlattenError and rejects
            # the root, byte-identically to the client-centric path.
            extension = None
        digest = None
        if extension is not None:
            digest = _extension_digest(extension)
            self.nc_memo[(batch["participant"], root_tid)] = (
                batch["version"], extension, digest,
            )
            if digest == rstate.get("want_digest"):
                # The applied-set version moved, but the freshly derived
                # extension is content-identical to the payload the
                # client retains (its closure is disjoint from whatever
                # was newly applied).  The digest token answers the
                # root; no body or extension byte travels again.
                batch["unchanged"][root_tid] = digest
                return
        self._nc_stage_data(
            batch, record, rstate["priority"], extension, digest, needed
        )

    def _nc_stage_from_memo(
        self,
        batch: Dict[str, Any],
        record: Dict[str, Any],
        priority: int,
        extension: UpdateExtension,
        digest: str,
    ) -> bool:
        """Stage a full re-ship of a memoized extension (the client
        holds no matching retained payload); False when a member body
        has been lost locally, forcing a fresh derivation."""
        bodies = {}
        for member in extension.members:
            body = self._cf_local_body(member)
            if body is None:  # pragma: no cover - bodies cache is unbounded
                return False
            bodies[member] = body
        self._nc_stage_data(batch, record, priority, extension, digest, bodies)
        return True

    def _nc_stage_data(
        self,
        batch: Dict[str, Any],
        record: Dict[str, Any],
        priority: int,
        extension: Optional[UpdateExtension],
        digest: Optional[str],
        bodies: Dict[
            TransactionId, Tuple[Transaction, Tuple[TransactionId, ...], int]
        ],
    ) -> None:
        """Stage one root's payload into the coalesced ``nc_data``.

        Pricing mirrors ``txn_data``: each body not yet delivered to the
        participant (as this controller knows it — a body another
        controller delivered may be re-priced, a deliberately
        conservative estimate) pays its fragments and bytes; the derived
        extension rides dictionary-encoded against the member bodies the
        client holds (see :func:`_encoded_extension_cost`); everything
        already held client-side — and every coalesced root beyond the
        first — rides in the one shared header.
        """
        participant = batch["participant"]
        transaction: Transaction = record["transaction"]
        tid = transaction.tid
        members = []
        for member, body in sorted(
            bodies.items(), key=lambda item: item[1][2]
        ):
            first = (
                not self._cache_bodies
                or (participant, member) not in self.delivered
            )
            self.delivered.add((participant, member))
            if first:
                batch["fragments"] += _payload_fragments(body[0])
                batch["size"] += _body_bytes(body[0])
            if member != tid:
                members.append(body)
        if extension is not None:
            pool: Set[str] = set()
            for member in extension.members:
                body = bodies.get(member)
                if body is None:
                    body = self._cf_local_body(member)
                if body is not None:
                    pool.update(
                        repr(update) for update in body[0].updates
                    )
            ext_fragments, ext_bytes = _encoded_extension_cost(
                extension, pool
            )
            batch["fragments"] += ext_fragments
            batch["size"] += ext_bytes
        batch["entries"][tid] = {
            "tid": tid,
            "status": "data",
            "transaction": transaction,
            "antecedents": record["antecedents"],
            "order": record["order"],
            "priority": priority,
            "extension": extension,
            "members": members,
            "digest": digest,
        }

    def _nc_flush_batch(self, network: Network, token: str) -> None:
        """Ship the coalesced replies: one tiny ``nc_unchanged`` token
        message for the provably-unchanged roots, and one sized
        ``nc_data`` carrying everything else this controller owes the
        participant this round."""
        batch = self.nc_batches.pop(token)
        client = batch["client"]
        if batch["unchanged"]:
            network.send(
                self.name,
                client,
                "nc_unchanged",
                size_bytes=(
                    _HEADER_WIRE_BYTES
                    + len(batch["unchanged"])
                    * (_TID_WIRE_BYTES + _DIGEST_WIRE_BYTES)
                ),
                token=token,
                entries=[
                    {"tid": tid, "digest": batch["unchanged"][tid]}
                    for tid in sorted(batch["unchanged"])
                ],
            )
        if batch["entries"]:
            entries = [
                batch["entries"][tid] for tid in sorted(batch["entries"])
            ]
            # Terminal non-data entries (irrelevant/unknown/failed) ride
            # as tiny per-root markers in the shared header's message.
            size = batch["size"] + sum(
                _TID_WIRE_BYTES
                for entry in entries
                if entry["status"] != "data"
            )
            network.send(
                self.name,
                client,
                "nc_data",
                fragments=max(1, batch["fragments"]),
                size_bytes=size,
                token=token,
                entries=entries,
            )

    def _on_request_txn(self, network: Network, message: Message) -> None:
        """Figure 7: serve a transaction, forwarding antecedent requests."""
        payload = message.payload
        tid: TransactionId = payload["tid"]
        participant: int = payload["participant"]
        client: str = payload["client"]
        token: str = payload["token"]
        as_root: bool = payload["as_root"]

        if (token, tid) in self.served:
            return  # someone already triggered this delivery

        record = self._txn_record(network, tid)
        if record is None:
            network.send(self.name, client, "txn_unknown", tid=tid)
            return

        verdict = record["decisions"].get(participant)
        transaction: Transaction = record["transaction"]
        priority = 0
        policy = self.policies.get(participant)
        if policy is not None:
            priority = policy.priority_of(self._schema, transaction)

        if verdict in ("applied", "rejected"):
            # Permanently irrelevant for this participant.
            self.served.add((token, tid))
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return
        if as_root and (verdict == "deferred" or priority <= 0):
            # Not deliverable as a root, but a later forwarded request may
            # still need it as an antecedent — do not mark it served.
            network.send(self.name, client, "txn_irrelevant", tid=tid)
            return

        self.served.add((token, tid))
        first_delivery = (
            not self._cache_bodies
            or (participant, tid) not in self.delivered
        )
        self.delivered.add((participant, tid))
        # Ship the derived context-free extension with root deliveries
        # (the reconciling engine only consults shipped extensions for
        # roots).  It is derived data, but it still travels: the first
        # delivery to each participant pays its fragments and bytes.
        context_free = record.get("context_free") if as_root else None
        fragments = _payload_fragments(transaction) if first_delivery else 1
        size = _body_bytes(transaction) if first_delivery else _HEADER_WIRE_BYTES
        if context_free is not None and first_delivery:
            fragments += _extension_fragments(context_free)
            size += _extension_bytes(context_free)
        network.send(
            self.name,
            client,
            "txn_data",
            fragments=fragments,
            size_bytes=size,
            tid=tid,
            transaction=transaction,
            antecedents=record["antecedents"],
            order=record["order"],
            priority=priority,
            as_root=as_root,
            context_free=context_free,
        )
        # Forward requests for the antecedents directly to their
        # controllers (Figure 7, messages 3-4): the peer never has to ask.
        for ante in record["antecedents"]:
            controller = self.ring.owner(f"txn:{ante}")
            network.send(
                self.name,
                controller,
                "request_txn",
                tid=ante,
                participant=participant,
                client=client,
                token=token,
                as_root=False,
            )

    def _on_record_decision(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self._txn_record(network, payload["tid"])
        if record is None:
            # The record is gone (a crash beyond the replication
            # budget): acknowledge so the client stops retrying — the
            # verdict is lost with the record.
            network.send(
                self.name,
                message.sender,
                "decision_recorded",
                tid=payload["tid"],
                retired=False,
                req=payload.get("req"),
            )
            return
        record["decisions"][payload["participant"]] = payload["verdict"]
        self._replicate(
            network,
            "txn_decision",
            payload["tid"],
            (payload["participant"], payload["verdict"]),
        )
        # A final verdict retires the per-participant derived extension:
        # this participant can never be served this root again.  A
        # deferral keeps it — the next round's re-derivation becomes a
        # memo hit while the applied set is unchanged.
        if payload["verdict"] in ("applied", "rejected"):
            self.nc_memo.pop(
                (payload["participant"], payload["tid"]), None
            )
        # Reconciliation-aware retention: once every registered
        # participant holds a final verdict the derived extension can
        # never be requested again — drop it and tell the driver so it
        # retires the shared pair-memo entries too.
        retired = False
        if record.get("context_free") is not None:
            decisions = record["decisions"]
            if all(
                decisions.get(pid) in ("applied", "rejected")
                for pid in self.policies
            ):
                record["context_free"] = None
                retired = True
        network.send(
            self.name,
            message.sender,
            "decision_recorded",
            tid=payload["tid"],
            retired=retired,
            req=payload.get("req"),
        )

    # -- peer coordinators ----------------------------------------------

    def _on_record_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self._peer_record(network, payload["participant"])
        if record is None:
            record = self.peers.setdefault(
                payload["participant"], {"last_recon_epoch": 0}
            )
        # Monotone: a duplicated stale record_recon must not regress.
        record["last_recon_epoch"] = max(
            record["last_recon_epoch"], payload["epoch"]
        )
        self._replicate(
            network, "peer", payload["participant"], dict(record)
        )
        network.send(
            self.name, message.sender, "recon_recorded",
            epoch=record["last_recon_epoch"],
            req=payload.get("req"),
        )

    def _on_get_last_recon(self, network: Network, message: Message) -> None:
        payload = message.payload
        record = self._peer_record(network, payload["participant"])
        network.send(
            self.name,
            message.sender,
            "last_recon",
            epoch=record["last_recon_epoch"] if record else 0,
            req=payload.get("req"),
        )


class _ClientNode(Node):
    """The reconciling/publishing peer's endpoint: an inbox."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.inbox: List[Message] = []

    def handle(self, network: Network, message: Message) -> None:
        """Collect replies for the store driver to consume."""
        self.inbox.append(message)

    def drain(self) -> List[Message]:
        """Return and clear the inbox."""
        messages, self.inbox = self.inbox, []
        return messages


class DhtUpdateStore(UpdateStore):
    """Distributed update store over a simulated Pastry-style ring."""

    #: Honest flags: since PR 3 the DHT derives context-free extensions
    #: at publish time and ships them on fetch, and the driver keeps the
    #: confederation-wide pair memo — shipping parity with the central
    #: stores.  Since PR 5 it also implements the fully store-computed
    #: batch (``begin_network_reconciliation``): transaction controllers
    #: derive per-participant extensions over the ring and the driver —
    #: standing in for the participant's peer coordinator — assembles
    #: the conflict adjacency, closing the last quadrant of Figure 3.
    #: It is still simulated in-process, hence not durable.
    capabilities = StoreCapabilities(
        ships_context_free=True,
        shared_pair_memo=True,
        durable=False,
        network_centric_batches=True,
    )

    def __init__(
        self,
        schema: Schema,
        hosts: int = 4,
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        cache_bodies: bool = True,
        ship_context_free: bool = True,
        real_latency: bool = False,
        replication_factor: int = 1,
        max_retries: int = 3,
    ) -> None:
        """``cache_bodies=False`` ablates the soft-state body cache:
        controllers re-ship full transaction payloads on every delivery,
        reproducing the round-trip-heavy behaviour the paper's early
        prototypes suffered from ("it was vital to reduce the number of
        messages sent between the update store and each participant").
        ``ship_context_free=False`` restores the paper's
        client-compute-only distributed store: controllers derive and
        ship nothing, no pair memo travels, and the instance's
        capability flags are downgraded to match.

        ``replication_factor=k`` keeps each record on its owner plus the
        next ``k - 1`` live ring successors (priced ``replicate``
        messages), so a host crash is survivable without data loss;
        ``max_retries`` bounds the per-request retry budget the driver
        spends before raising
        :class:`~repro.errors.RetryExhaustedError`."""
        super().__init__(schema, message_latency, real_latency=real_latency)
        if hosts < 1:
            raise StoreError("the DHT needs at least one host node")
        if replication_factor < 1:
            raise StoreError("replication_factor must be >= 1")
        if max_retries < 0:
            raise StoreError("max_retries must be >= 0")
        if not ship_context_free:
            self.capabilities = replace(
                type(self).capabilities,
                ships_context_free=False,
                shared_pair_memo=False,
            )
        self._ship_context_free = ship_context_free
        self._network = Network(latency=message_latency)
        host_names = [f"host:{i}" for i in range(hosts)]
        self._hosts: Dict[str, _HostNode] = {}
        for name in host_names:
            node = _HostNode(
                name,
                schema,
                cache_bodies=cache_bodies,
                ship_context_free=ship_context_free,
            )
            self._hosts[name] = node
            self._network.add_node(node)
        self._ring = _RingView(HashRing(host_names))
        for node in self._hosts.values():
            node.ring = self._ring
            node.replication = replication_factor
        self._replication = replication_factor
        self._max_retries = max_retries
        self._req_counter = 0
        #: Retries performed so far (surfaced by reports and tests).
        self.retries = 0
        self._clients: Dict[int, _ClientNode] = {}
        self._policies: Dict[int, TrustPolicy] = {}
        self._token_counter = 0
        self._failed_hosts: set = set()
        self._open_epochs: Dict[Tuple[int, int], List[TransactionId]] = {}
        # The confederation-wide pair memo (attached to every batch) and
        # the per-(transaction, priority) memo that re-prices controller
        # extensions (derived at priority 0) for each requester while
        # preserving object identity — the pair memo validates entries by
        # identity, so every participant at one priority must receive the
        # *same* extension object.  Retention (complete_reconciliation)
        # is the primary eviction; the FIFO limit is the same backstop
        # the central stores' shared memos carry.
        self._shared_pairs = ConflictCache(
            limit=NetworkCentricMixin.SHARED_MEMO_LIMIT
        )
        self._cf_priority_memo: Dict[
            Tuple[TransactionId, int],
            Tuple[UpdateExtension, UpdateExtension],
        ] = {}
        # Peer-coordinator bookkeeping for the fully network-centric
        # batch (PR 5), maintained from the same ``record_decision``
        # feedback the controllers receive: the participant's open
        # deferred set (those roots re-enter every store-computed batch)
        # and a monotone applied-set version that drives the
        # controllers' per-participant extension memos.
        self._nc_peers: Dict[int, Dict[str, Any]] = {}
        # Per-participant conflict-pair caches for batch assembly (the
        # peer coordinator's working memory, held driver-side like the
        # other coordinator mirrors).
        self._nc_pair_caches: Dict[int, ConflictCache] = {}
        # The client half of the delta-encoded re-ship (PR 8): each
        # participant's retained assembled payloads, keyed by root, with
        # the controller's digest and the applied-set version they were
        # assembled under.  While the version holds, the driver echoes
        # the digest in ``nc_request`` and re-attaches the payload on an
        # ``nc_unchanged`` answer instead of receiving it again.
        self._nc_retained: Dict[
            int, Dict[TransactionId, Dict[str, Any]]
        ] = {}

    # ------------------------------------------------------------------
    # Plumbing

    @property
    def network(self) -> Network:
        """The underlying simulated network (exposed for tests)."""
        return self._network

    def _client(self, participant: int) -> _ClientNode:
        try:
            return self._clients[participant]
        except KeyError:
            raise StoreError(
                f"participant {participant} is not registered"
            ) from None

    def _run(self) -> None:
        """Drain the network and mirror its counters into ``perf``."""
        before_msgs = self._network.messages_delivered
        before_secs = self._network.simulated_seconds
        self._network.run()
        self.perf.charge(self._network.messages_delivered - before_msgs, 0.0)
        self.perf.simulated_seconds += (
            self._network.simulated_seconds - before_secs
        )

    def _owner(self, key: str) -> str:
        return self._ring.owner(key)

    @property
    def replication_factor(self) -> int:
        """Copies kept per record (1 = primary only)."""
        return self._replication

    # ------------------------------------------------------------------
    # Retryable request/reply transport (PR 6)

    def _request(
        self,
        client: _ClientNode,
        key: Optional[str],
        kind: str,
        reply_kind: str,
        *,
        recipient: Optional[str] = None,
        fragments: int = 1,
        size_bytes: int = 0,
        **payload: Any,
    ) -> Dict[str, Any]:
        """One request/reply exchange with bounded deterministic retry.

        The request id stays stable across attempts (handlers are
        idempotent, and the epoch allocator deduplicates by it), the
        recipient is re-resolved from the ring per attempt when
        addressed by ``key`` (so a retry lands on the takeover owner),
        and each retry charges exponential backoff to the perf clock as
        its timeout cost.  Runs out of attempts ->
        :class:`~repro.errors.RetryExhaustedError`.
        """
        self._req_counter += 1
        req = self._req_counter
        target = recipient
        last_error: Optional[StoreError] = None
        for attempt in range(self._max_retries + 1):
            if key is not None:
                target = self._owner(key)
            if attempt:
                self._note_retry(kind, target, attempt)
            self._network.send(
                client.name,
                target,
                kind,
                fragments=fragments,
                size_bytes=size_bytes,
                req=req,
                **payload,
            )
            self._run()
            try:
                return self._expect(
                    client, reply_kind, req=req, request=(target, kind, req)
                )
            except RetryExhaustedError:
                raise
            except StoreError as error:
                last_error = error
        raise RetryExhaustedError(
            f"no {reply_kind!r} reply from {target!r} to {kind!r} "
            f"(request id {req}) after {self._max_retries + 1} attempts"
        ) from last_error

    def _note_retry(
        self, kind: str, recipient: Optional[str], attempt: int
    ) -> None:
        """Charge a retry's timeout backoff and surface it as an event."""
        self.perf.simulated_seconds += self._message_latency * (2 ** attempt)
        self.retries += 1
        self._emit("retry", kind=kind, recipient=recipient, attempt=attempt)

    # ------------------------------------------------------------------
    # Registration

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Join the confederation; trust conditions replicate to all hosts."""
        if participant in self._clients:
            raise StoreError(f"participant {participant} already registered")
        client = _ClientNode(f"client:{participant}")
        self._clients[participant] = client
        self._policies[participant] = policy
        self._network.add_node(client)
        for host in self._hosts:
            if host in self._failed_hosts:
                continue  # re-sent by recover_host when it returns
            self._request(
                client,
                None,
                "register_policy",
                "policy_registered",
                recipient=host,
                participant=participant,
                policy=policy,
            )
        client.drain()

    # ------------------------------------------------------------------
    # Publication (Figure 6)

    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a batch; the full Figure 6 protocol plus producer upkeep."""
        epoch = self.begin_publish(participant)
        try:
            self.write_transactions(participant, epoch, transactions)
        finally:
            self.finish_publish(participant, epoch)
        return epoch

    def begin_publish(self, participant: int) -> int:
        """Figure 6, messages 1-4: obtain an epoch from the allocator.

        The request id makes allocation at-most-once: the allocator
        re-drives the same epoch for a retried (or duplicated) request,
        so a lost ``begin_publishing`` reply never burns an epoch.
        """
        client = self._client(participant)
        reply = self._request(
            client,
            "epoch-allocator",
            "request_epoch",
            "begin_publishing",
            publisher=participant,
        )
        client.drain()
        epoch = reply["epoch"]
        self._open_epochs[(participant, epoch)] = []
        return epoch

    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Ship transactions to their controllers under an open epoch."""
        client = self._client(participant)
        ids = self._open_epochs.get((participant, epoch))
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        for transaction in transactions:
            if transaction.origin != participant:
                raise StoreError(
                    f"participant {participant} cannot publish {transaction.tid}"
                )
        for transaction in transactions:
            antecedents = self._compute_antecedents_remote(client, transaction)
            order = epoch * _EPOCH_STRIDE + len(ids)
            self._request(
                client,
                f"txn:{transaction.tid}",
                "store_txn",
                "txn_stored",
                fragments=_payload_fragments(transaction),
                size_bytes=_body_bytes(transaction),
                transaction=transaction,
                antecedents=antecedents,
                order=order,
            )
            for update in transaction.updates:
                written = update.written_row()
                if written is not None:
                    self._request(
                        client,
                        f"value:{update.relation}:{written!r}",
                        "register_producer",
                        "producer_registered",
                        relation=update.relation,
                        row=written,
                        tid=transaction.tid,
                    )
            client.drain()
            ids.append(transaction.tid)

    def finish_publish(self, participant: int, epoch: int) -> None:
        """Figure 6, messages 5-6: hand the id list to the epoch controller."""
        client = self._client(participant)
        ids = self._open_epochs.pop((participant, epoch), None)
        if ids is None:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        self._request(
            client,
            f"epoch:{epoch}",
            "publish_ids",
            "epoch_finished",
            epoch=epoch,
            ids=ids,
        )
        client.drain()

    def _compute_antecedents_remote(
        self, client: _ClientNode, transaction: Transaction
    ) -> List[TransactionId]:
        """Antecedents via value-controller lookups (one round trip each).

        Rows produced earlier inside the same transaction are internal
        chains, not antecedent edges; earlier transactions of the same
        batch have already registered their producers, so the remote
        lookup resolves cross-transaction dependencies within a batch too.
        """
        antecedents: List[TransactionId] = []
        produced_in_txn: Set[Tuple[str, Tuple]] = set()
        for update in transaction.updates:
            read = update.read_row()
            if read is not None:
                key = (update.relation, read)
                if key in produced_in_txn:
                    produced_in_txn.discard(key)
                else:
                    self._lookup_and_add(client, update, antecedents, transaction)
            written = update.written_row()
            if written is not None:
                produced_in_txn.add((update.relation, written))
        return antecedents

    def _lookup_and_add(
        self,
        client: _ClientNode,
        update,
        antecedents: List[TransactionId],
        transaction: Transaction,
    ) -> None:
        read = update.read_row()
        reply = self._request(
            client,
            f"value:{update.relation}:{read!r}",
            "lookup_producer",
            "producer_is",
            relation=update.relation,
            row=read,
        )
        producer = reply["producer"]
        if (
            producer is not None
            and producer != transaction.tid
            and producer not in antecedents
        ):
            antecedents.append(producer)

    # ------------------------------------------------------------------
    # Reconciliation (Figure 7)

    def _discover_stable(
        self, participant: int, client: _ClientNode
    ) -> Tuple[int, Dict[int, List[TransactionId]]]:
        """The retrieval front half shared by both reconciliation modes:
        find the most recent stable epoch, fetch the contents of every
        newly stable epoch (one batched request per distinct epoch
        controller), and record the reconciliation at the peer
        coordinator.  Returns ``(stable, {epoch: ids})``."""
        current = self._request(
            client, "epoch-allocator", "get_current_epoch", "current_epoch"
        )["epoch"]

        last = self._request(
            client,
            f"peer:{participant}",
            "get_last_recon",
            "last_recon",
            participant=participant,
        )["epoch"]

        by_controller: Dict[str, List[int]] = {}
        for epoch in range(last + 1, current + 1):
            controller = self._owner(f"epoch:{epoch}")
            by_controller.setdefault(controller, []).append(epoch)
        per_epoch: Dict[int, Dict] = {}
        for controller, epochs in by_controller.items():
            reply = self._request(
                client,
                None,
                "get_epoch_contents",
                "epoch_contents",
                recipient=controller,
                epochs=epochs,
            )
            for entry in reply["results"]:
                per_epoch[entry["epoch"]] = entry
        contents: Dict[int, List[TransactionId]] = {}
        stable = last
        for epoch in range(last + 1, current + 1):
            entry = per_epoch.get(epoch)
            if entry is None or not entry["exists"] or not entry["complete"]:
                break
            contents[epoch] = entry["ids"]
            stable = epoch

        self._request(
            client,
            f"peer:{participant}",
            "record_recon",
            "recon_recorded",
            participant=participant,
            epoch=stable,
        )
        return stable, contents

    def _retrieve_roots(
        self,
        participant: int,
        client: _ClientNode,
        root_tids: Set[TransactionId],
    ) -> Tuple[
        Dict[TransactionId, Dict[str, Any]], Dict[TransactionId, Dict[str, Any]]
    ]:
        """Figure-7 retrieval of ``root_tids`` with bounded batch retry.

        Returns ``(root_payloads, bodies)``: the as-root ``txn_data``
        payloads and every closure body delivered (roots included).
        After each round the driver checks closure completeness — every
        antecedent of a delivered body must itself have been answered
        (``txn_data`` / ``txn_irrelevant`` / ``txn_unknown``) — and
        re-requests losses under a *fresh* token, because the
        controllers' per-token dedup would silently absorb a same-token
        re-request.  Losses that persist past ``max_retries`` raise
        :class:`~repro.errors.RetryExhaustedError`; a record that is
        genuinely gone answers ``txn_unknown`` and is not retried.
        """
        root_payloads: Dict[TransactionId, Dict[str, Any]] = {}
        bodies: Dict[TransactionId, Dict[str, Any]] = {}
        answered: Set[TransactionId] = set()
        root_answered: Set[TransactionId] = set()
        pending_roots = set(root_tids)
        pending_members: Set[TransactionId] = set()
        for attempt in range(self._max_retries + 1):
            if not pending_roots and not pending_members:
                break
            if attempt:
                self._note_retry("request_txn", None, attempt)
            self._token_counter += 1
            token = f"recon:{participant}:{self._token_counter}"
            for tid in sorted(pending_roots):
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "request_txn",
                    tid=tid,
                    participant=participant,
                    client=client.name,
                    token=token,
                    as_root=True,
                )
            for tid in sorted(pending_members):
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "request_txn",
                    tid=tid,
                    participant=participant,
                    client=client.name,
                    token=token,
                    as_root=False,
                )
            self._run()
            for message in client.drain():
                payload = message.payload
                if message.kind == "txn_data":
                    tid = payload["tid"]
                    answered.add(tid)
                    bodies.setdefault(tid, payload)
                    if payload["as_root"] and tid in root_tids:
                        root_answered.add(tid)
                        root_payloads.setdefault(tid, payload)
                elif message.kind in ("txn_irrelevant", "txn_unknown"):
                    tid = payload["tid"]
                    answered.add(tid)
                    root_answered.add(tid)
            pending_roots = set(root_tids) - root_answered
            needed: Set[TransactionId] = set()
            for payload in bodies.values():
                needed.update(payload["antecedents"])
            pending_members = needed - answered
        if pending_roots or pending_members:
            missing = sorted(
                str(tid) for tid in pending_roots | pending_members
            )
            raise RetryExhaustedError(
                f"reconciliation retrieval for participant {participant} "
                f"is missing replies for {missing} after "
                f"{self._max_retries + 1} attempts"
            )
        return root_payloads, bodies

    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the next batch via the distributed retrieval protocol."""
        client = self._client(participant)
        stable, contents = self._discover_stable(participant, client)

        # Request every candidate root; controllers forward antecedents.
        root_tids: Set[TransactionId] = set()
        for epoch in sorted(contents):
            if epoch > stable:
                continue
            for tid in contents[epoch]:
                if tid.participant != participant:
                    root_tids.add(tid)
        root_payloads, bodies = self._retrieve_roots(
            participant, client, root_tids
        )

        roots: List[RelevantTransaction] = []
        graph = TransactionGraph()
        shipped: Dict[TransactionId, UpdateExtension] = {}
        for payload in bodies.values():
            graph.add(
                payload["transaction"],
                payload["antecedents"],
                payload["order"],
            )
        for tid, payload in root_payloads.items():
            roots.append(
                RelevantTransaction(
                    transaction=payload["transaction"],
                    priority=payload["priority"],
                    order=payload["order"],
                )
            )
            extension = payload.get("context_free")
            if extension is not None:
                shipped[tid] = self._cf_with_priority(
                    tid, extension, payload["priority"]
                )
        batch = ReconciliationBatch(
            recno=stable,
            roots=sorted(roots, key=lambda r: r.order),
            graph=graph,
        )
        if self._ship_context_free:
            batch.extensions = shipped or None
            batch.pair_cache = self._shared_pairs
        return batch

    def _cf_with_priority(
        self,
        tid: TransactionId,
        extension: UpdateExtension,
        priority: int,
    ) -> UpdateExtension:
        """The controller's extension re-priced to the requester's
        priority, memoized per (transaction, priority) so every
        participant at one priority sees the identical object (the
        shared pair memo validates by object identity)."""
        if extension.priority == priority:
            return extension
        key = (tid, priority)
        entry = self._cf_priority_memo.get(key)
        if entry is None or entry[0] is not extension:
            entry = (extension, replace(extension, priority=priority))
            self._cf_priority_memo[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Fully network-centric reconciliation (PR 5)

    def _nc_peer(self, participant: int) -> Dict[str, Any]:
        """The driver's peer-coordinator record for ``participant``."""
        record = self._nc_peers.get(participant)
        if record is None:
            record = self._nc_peers[participant] = {
                "version": 0,
                "deferred": set(),
            }
        return record

    def begin_network_reconciliation(
        self, participant: int
    ) -> ReconciliationBatch:
        """A fully store-computed batch over the ring (Figure 3's last
        quadrant).

        The epoch-discovery front half is identical to the
        client-centric protocol.  The candidate roots — newly stable
        transactions plus the participant's open deferred set, which the
        store reconsiders each round exactly like the central backends —
        are grouped by owning transaction controller and requested with
        one ``nc_request`` per controller: the controller derives each
        root's update extension against the participant's applied set
        (walking the closure with batched per-member verdict queries to
        the other controllers) and ships everything coalesced — one
        sized ``nc_data`` per controller, plus a tiny ``nc_unchanged``
        token for roots whose retained payload the client proved (by
        echoing the memo digest) to be current; those re-attach the
        retained assembled payload instead of travelling again.  The
        driver, standing in for the peer coordinator, runs the pairwise
        conflict assembly
        (:func:`~repro.store.network_centric.attach_assembled_payload`)
        and prices the adjacency shipment as one final sized message.

        A root whose derivation failed (a closure member's controller
        lost its record) degrades to the classic Figure-7 retrieval so
        the client computes — and decides — exactly as it would have
        client-centrically.
        """
        client = self._client(participant)
        stable, contents = self._discover_stable(participant, client)
        peer = self._nc_peer(participant)

        candidates: List[TransactionId] = []
        for epoch in sorted(contents):
            if epoch > stable:
                continue
            for tid in contents[epoch]:
                if tid.participant != participant:
                    candidates.append(tid)
        for tid in sorted(peer["deferred"]):
            if tid not in candidates:
                candidates.append(tid)

        token = ""
        retained = self._nc_retained.setdefault(participant, {})
        pending = list(candidates)
        answered: Set[TransactionId] = set()
        data_payloads: Dict[TransactionId, Dict[str, Any]] = {}
        failed: List[TransactionId] = []
        # Each root's terminal answer arrives inside its controller's
        # coalesced reply: a ``data`` entry carries the payload, an
        # ``irrelevant``/``unknown`` entry ends the root's retrieval
        # without one (a decided/untrusted root, or one whose controller
        # lost its record, drops out of the batch exactly as it does on
        # the client-centric path), a ``failed`` entry degrades the root
        # to Figure-7 retrieval, and an ``nc_unchanged`` digest token
        # re-attaches the retained payload of an earlier round.  Roots
        # with *no* answer are transport losses, retried under a fresh
        # token (stale in-flight batch traffic then references a dead
        # batch key and is ignored).
        for attempt in range(self._max_retries + 1):
            if not pending:
                break
            if attempt:
                self._note_retry("nc_request", None, attempt)
            self._token_counter += 1
            token = f"ncrecon:{participant}:{self._token_counter}"
            by_controller: Dict[str, List[TransactionId]] = {}
            for tid in pending:
                by_controller.setdefault(
                    self._owner(f"txn:{tid}"), []
                ).append(tid)
            for controller in sorted(by_controller):
                roots_payload = []
                for tid in by_controller[controller]:
                    # Echo the retained payload's digest even across
                    # applied-version bumps: the controller compares it
                    # against the *freshly derived* extension's digest,
                    # so a content-identical re-derivation still comes
                    # back as a token instead of bodies.
                    held = retained.get(tid)
                    digest = held["digest"] if held is not None else None
                    roots_payload.append({"tid": tid, "digest": digest})
                self._network.send(
                    client.name,
                    controller,
                    "nc_request",
                    size_bytes=(
                        _HEADER_WIRE_BYTES
                        + len(roots_payload)
                        * (_TID_WIRE_BYTES + _DIGEST_WIRE_BYTES)
                    ),
                    roots=roots_payload,
                    participant=participant,
                    version=peer["version"],
                    client=client.name,
                    token=token,
                )
            self._run()
            for message in client.drain():
                payload = message.payload
                if message.kind == "nc_data":
                    for entry in payload["entries"]:
                        tid = entry["tid"]
                        answered.add(tid)
                        if entry["status"] == "data":
                            data_payloads.setdefault(tid, entry)
                        elif entry["status"] == "failed":
                            if tid not in data_payloads and tid not in failed:
                                failed.append(tid)
                elif message.kind == "nc_unchanged":
                    for entry in payload["entries"]:
                        tid = entry["tid"]
                        held = retained.get(tid)
                        if (
                            held is not None
                            and held["digest"] == entry["digest"]
                        ):
                            answered.add(tid)
                            data_payloads.setdefault(tid, held["payload"])
                        # A token for a payload the client no longer
                        # holds is not an answer: the root stays
                        # pending and the retry carries no digest,
                        # forcing the full-payload fallback.
            pending = [tid for tid in pending if tid not in answered]
        if pending:
            missing = sorted(str(tid) for tid in pending)
            raise RetryExhaustedError(
                f"network-centric retrieval for participant {participant} "
                f"is missing replies for {missing} after "
                f"{self._max_retries + 1} attempts"
            )

        roots: List[RelevantTransaction] = []
        graph = TransactionGraph()
        derived: Dict[TransactionId, UpdateExtension] = {}
        for payload in data_payloads.values():
            graph.add(
                payload["transaction"],
                payload["antecedents"],
                payload["order"],
            )
            for transaction, antecedents, order in payload["members"]:
                graph.add(transaction, antecedents, order)
            roots.append(
                RelevantTransaction(
                    transaction=payload["transaction"],
                    priority=payload["priority"],
                    order=payload["order"],
                )
            )
            if payload["extension"] is not None:
                derived[payload["tid"]] = payload["extension"]

        # Retain this round's assembled payloads client-side: while the
        # applied-set version is unchanged, the next round's controllers
        # answer with ``nc_unchanged`` digest tokens and the retained
        # entry is re-attached instead of re-shipped — the delta
        # encoding's client half.  (complete_reconciliation prunes the
        # retention to the still-deferred roots.)
        for tid, payload in data_payloads.items():
            if payload["extension"] is not None and payload.get("digest"):
                retained[tid] = {
                    "digest": payload["digest"],
                    "payload": payload,
                }

        if failed:
            # Degraded roots travel the classic client-centric protocol;
            # the engine recomputes their extensions locally, reaching
            # byte-identical decisions.
            self._emit(
                "degraded",
                participant=participant,
                roots=[str(tid) for tid in failed],
            )
            root_payloads, bodies = self._retrieve_roots(
                participant, client, set(failed)
            )
            for payload in bodies.values():
                graph.add(
                    payload["transaction"],
                    payload["antecedents"],
                    payload["order"],
                )
            for payload in root_payloads.values():
                roots.append(
                    RelevantTransaction(
                        transaction=payload["transaction"],
                        priority=payload["priority"],
                        order=payload["order"],
                    )
                )

        roots.sort(key=lambda root: root.order)
        batch = ReconciliationBatch(recno=stable, roots=roots, graph=graph)
        extensions = {
            root.tid: derived[root.tid]
            for root in roots
            if root.tid in derived
        }
        pair_cache = self._nc_pair_caches.get(participant)
        if pair_cache is None:
            pair_cache = self._nc_pair_caches[participant] = ConflictCache()
        attach_assembled_payload(self.schema, batch, extensions, pair_cache)
        pair_cache.prune(extensions)

        # The assembled adjacency travels from the peer coordinator as
        # one sized message (extensions already paid their fragments on
        # each nc_data delivery).
        edges = sum(len(adj) for adj in batch.conflicts.values()) // 2
        self._network.send(
            self._owner(f"peer:{participant}"),
            client.name,
            "nc_adjacency",
            fragments=1 + edges,
            size_bytes=_HEADER_WIRE_BYTES * (1 + edges),
            token=token,
        )
        self._run()
        client.drain()

        if self._ship_context_free:
            # The engine's incremental conflict index consults the
            # batch's pair memo when it rebuilds soft state.  The pairs
            # worth sharing here are the ones this assembly just
            # compared — the per-participant extensions never appear in
            # the confederation-wide context-free memo, so attaching
            # that one (as this path once did) could never hit.
            # Identity validation keeps the reuse exact, so decisions
            # are unchanged; only the redundant re-comparisons go away.
            batch.pair_cache = pair_cache
        return batch

    # ------------------------------------------------------------------

    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Notify each transaction controller of the decision.

        Acks are matched per transaction id; unacknowledged decisions
        are re-sent (recording is idempotent) up to the retry budget.
        """
        client = self._client(participant)
        pending: Dict[TransactionId, str] = {}
        for tid in result.applied:
            pending[tid] = "applied"
        for tid in result.rejected:
            pending[tid] = "rejected"
        for tid in result.deferred:
            pending[tid] = "deferred"
        retired_set: Set[TransactionId] = set()
        for attempt in range(self._max_retries + 1):
            if not pending:
                break
            if attempt:
                self._note_retry("record_decision", None, attempt)
            for tid in sorted(pending):
                self._network.send(
                    client.name,
                    self._owner(f"txn:{tid}"),
                    "record_decision",
                    tid=tid,
                    participant=participant,
                    verdict=pending[tid],
                )
            self._run()
            for message in client.drain():
                if message.kind != "decision_recorded":
                    continue
                pending.pop(message.payload["tid"], None)
                if message.payload.get("retired"):
                    retired_set.add(message.payload["tid"])
        if pending:
            missing = sorted(str(tid) for tid in pending)
            raise RetryExhaustedError(
                f"decisions for participant {participant} unacknowledged "
                f"for {missing} after {self._max_retries + 1} attempts"
            )
        # Peer-coordinator upkeep for the store-computed batch: the open
        # deferred set re-enters every network-centric batch, and the
        # applied-set version validates the controllers' per-participant
        # extension memos.  (Upstream results carry only *newly* deferred
        # roots; removal happens on the eventual final verdict.)
        peer = self._nc_peer(participant)
        peer["deferred"].update(result.deferred)
        peer["deferred"].difference_update(result.applied)
        peer["deferred"].difference_update(result.rejected)
        if result.applied:
            peer["version"] += 1
        # Only still-deferred roots can ever be answered with an
        # ``nc_unchanged`` token again, so the client's retained
        # payloads shrink to exactly that set.
        retained = self._nc_retained.get(participant)
        if retained is not None:
            for tid in [t for t in retained if t not in peer["deferred"]]:
                del retained[tid]
        if retired_set:
            # Controllers dropped their derived extensions; retire the
            # driver-side shared memos for the same roots.
            self._shared_pairs.discard(sorted(retired_set))
            for key in [
                k for k in self._cf_priority_memo if k[0] in retired_set
            ]:
                del self._cf_priority_memo[key]

    # ------------------------------------------------------------------
    # Failure injection and recovery (Section 5.2.2's sketch)

    def fail_host(self, host_name: str) -> None:
        """Take a physical host down, losing its in-memory state.

        Role ownership routes around failed hosts from now on (the next
        live node clockwise takes over each key), and the victim's
        state is wiped — a crash is honest.  What survives is whatever
        the rest of the ring holds: with ``replication_factor >= 2``
        the takeover owner serves every record from its successor
        replica (promoting it on first access), and the epoch
        allocator's counter can additionally be reconstructed by
        polling (:meth:`recover_epoch_allocator`) — the recovery path
        the paper sketches.  :meth:`recover_host` brings the host back
        and re-establishes the replication invariant.
        """
        if host_name not in self._hosts:
            raise StoreError(f"unknown host {host_name!r}")
        live = set(self._hosts) - self._failed_hosts - {host_name}
        if not live:
            raise StoreError("cannot fail the last live host")
        self._network.fail_node(host_name)
        self._hosts[host_name].wipe()
        self._failed_hosts.add(host_name)
        self._ring.failed.add(host_name)
        self._emit("fault", action="crash", host=host_name)

    def recover_host(self, host_name: str) -> None:
        """Bring a crashed host back onto the ring.

        The returning host rejoins with empty state: ownership routes
        back to it immediately, the driver re-sends every trust policy
        (policies replicate to all hosts at registration), and a
        ``rebalance`` sweep makes each live host re-ship every record
        the returning host should hold — as owner or replica successor
        — and re-file its own copies under the restored ownership map.
        All recovery traffic runs through the normal network
        accounting, so its cost is measurable.
        """
        if host_name not in self._hosts:
            raise StoreError(f"unknown host {host_name!r}")
        if host_name not in self._failed_hosts:
            raise StoreError(f"host {host_name!r} is not failed")
        self._network.recover_node(host_name)
        self._failed_hosts.discard(host_name)
        self._ring.failed.discard(host_name)
        client = next(iter(self._clients.values()), None)
        sender = client.name if client is not None else host_name
        for participant, policy in self._policies.items():
            self._network.send(
                sender,
                host_name,
                "register_policy",
                participant=participant,
                policy=policy,
            )
        for name in self._hosts:
            if name == host_name or name in self._failed_hosts:
                continue
            self._network.send(sender, name, "rebalance", target=host_name)
        self._run()
        if client is not None:
            client.drain()
        self._emit("recovery", kind="host", host=host_name)

    def allocator_host(self) -> str:
        """The host currently owning the epoch-allocator role."""
        return self._owner("epoch-allocator")

    def recover_epoch_allocator(self, participant: int) -> int:
        """Rebuild the epoch counter at the allocator role's new owner.

        ``participant`` drives the recovery: it polls every live host for
        the largest epoch it has seen and installs the maximum at the new
        allocator.  Returns the recovered epoch counter.
        """
        client = self._client(participant)
        live_hosts = [
            name for name in self._hosts if name not in self._failed_hosts
        ]
        largest = 0
        for host in live_hosts:
            reply = self._request(
                client, None, "poll_max_epoch", "max_epoch", recipient=host
            )
            largest = max(largest, reply["epoch"])
        reply = self._request(
            client,
            "epoch-allocator",
            "set_epoch_counter",
            "epoch_counter_set",
            epoch=largest,
        )
        client.drain()
        return reply["epoch"]

    # ------------------------------------------------------------------
    # Introspection

    def current_epoch(self) -> int:
        """The allocator's epoch counter (read locally, no messages)."""
        allocator = self._hosts[self._owner("epoch-allocator")]
        return allocator._allocator_counter()

    def transaction_count(self) -> int:
        """Distinct transactions stored across controllers and replicas."""
        tids: Set[TransactionId] = set()
        for host in self._hosts.values():
            tids.update(host.txns)
            tids.update(key for role, key in host.replicas if role == "txn")
        return len(tids)

    def last_reconciliation_epoch(self, participant: int) -> int:
        """The peer coordinator's record (read locally, no messages)."""
        self._client(participant)  # validate registration
        coordinator = self._hosts[self._owner(f"peer:{participant}")]
        record = coordinator.peers.get(participant)
        if record is None:
            record = coordinator.replicas.get(("peer", participant))
        return record["last_recon_epoch"] if record else 0

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """The antecedents stored at the transaction's controller."""
        return self._nc_lookup(tid)[1]

    def decided_transactions(self, participant: int):
        """Applied transactions (publish order) plus rejected/deferred ids.

        Aggregated across controllers by the driver (state reconstruction
        is a maintenance operation, not part of the timed protocols).
        """
        self._client(participant)  # validate registration
        # Collect the most advanced copy of each record: primaries
        # first, replicas filling the gaps a crash left behind.
        records: Dict[TransactionId, Dict[str, Any]] = {}

        def absorb(tid, record):
            """Keep the most-decided copy of ``tid``'s controller record."""
            existing = records.get(tid)
            if existing is None or (
                len(existing["decisions"]) < len(record["decisions"])
            ):
                records[tid] = record

        for host in self._hosts.values():
            for tid, record in host.txns.items():
                absorb(tid, record)
        for host in self._hosts.values():
            for (role, key), state in host.replicas.items():
                if role == "txn":
                    absorb(key, state)
        applied: List[Tuple[int, Transaction]] = []
        rejected: List[TransactionId] = []
        deferred: List[TransactionId] = []
        for tid, record in records.items():
            verdict = record["decisions"].get(participant)
            if verdict == "applied":
                applied.append((record["order"], record["transaction"]))
            elif verdict == "rejected":
                rejected.append(tid)
            elif verdict == "deferred":
                deferred.append(tid)
        applied.sort(key=lambda pair: pair[0])
        return (
            [transaction for _order, transaction in applied],
            sorted(rejected),
            sorted(deferred),
        )

    def _nc_lookup(self, tid: TransactionId):
        """Driver-side transaction lookup (used by state reconstruction).

        Falls back from the owner's primary to any surviving copy —
        body, antecedents, and order are immutable, so every copy
        agrees.  (A maintenance read, not part of the timed protocols.)
        """
        controller = self._hosts[self._owner(f"txn:{tid}")]
        record = controller.txns.get(tid)
        if record is None:
            record = controller.replicas.get(("txn", tid))
        if record is None:
            for host in self._hosts.values():
                record = host.txns.get(tid) or host.replicas.get(("txn", tid))
                if record is not None:
                    break
        if record is None:
            from repro.errors import UnknownTransactionError

            raise UnknownTransactionError(str(tid))
        return record["transaction"], record["antecedents"], record["order"]

    # ------------------------------------------------------------------

    def _expect(
        self,
        client: _ClientNode,
        kind: str,
        req: Optional[int] = None,
        request: Optional[Tuple[Optional[str], str, Any]] = None,
    ) -> Dict[str, Any]:
        """Pop the first inbox message of ``kind`` (and matching request
        id when one is given); error if absent, naming the pending
        request so a timeout is diagnosable."""
        for index, message in enumerate(client.inbox):
            if message.kind != kind:
                continue
            if req is not None and message.payload.get("req") != req:
                continue
            client.inbox.pop(index)
            return message.payload
        pending = ""
        if request is not None:
            recipient, request_kind, token = request
            pending = (
                f" (pending request: {request_kind!r} to {recipient!r}, "
                f"request id {token!r})"
            )
        raise StoreError(
            f"expected a {kind!r} reply{pending}; inbox has "
            f"{[m.kind for m in client.inbox]}"
        )
