"""Store-side bookkeeping shared by every update-store implementation.

* :func:`compute_antecedents` — discover ``ante(X)`` at publish time by
  looking up, for every row value a transaction consumes, which earlier
  published transaction produced that value (the *producer index*);
* :func:`register_producers` — extend the producer index with the values a
  newly published transaction produces;
* :func:`stable_epoch` — the paper's "latest epoch not preceded by an
  unfinished epoch" rule that decouples publishing from reconciliation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.model.transactions import Transaction, TransactionId

#: Producer index: (relation, full row value) -> transaction that produced
#: that exact row most recently.  "Most recent wins" when divergent
#: branches produce the same value; the ambiguity is inherent to
#: value-based provenance and is documented in DESIGN.md.
ProducerIndex = Dict[Tuple[str, Tuple], TransactionId]


def compute_antecedents(
    producers: ProducerIndex, transaction: Transaction
) -> List[TransactionId]:
    """The direct antecedents ``ante(X)`` of a transaction being published.

    A transaction's update that deletes or modifies a row depends on the
    transaction that inserted, or modified *to*, that row — unless the row
    was produced earlier inside the same transaction (an internal chain).
    """
    antecedents: List[TransactionId] = []
    produced_locally: Set[Tuple[str, Tuple]] = set()
    for update in transaction.updates:
        read = update.read_row()
        if read is not None:
            key = (update.relation, read)
            if key in produced_locally:
                produced_locally.discard(key)
            else:
                producer = producers.get(key)
                if producer is not None and producer != transaction.tid:
                    if producer not in antecedents:
                        antecedents.append(producer)
        written = update.written_row()
        if written is not None:
            produced_locally.add((update.relation, written))
    return antecedents


def register_producers(
    producers: ProducerIndex, transaction: Transaction
) -> None:
    """Record every row value ``transaction`` produces in the index.

    Intermediate values of internal chains are registered too: another
    participant may have reconciled mid-chain in an earlier epoch and later
    publish an update consuming the intermediate value.
    """
    for update in transaction.updates:
        written = update.written_row()
        if written is not None:
            producers[(update.relation, written)] = transaction.tid


def stable_epoch(finished: Dict[int, bool], current: int) -> int:
    """The largest epoch ``e`` with no unfinished epoch at or before it.

    ``finished`` maps allocated epoch numbers to completion flags;
    ``current`` is the highest allocated epoch.  Gaps (aborted epochs that
    never began publishing) do not block stability only if recorded as
    finished; callers mark abandoned epochs finished explicitly.
    """
    stable = 0
    for epoch in range(1, current + 1):
        if not finished.get(epoch, False):
            break
        stable = epoch
    return stable


def antecedent_closure(
    antecedents_of,
    roots: Iterable[TransactionId],
    stop: Set[TransactionId],
) -> List[TransactionId]:
    """All transactions reachable from ``roots`` via antecedent edges.

    Walks ``antecedents_of(tid)`` transitively, not descending into
    transactions in ``stop`` (already applied by the requesting
    participant — the store prunes them to save bandwidth, exactly as the
    paper's transaction controllers answer "not relevant").  Roots are
    always included.
    """
    closure: List[TransactionId] = []
    seen: Set[TransactionId] = set()
    stack = list(roots)
    while stack:
        tid = stack.pop()
        if tid in seen:
            continue
        seen.add(tid)
        closure.append(tid)
        for ante in antecedents_of(tid):
            if ante not in seen and ante not in stop:
                stack.append(ante)
    return closure
