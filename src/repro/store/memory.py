"""In-process update store — the reference implementation.

Implements the full store contract in plain Python structures.  The
central sqlite store and the simulated DHT store must behave identically;
their tests compare against this one.

Message accounting: one request/reply pair (2 messages) per public API
call, matching a client talking to a single server with batched
operations — the paper's observation that "a constant number of procedures
are invoked during each reconciliation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.decisions import ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
)
from repro.errors import StoreError, UnknownTransactionError
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.policy.acceptance import TrustPolicy
from repro.store.base import DEFAULT_MESSAGE_LATENCY, UpdateStore
from repro.store.network_centric import NetworkCentricMixin
from repro.store.registry import StoreCapabilities
from repro.store.logic import (
    ProducerIndex,
    antecedent_closure,
    compute_antecedents,
    register_producers,
    stable_epoch,
)


@dataclass
class _PublishedTransaction:
    """A transaction as logged by the store."""

    transaction: Transaction
    epoch: int
    order: int  # global publish index
    antecedents: Tuple[TransactionId, ...]


@dataclass
class _ParticipantRecord:
    """Store-side per-participant state (Section 5.2's moved sets)."""

    policy: TrustPolicy
    last_recon_epoch: int = 0
    applied: Set[TransactionId] = field(default_factory=set)
    #: Bumped whenever ``applied`` grows; versions the store-side caches.
    applied_version: int = 0
    rejected: Set[TransactionId] = field(default_factory=set)
    deferred: Set[TransactionId] = field(default_factory=set)


class MemoryUpdateStore(NetworkCentricMixin, UpdateStore):
    """The reference in-process update store."""

    capabilities = StoreCapabilities(
        ships_context_free=True,
        shared_pair_memo=True,
        durable=False,
        network_centric_batches=True,
    )

    def __init__(
        self,
        schema: Schema,
        message_latency: float = DEFAULT_MESSAGE_LATENCY,
        real_latency: bool = False,
    ) -> None:
        super().__init__(schema, message_latency, real_latency=real_latency)
        self._participants: Dict[int, _ParticipantRecord] = {}
        self._log: Dict[TransactionId, _PublishedTransaction] = {}
        self._by_epoch: Dict[int, List[TransactionId]] = {}
        self._producers: ProducerIndex = {}
        self._epoch = 0
        self._epoch_finished: Dict[int, bool] = {}
        self._epoch_publisher: Dict[int, int] = {}
        self._order = 0

    # ------------------------------------------------------------------

    def register_participant(
        self, participant: int, policy: TrustPolicy
    ) -> None:
        """Add a participant and its trust policy."""
        if participant in self._participants:
            raise StoreError(f"participant {participant} already registered")
        self._participants[participant] = _ParticipantRecord(policy=policy)
        self.perf.charge(2, self._message_latency)

    def _record_of(self, participant: int) -> _ParticipantRecord:
        try:
            return self._participants[participant]
        except KeyError:
            raise StoreError(
                f"participant {participant} is not registered"
            ) from None

    # ------------------------------------------------------------------

    def publish(
        self, participant: int, transactions: Sequence[Transaction]
    ) -> int:
        """Publish a batch under a fresh epoch; see the base class."""
        epoch = self.begin_publish(participant)
        self.write_transactions(participant, epoch, transactions)
        self.finish_publish(participant, epoch)
        return epoch

    def begin_publish(self, participant: int) -> int:
        """Allocate an epoch and mark it as publishing."""
        self._record_of(participant)
        self._epoch += 1
        epoch = self._epoch
        self._epoch_finished[epoch] = False
        self._by_epoch[epoch] = []
        self._epoch_publisher[epoch] = participant
        self.perf.charge(2, self._message_latency)
        return epoch

    def _validate_open_epoch(self, participant: int, epoch: int) -> None:
        if self._epoch_publisher.get(epoch) != participant:
            raise StoreError(
                f"epoch {epoch} is not being published by {participant}"
            )
        if self._epoch_finished.get(epoch, True):
            raise StoreError(f"epoch {epoch} is already finished")

    def write_transactions(
        self, participant: int, epoch: int, transactions: Sequence[Transaction]
    ) -> None:
        """Write transactions under an open epoch."""
        record = self._record_of(participant)
        self._validate_open_epoch(participant, epoch)
        for transaction in transactions:
            if transaction.origin != participant:
                raise StoreError(
                    f"participant {participant} cannot publish {transaction.tid}"
                )
            if transaction.tid in self._log:
                raise StoreError(
                    f"transaction {transaction.tid} was already published"
                )
        for transaction in transactions:
            antecedents = tuple(
                compute_antecedents(self._producers, transaction)
            )
            entry = _PublishedTransaction(
                transaction=transaction,
                epoch=epoch,
                order=self._order,
                antecedents=antecedents,
            )
            self._order += 1
            self._log[transaction.tid] = entry
            self._by_epoch[epoch].append(transaction.tid)
            register_producers(self._producers, transaction)
            record.applied.add(transaction.tid)
        if transactions:
            record.applied_version += 1
        self.perf.charge(2, self._message_latency)

    def finish_publish(self, participant: int, epoch: int) -> None:
        """Mark the epoch finished."""
        self._validate_open_epoch(participant, epoch)
        self._epoch_finished[epoch] = True
        self.perf.charge(2, self._message_latency)

    # ------------------------------------------------------------------

    def begin_reconciliation(self, participant: int) -> ReconciliationBatch:
        """Assemble the next batch; see the base class."""
        record = self._record_of(participant)
        recon_epoch = stable_epoch(self._epoch_finished, self._epoch)

        roots: List[RelevantTransaction] = []
        for epoch in range(record.last_recon_epoch + 1, recon_epoch + 1):
            for tid in self._by_epoch.get(epoch, ()):
                entry = self._log[tid]
                if entry.transaction.origin == participant:
                    continue
                if tid in record.applied or tid in record.rejected:
                    continue
                if tid in record.deferred:
                    continue  # the client caches and reconsiders these
                priority = record.policy.priority_of(
                    self._schema, entry.transaction
                )
                if priority <= 0:
                    continue
                roots.append(
                    RelevantTransaction(
                        transaction=entry.transaction,
                        priority=priority,
                        order=entry.order,
                    )
                )

        graph = TransactionGraph()
        closure = antecedent_closure(
            lambda tid: self._log[tid].antecedents,
            [root.tid for root in roots],
            stop=record.applied,
        )
        for tid in closure:
            entry = self._log[tid]
            graph.add(entry.transaction, entry.antecedents, entry.order)

        record.last_recon_epoch = recon_epoch
        self.perf.charge(2, self._message_latency)
        batch = ReconciliationBatch(
            recno=recon_epoch,
            roots=sorted(roots, key=lambda r: r.order),
            graph=graph,
        )
        # Derived data riding along with the closure transactions: the
        # flattened context-free extensions, computed once per published
        # transaction for the whole confederation (see the mixin).
        self.ship_context_free_extensions(batch)
        return batch

    # ------------------------------------------------------------------

    def complete_reconciliation(
        self, participant: int, result: ReconcileResult
    ) -> None:
        """Record decisions; see the base class."""
        record = self._record_of(participant)
        applied_before = len(record.applied)
        for tid in result.applied:
            # One verdict per transaction: applied supersedes earlier
            # rejections (the engine's "applied wins" rule).
            record.applied.add(tid)
            record.deferred.discard(tid)
            record.rejected.discard(tid)
        if len(record.applied) != applied_before:
            record.applied_version += 1
        for tid in result.rejected:
            record.rejected.add(tid)
            record.deferred.discard(tid)
        for tid in result.deferred:
            record.deferred.add(tid)
        self.retire_shared_entries(self._fully_decided(result))
        self.perf.charge(2, self._message_latency)

    def _fully_decided(self, result: ReconcileResult) -> List[TransactionId]:
        """Roots of this result now finally decided by every participant."""
        records = self._participants.values()
        return [
            tid
            for tid in sorted(set(result.applied) | set(result.rejected))
            if all(
                tid in record.applied or tid in record.rejected
                for record in records
            )
        ]

    # ------------------------------------------------------------------

    def current_epoch(self) -> int:
        """The highest epoch allocated so far."""
        return self._epoch

    def transaction_count(self) -> int:
        """Total number of transactions ever published."""
        return len(self._log)

    def last_reconciliation_epoch(self, participant: int) -> int:
        """The participant's most recent reconciliation epoch."""
        return self._record_of(participant).last_recon_epoch

    # ------------------------------------------------------------------
    # Extra introspection used by tests

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """The antecedents the store computed for ``tid`` at publish time."""
        try:
            return self._log[tid].antecedents
        except KeyError:
            raise UnknownTransactionError(str(tid)) from None

    def epoch_of(self, tid: TransactionId) -> int:
        """The epoch ``tid`` was published in."""
        try:
            return self._log[tid].epoch
        except KeyError:
            raise UnknownTransactionError(str(tid)) from None

    def decided_transactions(self, participant: int):
        """Applied transactions (publish order) plus rejected/deferred ids."""
        record = self._record_of(participant)
        applied = sorted(record.applied, key=lambda tid: self._log[tid].order)
        return (
            [self._log[tid].transaction for tid in applied],
            sorted(record.rejected),
            sorted(record.deferred),
        )

    # ------------------------------------------------------------------
    # Network-centric accessors (see repro.store.network_centric)

    def _nc_deferred_tids(self, participant: int):
        record = self._record_of(participant)
        return sorted(record.deferred, key=lambda tid: self._log[tid].order)

    def _nc_applied_tids(self, participant: int):
        return set(self._record_of(participant).applied)

    def _nc_applied_version(self, participant: int) -> int:
        return self._record_of(participant).applied_version

    def _nc_lookup(self, tid: TransactionId):
        try:
            entry = self._log[tid]
        except KeyError:
            raise UnknownTransactionError(str(tid)) from None
        return entry.transaction, entry.antecedents, entry.order

    def _nc_priority(self, participant: int, transaction: Transaction) -> int:
        record = self._record_of(participant)
        return record.policy.priority_of(self._schema, transaction)
