"""The update-store driver registry: backends selected by name.

New backends join the confederation API by registering a *driver*: a
name, a factory ``factory(schema, **options) -> UpdateStore``, and an
honest :class:`StoreCapabilities` record.  The engine and the
:class:`~repro.confed.Confederation` facade consult capabilities — never
``isinstance`` checks against store classes — to decide what a backend
can do:

* ``ships_context_free`` — the store derives context-free update
  extensions once per published transaction and ships them with every
  reconciliation batch (see :mod:`repro.store.network_centric`); the
  engine only adopts shipped extensions from stores that declare this;
* ``shared_pair_memo`` — the store maintains a confederation-wide memo
  of pairwise conflict points between shipped extension objects;
* ``durable`` — published state survives process restarts (backed by
  disk rather than process memory);
* ``network_centric_batches`` — the store implements
  ``begin_network_reconciliation`` (Figure 3's store-computed mode):
  it tracks every participant's applied set, derives each
  participant's update extensions *against that applied set*, computes
  the pairwise conflict adjacency store-side, and hands the engine a
  fully-assembled batch.  Every built-in declares it —
  memory/central/durable through direct log access
  (:class:`~repro.store.network_centric.NetworkCentricMixin`), the DHT
  through its ring protocol (:mod:`repro.store.dht`).

The built-in backends (``memory``, ``central``, ``durable``, ``dht``)
are registered
by :mod:`repro.store` at import time; see ``register_store`` for adding
more.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.model.schema import Schema
    from repro.store.base import UpdateStore


@dataclass(frozen=True)
class StoreCapabilities:
    """What an update-store backend declares it can do.

    Flags are *honest* advertisements consumed by the engine and the
    confederation facade; a backend must not declare a capability its
    implementation does not provide, and the conservative default is
    "nothing beyond the base contract".
    """

    ships_context_free: bool = False
    shared_pair_memo: bool = False
    durable: bool = False
    network_centric_batches: bool = False

    @property
    def network_centric(self) -> bool:
        """Deprecated alias for :attr:`network_centric_batches` (the
        pre-PR 5 flag name).  Attribute reads only: the constructor
        takes the new name, and :meth:`as_dict` emits the new key."""
        return self.network_centric_batches

    def as_dict(self) -> Dict[str, bool]:
        """The flags as a plain dict (for reports and snapshots)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Factory signature every driver provides.
StoreFactory = Callable[..., "UpdateStore"]


@dataclass(frozen=True)
class StoreDriver:
    """One registered backend: name, factory, and capabilities."""

    name: str
    factory: StoreFactory = field(repr=False)
    capabilities: StoreCapabilities


_REGISTRY: Dict[str, StoreDriver] = {}


def register_store(
    name: str,
    factory: StoreFactory,
    capabilities: StoreCapabilities,
    replace: bool = False,
) -> StoreDriver:
    """Register a store backend under ``name``.

    ``factory(schema, **options)`` must return an
    :class:`~repro.store.base.UpdateStore`.  Registering an
    already-taken name raises :class:`~repro.errors.ConfigError` unless
    ``replace=True`` (meant for tests and experimental overrides).
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"store driver name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigError(
            f"store driver {name!r} is already registered; "
            f"pass replace=True to override it"
        )
    driver = StoreDriver(name=name, factory=factory, capabilities=capabilities)
    _REGISTRY[name] = driver
    return driver


def unregister_store(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def store_driver(name: str) -> StoreDriver:
    """Look up a driver by name; unknown names raise ConfigError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown store backend {name!r}; "
            f"available: {', '.join(available_stores()) or '(none)'}"
        ) from None


def create_store(name: str, schema: "Schema", **options) -> "UpdateStore":
    """Instantiate the backend registered under ``name``."""
    return store_driver(name).factory(schema, **options)


def available_stores() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def store_capabilities(name: str) -> StoreCapabilities:
    """The capability flags a backend declared at registration."""
    return store_driver(name).capabilities
