"""Network-centric reconciliation support (Figure 3's other column).

In client-centric reconciliation (the paper's implementation, and our
default) the reconciling participant computes update extensions and
detects conflicts itself.  Figure 3 contrasts this with *network-centric*
reconciliation, which "distributes almost all of the work across the
network" at the price of more communication; the paper leaves it as
future work.

:class:`NetworkCentricMixin` implements the store side of that mode for
stores with direct access to their log (the in-memory and central-sqlite
stores — the "central store + network-centric" quadrant of Figure 3):
:meth:`begin_network_reconciliation` returns a batch whose flattened
update extensions and direct-conflict adjacency are already computed,
covering both newly relevant transactions and the participant's deferred
ones (which the store tracks).  The client then only runs ``CheckState``
(it alone holds the materialised instance, dirty values, and its own
delta), the cheap greedy ``DoGroup``, and application.

The distributed store does not use this mixin — it has no direct log
access.  Since PR 3 its transaction controllers derive context-free
extensions at publish time and ship them on fetch, and since PR 5 it
implements the *fully* network-centric batch too: controllers derive
each participant's extensions against that participant's applied set
over the ring protocol, and the driver assembles the conflict adjacency
through the same :func:`attach_assembled_payload` helper the mixin uses
here — so every built-in backend serves
``begin_network_reconciliation`` (see :mod:`repro.store.dht`).

Shared-memo retention: the context-free extension memo and the shared
pair memo grow with the published history, but an entry is only ever
consulted for roots some participant has still to decide.  Both memos
are therefore pruned by *reconciliation-aware retention*
(:meth:`NetworkCentricMixin.retire_shared_entries`): once every
registered participant holds a final verdict (applied or rejected) for
a root, its entry — and every pair-memo entry it participates in — is
dropped.  For RAM-only stores retirement is pure cache eviction: a
participant registered later simply recomputes on miss.  A durable
store overrides the :meth:`NetworkCentricMixin._spill_retired` /
:meth:`NetworkCentricMixin._load_retired` seam to move retired entries
to disk instead, so that later miss is a page-in.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

from repro.core.cache import ConflictCache, ExtensionCache
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
    UpdateExtension,
    compute_update_extension,
)
from repro.core.conflicts import find_conflicts
from repro.errors import FlattenError
from repro.model.transactions import Transaction, TransactionId
from repro.store.logic import antecedent_closure


def assembled_payload_fragments(extensions, adjacency) -> int:
    """Message fragments a fully-assembled batch payload costs to ship.

    One fragment per flattened update of every derived extension, plus
    one per (undirected) conflict edge — the pricing both the mixin and
    the DHT driver charge for moving the precomputed structures to the
    reconciling client (Figures 6-7's size-bounded-message regime).
    """
    shipped = sum(len(ext.operations) for ext in extensions.values())
    shipped += sum(len(adj) for adj in adjacency.values()) // 2
    return shipped


def attach_assembled_payload(
    schema,
    batch: ReconciliationBatch,
    extensions,
    pair_cache: Optional[ConflictCache] = None,
) -> int:
    """Finish a fully network-centric batch: store-side ``FindConflicts``.

    The shared back half of ``begin_network_reconciliation`` for every
    backend: given the per-participant extensions (derived from direct
    log access by the mixin, or collected from transaction controllers
    over the ring by the DHT driver), run the pairwise conflict analysis
    against the per-participant ``pair_cache``, attach extensions and
    adjacency to the batch, and return the fragment count the shipped
    payload is priced at.
    """
    analysis = find_conflicts(schema, batch.graph, extensions, cache=pair_cache)
    batch.extensions = extensions
    batch.conflicts = analysis.adjacency
    return assembled_payload_fragments(extensions, analysis.adjacency)


class NetworkCentricMixin:
    """Store-side precomputation of extensions and conflicts.

    Concrete stores provide four accessors over their log:

    * ``_nc_deferred_tids(participant)`` — the participant's deferred
      transaction ids;
    * ``_nc_applied_tids(participant)`` — its applied transaction ids;
    * ``_nc_applied_version(participant)`` — a monotone counter bumped
      whenever that applied set grows (drives cache invalidation);
    * ``_nc_lookup(tid)`` — ``(transaction, antecedents, order)``.

    Precomputation reuses the same :mod:`repro.core.cache` machinery as
    the client engine, held per participant: a deferred transaction's
    extension — and every conflict pair untouched by new publications —
    depends only on the applied set, so it is computed once per change
    rather than once per reconciliation.
    """

    def _nc_deferred_tids(self, participant: int) -> List[TransactionId]:
        raise NotImplementedError

    def _nc_applied_tids(self, participant: int) -> Set[TransactionId]:
        raise NotImplementedError

    def _nc_applied_version(self, participant: int) -> int:
        raise NotImplementedError

    def _nc_lookup(
        self, tid: TransactionId
    ) -> Tuple[Transaction, Tuple[TransactionId, ...], int]:
        raise NotImplementedError

    def _nc_priority(self, participant: int, transaction: Transaction) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Per-participant store-side caches (lazily created: the mixin has no
    # __init__ of its own to avoid perturbing store construction chains).

    def _nc_extension_cache(self, participant: int) -> ExtensionCache:
        caches = getattr(self, "_nc_ext_caches", None)
        if caches is None:
            caches = self._nc_ext_caches = {}
        if participant not in caches:
            caches[participant] = ExtensionCache()
        return caches[participant]

    def _nc_conflict_cache(self, participant: int) -> ConflictCache:
        caches = getattr(self, "_nc_pair_caches", None)
        if caches is None:
            caches = self._nc_pair_caches = {}
        if participant not in caches:
            caches[participant] = ConflictCache(
                stats=self._nc_extension_cache(participant).stats
            )
        return caches[participant]

    # ------------------------------------------------------------------
    # Context-free extensions: computed once per published transaction,
    # shared by every participant.

    #: Backstop capacity of the confederation-shared memos.  Retention
    #: (:meth:`retire_shared_entries`) is the primary eviction policy;
    #: this FIFO cap only bounds worst-case memory when retention cannot
    #: fire — e.g. a registered participant that stops reconciling would
    #: otherwise pin every entry forever.  Eviction merely costs a
    #: recomputation on the next miss.
    SHARED_MEMO_LIMIT = 65536

    # ------------------------------------------------------------------
    # Spill seam: a durable store can keep evicted/retired memo entries
    # instead of dropping them.  The defaults make eviction pure cache
    # behaviour (drop; recompute on the next miss), exactly as before.

    def _spill_retired(self, tid: TransactionId, extension) -> None:
        """Hook: a memo entry is leaving RAM (retired or FIFO-evicted).

        The default drops it — retirement is pure cache eviction.  A
        durable backend overrides this to move the entry to disk so a
        later miss (e.g. a participant registered after retirement) is
        a page-in, not a recomputation.
        """

    def _load_retired(self, tid: TransactionId):
        """Hook: reload a previously spilled memo entry, or None.

        The default knows no spill medium and always misses.
        """
        return None

    def _evict_fifo(self, memo, limit: int) -> None:
        """Evict oldest memo entries past ``limit``, spilling each one."""
        while len(memo) > limit:
            tid = next(iter(memo))
            extension = memo.pop(tid)
            if extension is not None:
                self._spill_retired(tid, extension)

    def context_free_extension(
        self, root: RelevantTransaction
    ) -> Optional[UpdateExtension]:
        """The root's update extension against an *empty* applied set.

        A transaction's full antecedent closure — and hence its flattened
        extension with no applied-set filtering — is fixed at publish
        time, so the store derives it exactly once for the whole
        confederation (the memo is keyed by transaction id and never
        invalidated; entries leave through
        :meth:`retire_shared_entries` once every participant has
        finally decided the root, with the :attr:`SHARED_MEMO_LIMIT`
        FIFO backstop bounding the worst case).  A participant whose
        applied set is disjoint from the closure can adopt it as-is:
        the closure walk stops only at applied transactions, so
        removing stops that are never reached changes nothing.  Returns
        None when the footprint does not flatten (the engine rejects
        such roots locally).
        """
        memo = getattr(self, "_nc_context_free", None)
        if memo is None:
            memo = self._nc_context_free = {}
        tid = root.tid
        if tid in memo:
            return memo[tid]
        spilled = self._load_retired(tid)
        if spilled is not None:
            memo[tid] = spilled
            self._evict_fifo(memo, self.SHARED_MEMO_LIMIT)
            return spilled
        graph = TransactionGraph()
        for member in antecedent_closure(
            lambda t: self._nc_lookup(t)[1], [tid], stop=frozenset()
        ):
            transaction, antecedents, order = self._nc_lookup(member)
            graph.add(transaction, antecedents, order)
        try:
            extension = compute_update_extension(
                self.schema, graph, root, frozenset()
            )
        except FlattenError:
            extension = None
        memo[tid] = extension
        self._evict_fifo(memo, self.SHARED_MEMO_LIMIT)
        return extension

    def shared_pair_cache(self) -> ConflictCache:
        """One confederation-wide memo of pairwise conflict points.

        Direct-conflict points are a pure function of the two compared
        extension objects, and every participant receives the *same*
        context-free extension objects (from the store's memo), so the
        first participant to compare a pair serves all the others.  The
        cache validates entries by object identity on both sides, so a
        participant holding a locally recomputed extension simply misses
        and compares as before.
        """
        cache = getattr(self, "_nc_shared_pairs", None)
        if cache is None:
            cache = self._nc_shared_pairs = ConflictCache(
                limit=self.SHARED_MEMO_LIMIT
            )
        return cache

    def retire_shared_entries(self, roots) -> None:
        """Reconciliation-aware retention for the shared memos.

        ``roots`` are transaction ids every registered participant has
        finally decided (applied or rejected).  Such a root can never
        appear in a reconciliation batch again — the store delivers only
        undecided transactions — so its context-free extension, and
        every shared pair-memo entry it participates in, is dead weight
        in RAM and leaves here (dropped, or spilled to disk when the
        store overrides :meth:`_spill_retired`).  (Deferred roots are
        *not* retired: in
        network-centric mode the store reconsiders them every round.)

        With retention as the primary policy, memory tracks the
        confederation's *open* frontier — O(undecided roots) — instead
        of O(recent history); an entry is only FIFO-evicted (the
        :attr:`SHARED_MEMO_LIMIT` backstop) when retention cannot keep
        up, e.g. a registered participant that stopped reconciling.
        """
        roots = [tid for tid in roots]
        if not roots:
            return
        memo = getattr(self, "_nc_context_free", None)
        if memo:
            for tid in roots:
                extension = memo.pop(tid, None)
                if extension is not None:
                    self._spill_retired(tid, extension)
        pairs = getattr(self, "_nc_shared_pairs", None)
        if pairs is not None:
            pairs.discard(roots)

    def ship_context_free_extensions(
        self, batch: ReconciliationBatch
    ) -> None:
        """Attach precomputed context-free extensions to a batch.

        Done for every reconciliation batch (client-centric included):
        the payload is derived data — the batch already carries the
        closure transactions themselves — so it costs no extra store
        messages, and it saves each reconciling participant from
        re-deriving the identical flattened footprint locally.  The
        shared pair-point memo rides along for the same reason.

        Both payloads are gated on the store's declared capabilities
        (:class:`repro.store.registry.StoreCapabilities`): a backend
        that does not advertise ``ships_context_free`` ships nothing,
        and one without ``shared_pair_memo`` omits the pair cache —
        keeping the declared flags and the wire behaviour in lockstep.
        """
        capabilities = getattr(self, "capabilities", None)
        if capabilities is None or capabilities.ships_context_free:
            shipped = {
                root.tid: extension
                for root in batch.roots
                if (extension := self.context_free_extension(root)) is not None
            }
            batch.extensions = shipped or None
        # Independent of the extension flag: the pair memo is useful on
        # its own (it validates by object identity, so it simply misses
        # against locally recomputed extensions).
        if capabilities is None or capabilities.shared_pair_memo:
            batch.pair_cache = self.shared_pair_cache()

    # ------------------------------------------------------------------

    def begin_network_reconciliation(
        self, participant: int
    ) -> ReconciliationBatch:
        """A batch with store-computed extensions and conflict adjacency."""
        batch = self.begin_reconciliation(participant)
        applied = self._nc_applied_tids(participant)

        # Fold the participant's deferred transactions in as roots: in
        # network-centric mode the store recomputes their standing too.
        present = {root.tid for root in batch.roots}
        for tid in self._nc_deferred_tids(participant):
            if tid in present:
                continue
            transaction, _antes, order = self._nc_lookup(tid)
            priority = self._nc_priority(participant, transaction)
            batch.roots.append(
                RelevantTransaction(
                    transaction=transaction, priority=priority, order=order
                )
            )
            closure = antecedent_closure(
                lambda t: self._nc_lookup(t)[1], [tid], stop=applied
            )
            for member in closure:
                member_txn, member_antes, member_order = self._nc_lookup(member)
                batch.graph.add(member_txn, member_antes, member_order)
        batch.roots.sort(key=lambda root: root.order)

        ext_cache = self._nc_extension_cache(participant)
        pair_cache = self._nc_conflict_cache(participant)
        version = self._nc_applied_version(participant)
        extensions = {}
        for root in batch.roots:
            extension = ext_cache.lookup(
                root.tid, version, applied, root.priority
            )
            if extension is None:
                # Work that only depends on the applied set is shared:
                # a context-free extension valid for this participant is
                # adopted instead of recomputing per participant.
                shared = self.context_free_extension(root)
                if shared is not None and shared.member_set().isdisjoint(
                    applied
                ):
                    if shared.priority != root.priority:
                        shared = replace(shared, priority=root.priority)
                    extension = shared
                    ext_cache.stats.shipped += 1
                    ext_cache.store(root.tid, version, extension)
            if extension is None:
                try:
                    extension = compute_update_extension(
                        self.schema, batch.graph, root, applied
                    )
                except FlattenError:
                    # Leave it out; the client's fallback recomputation
                    # will reach the same FlattenError and reject the
                    # root.
                    continue
                ext_cache.stats.misses += 1
                ext_cache.store(root.tid, version, extension)
            extensions[root.tid] = extension
        shipped = attach_assembled_payload(
            self.schema, batch, extensions, pair_cache
        )

        # Deferred roots reappear in the next round's batch; anything else
        # is decided by then, so cap both caches at this round's roots.
        ext_cache.prune(extensions)
        pair_cache.prune(extensions)

        # Communication: shipping the precomputed structures costs
        # messages proportional to their size (one fragment per flattened
        # update, plus one per conflict edge).
        self.perf.charge(2 + shipped, self.message_latency)
        return batch
