"""Network-centric reconciliation support (Figure 3's other column).

In client-centric reconciliation (the paper's implementation, and our
default) the reconciling participant computes update extensions and
detects conflicts itself.  Figure 3 contrasts this with *network-centric*
reconciliation, which "distributes almost all of the work across the
network" at the price of more communication; the paper leaves it as
future work.

:class:`NetworkCentricMixin` implements the store side of that mode for
stores with direct access to their log (the in-memory and central-sqlite
stores — the "central store + network-centric" quadrant of Figure 3):
:meth:`begin_network_reconciliation` returns a batch whose flattened
update extensions and direct-conflict adjacency are already computed,
covering both newly relevant transactions and the participant's deferred
ones (which the store tracks).  The client then only runs ``CheckState``
(it alone holds the materialised instance, dirty values, and its own
delta), the cheap greedy ``DoGroup``, and application.

The distributed store keeps client-centric reconciliation only, exactly
like the paper's implementation; a fully distributed network-centric
engine remains future work there and here.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    compute_update_extension,
)
from repro.core.conflicts import find_conflicts
from repro.errors import FlattenError
from repro.model.transactions import Transaction, TransactionId
from repro.store.logic import antecedent_closure


class NetworkCentricMixin:
    """Store-side precomputation of extensions and conflicts.

    Concrete stores provide three accessors over their log:

    * ``_nc_deferred_tids(participant)`` — the participant's deferred
      transaction ids;
    * ``_nc_applied_tids(participant)`` — its applied transaction ids;
    * ``_nc_lookup(tid)`` — ``(transaction, antecedents, order)``.
    """

    def _nc_deferred_tids(self, participant: int) -> List[TransactionId]:
        raise NotImplementedError

    def _nc_applied_tids(self, participant: int) -> Set[TransactionId]:
        raise NotImplementedError

    def _nc_lookup(
        self, tid: TransactionId
    ) -> Tuple[Transaction, Tuple[TransactionId, ...], int]:
        raise NotImplementedError

    def _nc_priority(self, participant: int, transaction: Transaction) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------

    def begin_network_reconciliation(
        self, participant: int
    ) -> ReconciliationBatch:
        """A batch with store-computed extensions and conflict adjacency."""
        batch = self.begin_reconciliation(participant)
        applied = self._nc_applied_tids(participant)

        # Fold the participant's deferred transactions in as roots: in
        # network-centric mode the store recomputes their standing too.
        present = {root.tid for root in batch.roots}
        for tid in self._nc_deferred_tids(participant):
            if tid in present:
                continue
            transaction, _antes, order = self._nc_lookup(tid)
            priority = self._nc_priority(participant, transaction)
            batch.roots.append(
                RelevantTransaction(
                    transaction=transaction, priority=priority, order=order
                )
            )
            closure = antecedent_closure(
                lambda t: self._nc_lookup(t)[1], [tid], stop=applied
            )
            for member in closure:
                member_txn, member_antes, member_order = self._nc_lookup(member)
                batch.graph.add(member_txn, member_antes, member_order)
        batch.roots.sort(key=lambda root: root.order)

        extensions = {}
        for root in batch.roots:
            try:
                extensions[root.tid] = compute_update_extension(
                    self.schema, batch.graph, root, applied
                )
            except FlattenError:
                # Leave it out; the client's fallback recomputation will
                # reach the same FlattenError and reject the root.
                continue
        conflicts = find_conflicts(self.schema, batch.graph, extensions)
        batch.extensions = extensions
        batch.conflicts = conflicts

        # Communication: shipping the precomputed structures costs
        # messages proportional to their size (one fragment per flattened
        # update, plus one per conflict edge).
        shipped = sum(len(ext.operations) for ext in extensions.values())
        shipped += sum(len(adj) for adj in conflicts.values()) // 2
        self.perf.charge(2 + shipped, self.message_latency)
        return batch
