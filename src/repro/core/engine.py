"""The client-centric ``ReconcileUpdates`` algorithm (Figures 4 and 5).

One :class:`Reconciler` belongs to one participant.  Each call to
:meth:`Reconciler.reconcile` processes one reconciliation batch:

1. merge the batch's transactions into the participant's graph cache and
   gather the roots to consider — newly delivered trusted transactions
   plus every previously deferred transaction (they are reconsidered on
   every run, as in the paper);
2. compute each root's flattened update extension (Definition 3);
3. ``CheckState`` — defer roots touching dirty values, reject roots whose
   extension contains an already-rejected transaction, is incompatible
   with the local instance, or conflicts with the participant's own
   just-published delta;
4. ``FindConflicts`` — pairwise direct conflicts (Definition 4), skipping
   subsumed pairs;
5. ``DoGroup`` per priority level in decreasing order — reject roots that
   conflict with accepted higher-priority roots, defer roots that conflict
   with deferred higher-priority roots, and defer both sides of any
   conflict inside one priority level;
6. apply the accepted roots' extensions (recomputing against the ``Used``
   set so overlapping antecedents are applied exactly once);
7. ``UpdateSoftState`` — rebuild the dirty-value set and conflict groups
   from the transactions that remain deferred.

The dirty-value test in step 3 applies only to roots that were *not*
already deferred: previously deferred roots are exactly the transactions
whose keys are dirty, and they must be re-evaluated on their own merits so
that conflict resolution can eventually accept them.

Caching (the incremental hot path)
----------------------------------

Steps 2, 4, and 7 are served by the incremental machinery of
:mod:`repro.core.cache` and
:class:`repro.core.conflicts.IncrementalConflictIndex` so repeated
reconciliations pay only for what changed since the last one:

* update extensions are memoized against
  :attr:`ParticipantState.applied_version`; a previously deferred root
  whose antecedent closure is untouched by newly applied transactions is
  an O(1) hit (or an O(|members|) revalidation), both in step 2 and again
  in ``UpdateSoftState`` — the seed recomputed every deferred extension
  twice per epoch;
* for roots the store shipped a *context-free* extension for (flattened
  against an empty applied set, derived once per published transaction
  confederation-wide), the engine adopts the shipped object whenever its
  member closure is disjoint from the local applied set — the condition
  under which it provably equals the local computation;
* ``FindConflicts`` runs against a per-participant incremental index:
  only pairs involving an extension that changed since the previous
  epoch are compared, ``UpdateSoftState`` reuses the same index (shrunk
  to the deferred roots), and a store-shared pair memo lets the first
  participant to compare two shipped extensions serve every other;
* ``can_apply_set`` verdicts are memoized against the instance's
  mutation counter, so unchanged deferred roots skip re-validation
  against an unchanged replica.

Cache validity never depends on heuristics: extensions are exact for a
given applied set (reuse only when provably unchanged), conflict points
depend only on the two extensions compared (validated by object
identity), and applicability is versioned by instance mutations.
Decisions are therefore byte-identical to an uncached run — the perf
benchmark (``benchmarks/test_perf_engine.py``) pins this.  Per-run
counter deltas are exposed on :attr:`ReconcileResult.cache_stats`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConstraintViolation, FlattenError
from repro.instance.base import Instance
from repro.model.flatten import flatten
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.model.updates import Update, updates_conflict

from repro.core.cache import ExtensionCache
from repro.core.conflicts import (
    IncrementalConflictIndex,
    build_conflict_groups,
)
from repro.core.decisions import Decision, ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    UpdateExtension,
    update_footprint,
)
from repro.core.state import ParticipantState


class Reconciler:
    """Runs client-centric reconciliation for one participant."""

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        state: ParticipantState,
        cache: Optional[ExtensionCache] = None,
        hooks: Optional[object] = None,
    ) -> None:
        """``cache`` defaults to a fresh enabled :class:`ExtensionCache`;
        pass ``ExtensionCache(enabled=False)`` to run every epoch from
        scratch (the benchmark's uncached baseline).  ``hooks`` is an
        optional event bus (:class:`repro.confed.hooks.HookBus`, duck-
        typed to keep the engine free of upward imports); when present
        the engine emits ``decision``, ``conflict``, and ``cache_stats``
        events at the end of every reconciliation."""
        self._schema = schema
        self._instance = instance
        self._state = state
        self._hooks = hooks
        self._cache = cache if cache is not None else ExtensionCache()
        self._conflict_index = IncrementalConflictIndex(
            enabled=self._cache.enabled, stats=self._cache.stats
        )
        # ``can_apply_set`` verdicts per root: (extension object, instance
        # mutation count, verdict).  Exact — the verdict is a pure
        # function of the extension's operations and the instance state,
        # and both are versioned.
        self._applicability: Dict[
            TransactionId, Tuple[UpdateExtension, int, bool]
        ] = {}
        # The store-shared pair cache of the batch being reconciled, if
        # any (see ReconciliationBatch.pair_cache).
        self._shared_pairs = None

    @property
    def state(self) -> ParticipantState:
        """The participant's reconciliation bookkeeping."""
        return self._state

    @property
    def cache(self) -> ExtensionCache:
        """The participant's extension cache (stats live here)."""
        return self._cache

    # ------------------------------------------------------------------

    def reconcile(
        self,
        batch: ReconciliationBatch,
        own_updates: Sequence[Update] = (),
    ) -> ReconcileResult:
        """Run one reconciliation (the paper's ``ReconcileUpdates``).

        ``own_updates`` is the participant's own delta for this epoch —
        updates it published together with this reconciliation, already in
        its instance.  Extensions conflicting with it are rejected: the
        participant always prefers its own version (CheckState line 7).
        """
        state = self._state
        state.graph.merge(batch.graph)

        previously_deferred = set(state.deferred)
        roots = self._gather_roots(batch)
        result = ReconcileResult(recno=batch.recno)
        stats_before = self._cache.stats.snapshot()

        extensions: Dict[TransactionId, UpdateExtension] = {}
        decision: Dict[TransactionId, Decision] = {}
        own_delta = list(flatten(self._schema, own_updates)) if own_updates else []
        own_keys = frozenset(
            key
            for update in own_delta
            for key in update.keys_touched(self._schema)
        )

        # Figure 4 lines 5-8: flattened extensions and CheckState.  In
        # network-centric mode the store precomputed the extensions (and
        # must have covered every root, deferred ones included); any root
        # it missed falls back to local computation.  Extensions for
        # previously deferred roots are usually cache hits: they were
        # stored last epoch and stay exact while no member of their
        # antecedent closure becomes applied.  In client-centric mode the
        # store may still ship *context-free* extensions (computed once
        # per published transaction); one is adopted when this
        # participant's applied set is disjoint from its closure — the
        # condition under which it equals the locally computed extension.
        # The serving store's declared capabilities decide whether its
        # shipped payloads are eligible at all (absent flags — batches
        # built by hand in tests — are permissive).
        capabilities = batch.capabilities
        ships_context_free = capabilities is None or getattr(
            capabilities, "ships_context_free", True
        )
        shares_pair_memo = capabilities is None or getattr(
            capabilities, "shared_pair_memo", True
        )
        precomputed = batch.extensions if batch.network_centric else None
        shipped = (
            batch.extensions
            if batch.extensions is not None
            and not batch.network_centric
            and ships_context_free
            else None
        )
        for root in roots:
            extension = None
            if precomputed is not None:
                extension = precomputed.get(root.tid)
                if extension is not None:
                    # Adopted without re-deriving: the store assembled
                    # this batch per participant, so the extension is
                    # exact for our applied set.  Count it with the
                    # shipped context-free adoptions — both are local
                    # computations the store saved us.
                    self._cache.stats.shipped += 1
                    self._cache.store(
                        root.tid, state.applied_version, extension
                    )
            elif self._cache.enabled:
                extension = self._cache.lookup(
                    root.tid,
                    state.applied_version,
                    state.applied,
                    root.priority,
                )
                if extension is None and shipped is not None:
                    candidate = shipped.get(root.tid)
                    if candidate is not None and candidate.member_set().isdisjoint(
                        state.applied
                    ):
                        if candidate.priority != root.priority:
                            candidate = replace(
                                candidate, priority=root.priority
                            )
                        extension = candidate
                        self._cache.stats.shipped += 1
                        self._cache.store(
                            root.tid, state.applied_version, extension
                        )
            if extension is None:
                try:
                    extension = self._cache.get_or_compute(
                        self._schema,
                        state.graph,
                        root,
                        state.applied,
                        state.applied_version,
                    )
                except FlattenError:
                    # An internally inconsistent chain can never be applied.
                    decision[root.tid] = Decision.REJECT
                    continue
            extensions[root.tid] = extension
            decision[root.tid] = self._check_state(
                extension,
                own_delta,
                own_keys,
                dirty_exempt=root.tid in previously_deferred,
            )

        # Figure 4 line 9 (store-side in network-centric mode).  The
        # incremental index restricts the pairwise work to pairs involving
        # at least one extension that changed since the previous epoch.
        self._shared_pairs = (
            batch.pair_cache
            if self._cache.enabled and shares_pair_memo
            else None
        )
        if batch.network_centric and set(batch.conflicts) >= set(extensions):
            adjacency = batch.conflicts
        else:
            analysis = self._conflict_index.update(
                self._schema, state.graph, extensions, self._shared_pairs
            )
            adjacency = analysis.adjacency

        # Figure 4 lines 10-12: greedy, by decreasing priority.
        priorities = sorted({root.priority for root in roots}, reverse=True)
        roots_by_tid = {root.tid: root for root in roots}
        for priority in priorities:
            self._do_group(priority, roots_by_tid, adjacency, decision)

        # Figure 4 lines 13-19: record decisions and apply accepted roots.
        self._apply_accepted(roots, extensions, decision, result)

        # Bookkeeping for rejected and deferred roots.  A root that was
        # rejected or deferred *as a proposal* may still have been applied
        # as a member of another accepted extension in this same run (its
        # intermediate state was revised away by a longer trusted chain);
        # "applied" is then the operative verdict — Definition 5 only
        # excludes rejections recorded in earlier epochs.
        for root in roots:
            if root.tid in state.applied:
                continue
            verdict = decision.get(root.tid)
            if verdict is Decision.REJECT:
                state.record_rejected([root.tid])
                result.rejected.append(root.tid)
            elif verdict is Decision.DEFER:
                state.record_deferred(root, batch.recno)
                result.deferred.append(root.tid)
        result.decisions = dict(decision)

        # Figure 4 line 21: UpdateSoftState, reusing this epoch's
        # extensions and conflict analysis wherever they are still exact.
        self._update_soft_state(result)

        # The extension cache only ever needs the still-deferred roots
        # again (the conflict index pruned itself to the deferred set
        # inside UpdateSoftState).
        self._cache.prune(state.deferred)
        for tid in [
            t for t in self._applicability if t not in state.deferred
        ]:
            del self._applicability[tid]
        result.cache_stats = self._cache.stats.minus(stats_before)

        state.last_recno = batch.recno
        self._emit_events(roots, decision, result)
        return result

    def _emit_events(
        self,
        roots: Sequence[RelevantTransaction],
        decision: Dict[TransactionId, Decision],
        result: ReconcileResult,
    ) -> None:
        """Emit per-run events onto the hook bus, if one is attached.

        Ordering is deterministic: one ``decision`` event per root in
        publish order, then one ``conflict`` event per open conflict
        group (stable group order), then a single ``cache_stats`` event
        with this run's counter delta.
        """
        hooks = self._hooks
        if hooks is None:
            return
        state = self._state
        if hooks.has("decision"):
            for root in sorted(roots, key=lambda r: r.order):
                verdict = decision.get(root.tid)
                if verdict is None:
                    continue
                hooks.emit(
                    "decision",
                    participant=state.participant,
                    recno=result.recno,
                    tid=root.tid,
                    decision=verdict,
                )
        if hooks.has("conflict"):
            for group in state.open_conflicts():
                hooks.emit(
                    "conflict",
                    participant=state.participant,
                    recno=result.recno,
                    group=group,
                )
        hooks.emit(
            "cache_stats",
            participant=state.participant,
            recno=result.recno,
            stats=result.cache_stats,
        )

    # ------------------------------------------------------------------
    # Step 1: roots

    def _gather_roots(
        self, batch: ReconciliationBatch
    ) -> List[RelevantTransaction]:
        """New trusted roots plus reconsidered deferred roots, in order."""
        state = self._state
        roots: Dict[TransactionId, RelevantTransaction] = {}
        for root in state.deferred_roots():
            roots[root.tid] = root
        for root in batch.roots:
            if state.is_decided(root.tid):
                continue  # the store should not re-deliver, but be safe
            roots.setdefault(root.tid, root)
        return sorted(roots.values(), key=lambda r: r.order)

    # ------------------------------------------------------------------
    # Step 3: CheckState (Figure 5)

    def _check_state(
        self,
        extension: UpdateExtension,
        own_delta: Sequence[Update],
        own_keys: frozenset,
        dirty_exempt: bool,
    ) -> Decision:
        state = self._state
        dirty = state.dirty_keys
        if not dirty_exempt and dirty and not extension.touched.isdisjoint(dirty):
            return Decision.DEFER
        rejected = state.rejected
        if rejected and any(member in rejected for member in extension.members):
            return Decision.REJECT
        if not self._can_apply(extension):
            return Decision.REJECT
        # Own-delta conflicts require a shared key (``own_keys`` indexes
        # the delta's touched keys); extensions elsewhere skip the
        # pairwise scan entirely.
        if own_keys and not extension.touched.isdisjoint(own_keys):
            for update in extension.operations:
                for own in own_delta:
                    if updates_conflict(self._schema, update, own):
                        return Decision.REJECT
        return Decision.ACCEPT

    def _can_apply(self, extension: UpdateExtension) -> bool:
        """Memoized ``can_apply_set`` for one extension.

        Deferred roots are re-checked on every epoch; while neither their
        extension object nor the instance changed, the verdict cannot
        change either.  Disabled together with the extension cache so the
        uncached baseline re-validates like the seed did.
        """
        if not self._cache.enabled:
            return self._instance.can_apply_set(list(extension.operations))
        version = self._instance.mutation_count
        memo = self._applicability.get(extension.root)
        if (
            memo is not None
            and memo[0] is extension
            and memo[1] == version
        ):
            return memo[2]
        verdict = self._instance.can_apply_set(list(extension.operations))
        self._applicability[extension.root] = (extension, version, verdict)
        return verdict

    # ------------------------------------------------------------------
    # Step 5: DoGroup (Figure 5)

    def _do_group(
        self,
        priority: int,
        roots_by_tid: Dict[TransactionId, RelevantTransaction],
        conflicts: Dict[TransactionId, Set[TransactionId]],
        decision: Dict[TransactionId, Decision],
    ) -> None:
        group = [
            tid
            for tid, root in roots_by_tid.items()
            if root.priority == priority and decision.get(tid) is not Decision.REJECT
        ]
        higher = {
            tid
            for tid, root in roots_by_tid.items()
            if root.priority > priority
        }
        # Lines 4-12: interactions with higher-priority roots.
        surviving: List[TransactionId] = []
        for tid in sorted(group):
            for other in conflicts.get(tid, ()):  # noqa: B007
                if other not in higher:
                    continue
                if decision.get(other) is Decision.ACCEPT:
                    decision[tid] = Decision.REJECT
                    break
                if decision.get(other) is Decision.DEFER:
                    decision[tid] = Decision.DEFER
            if decision.get(tid) is not Decision.REJECT:
                surviving.append(tid)
        # Lines 13-17: conflicts inside the priority group defer both sides.
        # Walk each survivor's (sparse) adjacency instead of enumerating
        # all O(n²) survivor pairs.
        surviving_set = set(surviving)
        for tid in surviving:
            for other in conflicts.get(tid, ()):
                if other in surviving_set:
                    decision[tid] = Decision.DEFER
                    decision[other] = Decision.DEFER

    # ------------------------------------------------------------------
    # Step 6: application (Figure 4 lines 14-19)

    def _apply_accepted(
        self,
        roots: Sequence[RelevantTransaction],
        extensions: Dict[TransactionId, UpdateExtension],
        decision: Dict[TransactionId, Decision],
        result: ReconcileResult,
    ) -> None:
        state = self._state
        accepted = [
            root for root in roots if decision.get(root.tid) is Decision.ACCEPT
        ]
        accepted_ids = {root.tid for root in accepted}

        # Roots are processed in publish order with a shared ``Used`` set, so
        # overlapping antecedents are applied exactly once.  (The paper
        # iterates only maximal roots; processing every accepted root in
        # order with residual extensions is equivalent — an antecedent root
        # applied first simply leaves nothing extra for its dependents.)
        used: Set[TransactionId] = set()
        for root in sorted(accepted, key=lambda r: r.order):
            extension = extensions[root.tid]
            residual = [tid for tid in extension.members if tid not in used]
            operations = flatten(
                self._schema, update_footprint(state.graph, residual)
            )
            try:
                self._instance.apply_set(operations)
            except ConstraintViolation:
                # Accepted extensions are mutually conflict-free, so this
                # indicates overlapping chains beyond what the conflict
                # rules model; rejecting is the safe, documented fallback.
                decision[root.tid] = Decision.REJECT
                accepted_ids.discard(root.tid)
                continue
            used.update(residual)
            result.updates_applied += len(operations)

        # Everything applied (roots and antecedents) becomes "applied".
        applied_now: Set[TransactionId] = set(used)
        for root in accepted:
            if root.tid in accepted_ids:
                applied_now.update(extensions[root.tid].members)
                result.accepted.append(root.tid)
        state.record_applied(applied_now)
        result.applied = sorted(applied_now, key=state.graph.order_of)

    def rebuild_soft_state(self) -> None:
        """Recompute dirty values and conflict groups from the current
        deferred set without re-deciding anything.

        Used by state reconstruction (:meth:`Participant.rebuild`): the
        deferred transactions' standing must not be re-evaluated against
        an instance that may have moved on since they were deferred —
        that re-evaluation belongs to the next real reconciliation.
        """
        self._update_soft_state(ReconcileResult(recno=self._state.last_recno))

    # ------------------------------------------------------------------
    # Step 7: UpdateSoftState (Figure 5)

    def _update_soft_state(self, result: ReconcileResult) -> None:
        """Rebuild dirty values and conflict groups for the deferred set.

        Every deferred root was a root of the :meth:`reconcile` call this
        runs inside of, so its extension is a cache hit unless application
        made a member of its closure ``applied`` — the seed recomputed
        every one of them here, a second full pass per epoch.  Likewise
        the conflict analysis: bringing the incremental index down to the
        deferred set only drops the decided roots and re-compares pairs
        involving extensions that actually changed.
        """
        state = self._state
        deferred_extensions: Dict[TransactionId, UpdateExtension] = {}
        for root in state.deferred_roots():
            try:
                extension = self._cache.get_or_compute(
                    self._schema,
                    state.graph,
                    root,
                    state.applied,
                    state.applied_version,
                )
            except FlattenError:  # pragma: no cover - defensive
                continue
            deferred_extensions[root.tid] = extension
        dirty: Set = set()
        for extension in deferred_extensions.values():
            dirty.update(extension.touched)
        analysis = self._conflict_index.update(
            self._schema, state.graph, deferred_extensions, self._shared_pairs
        )
        groups = build_conflict_groups(
            self._schema,
            state.graph,
            deferred_extensions,
            analysis=analysis,
        )
        state.replace_soft_state(dirty, groups)
        result.conflict_groups = [
            (group_id, len(group.options))
            for group_id, group in sorted(groups.items(), key=lambda kv: repr(kv[0]))
        ]
