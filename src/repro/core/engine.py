"""The client-centric ``ReconcileUpdates`` algorithm (Figures 4 and 5).

One :class:`Reconciler` belongs to one participant.  Each call to
:meth:`Reconciler.reconcile` processes one reconciliation batch:

1. merge the batch's transactions into the participant's graph cache and
   gather the roots to consider — newly delivered trusted transactions
   plus every previously deferred transaction (they are reconsidered on
   every run, as in the paper);
2. compute each root's flattened update extension (Definition 3);
3. ``CheckState`` — defer roots touching dirty values, reject roots whose
   extension contains an already-rejected transaction, is incompatible
   with the local instance, or conflicts with the participant's own
   just-published delta;
4. ``FindConflicts`` — pairwise direct conflicts (Definition 4), skipping
   subsumed pairs;
5. ``DoGroup`` per priority level in decreasing order — reject roots that
   conflict with accepted higher-priority roots, defer roots that conflict
   with deferred higher-priority roots, and defer both sides of any
   conflict inside one priority level;
6. apply the accepted roots' extensions (recomputing against the ``Used``
   set so overlapping antecedents are applied exactly once);
7. ``UpdateSoftState`` — rebuild the dirty-value set and conflict groups
   from the transactions that remain deferred.

The dirty-value test in step 3 applies only to roots that were *not*
already deferred: previously deferred roots are exactly the transactions
whose keys are dirty, and they must be re-evaluated on their own merits so
that conflict resolution can eventually accept them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConstraintViolation, FlattenError
from repro.instance.base import Instance
from repro.model.flatten import flatten
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.model.updates import Update, updates_conflict

from repro.core.conflicts import build_conflict_groups, find_conflicts
from repro.core.decisions import Decision, ReconcileResult
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    UpdateExtension,
    compute_update_extension,
    update_footprint,
)
from repro.core.state import ParticipantState


class Reconciler:
    """Runs client-centric reconciliation for one participant."""

    def __init__(
        self, schema: Schema, instance: Instance, state: ParticipantState
    ) -> None:
        self._schema = schema
        self._instance = instance
        self._state = state

    @property
    def state(self) -> ParticipantState:
        """The participant's reconciliation bookkeeping."""
        return self._state

    # ------------------------------------------------------------------

    def reconcile(
        self,
        batch: ReconciliationBatch,
        own_updates: Sequence[Update] = (),
    ) -> ReconcileResult:
        """Run one reconciliation (the paper's ``ReconcileUpdates``).

        ``own_updates`` is the participant's own delta for this epoch —
        updates it published together with this reconciliation, already in
        its instance.  Extensions conflicting with it are rejected: the
        participant always prefers its own version (CheckState line 7).
        """
        state = self._state
        state.graph.merge(batch.graph)

        previously_deferred = set(state.deferred)
        roots = self._gather_roots(batch)
        result = ReconcileResult(recno=batch.recno)

        extensions: Dict[TransactionId, UpdateExtension] = {}
        decision: Dict[TransactionId, Decision] = {}
        own_delta = list(flatten(self._schema, own_updates)) if own_updates else []

        # Figure 4 lines 5-8: flattened extensions and CheckState.  In
        # network-centric mode the store precomputed the extensions (and
        # must have covered every root, deferred ones included); any root
        # it missed falls back to local computation.
        precomputed = batch.extensions if batch.network_centric else None
        for root in roots:
            extension = None
            if precomputed is not None:
                extension = precomputed.get(root.tid)
            if extension is None:
                try:
                    extension = compute_update_extension(
                        self._schema, state.graph, root, state.applied
                    )
                except FlattenError:
                    # An internally inconsistent chain can never be applied.
                    decision[root.tid] = Decision.REJECT
                    continue
            extensions[root.tid] = extension
            decision[root.tid] = self._check_state(
                extension,
                own_delta,
                dirty_exempt=root.tid in previously_deferred,
            )

        # Figure 4 line 9 (store-side in network-centric mode).
        if batch.network_centric and set(batch.conflicts) >= set(extensions):
            conflicts = batch.conflicts
        else:
            conflicts = find_conflicts(self._schema, state.graph, extensions)

        # Figure 4 lines 10-12: greedy, by decreasing priority.
        priorities = sorted({root.priority for root in roots}, reverse=True)
        roots_by_tid = {root.tid: root for root in roots}
        for priority in priorities:
            self._do_group(priority, roots_by_tid, conflicts, decision)

        # Figure 4 lines 13-19: record decisions and apply accepted roots.
        self._apply_accepted(roots, extensions, decision, result)

        # Bookkeeping for rejected and deferred roots.  A root that was
        # rejected or deferred *as a proposal* may still have been applied
        # as a member of another accepted extension in this same run (its
        # intermediate state was revised away by a longer trusted chain);
        # "applied" is then the operative verdict — Definition 5 only
        # excludes rejections recorded in earlier epochs.
        for root in roots:
            if root.tid in state.applied:
                continue
            verdict = decision.get(root.tid)
            if verdict is Decision.REJECT:
                state.record_rejected([root.tid])
                result.rejected.append(root.tid)
            elif verdict is Decision.DEFER:
                state.record_deferred(root, batch.recno)
                result.deferred.append(root.tid)
        result.decisions = dict(decision)

        # Figure 4 line 21: UpdateSoftState.
        self._update_soft_state(result)

        state.last_recno = batch.recno
        return result

    # ------------------------------------------------------------------
    # Step 1: roots

    def _gather_roots(
        self, batch: ReconciliationBatch
    ) -> List[RelevantTransaction]:
        """New trusted roots plus reconsidered deferred roots, in order."""
        state = self._state
        roots: Dict[TransactionId, RelevantTransaction] = {}
        for root in state.deferred_roots():
            roots[root.tid] = root
        for root in batch.roots:
            if state.is_decided(root.tid):
                continue  # the store should not re-deliver, but be safe
            roots.setdefault(root.tid, root)
        return sorted(roots.values(), key=lambda r: r.order)

    # ------------------------------------------------------------------
    # Step 3: CheckState (Figure 5)

    def _check_state(
        self,
        extension: UpdateExtension,
        own_delta: Sequence[Update],
        dirty_exempt: bool,
    ) -> Decision:
        state = self._state
        if not dirty_exempt and extension.touched & state.dirty_keys:
            return Decision.DEFER
        if any(member in state.rejected for member in extension.members):
            return Decision.REJECT
        if not self._instance.can_apply_set(list(extension.operations)):
            return Decision.REJECT
        for update in extension.operations:
            for own in own_delta:
                if updates_conflict(self._schema, update, own):
                    return Decision.REJECT
        return Decision.ACCEPT

    # ------------------------------------------------------------------
    # Step 5: DoGroup (Figure 5)

    def _do_group(
        self,
        priority: int,
        roots_by_tid: Dict[TransactionId, RelevantTransaction],
        conflicts: Dict[TransactionId, Set[TransactionId]],
        decision: Dict[TransactionId, Decision],
    ) -> None:
        group = [
            tid
            for tid, root in roots_by_tid.items()
            if root.priority == priority and decision.get(tid) is not Decision.REJECT
        ]
        higher = {
            tid
            for tid, root in roots_by_tid.items()
            if root.priority > priority
        }
        # Lines 4-12: interactions with higher-priority roots.
        surviving: List[TransactionId] = []
        for tid in sorted(group):
            for other in conflicts.get(tid, ()):  # noqa: B007
                if other not in higher:
                    continue
                if decision.get(other) is Decision.ACCEPT:
                    decision[tid] = Decision.REJECT
                    break
                if decision.get(other) is Decision.DEFER:
                    decision[tid] = Decision.DEFER
            if decision.get(tid) is not Decision.REJECT:
                surviving.append(tid)
        # Lines 13-17: conflicts inside the priority group defer both sides.
        for i, tid in enumerate(surviving):
            for other in surviving[i + 1 :]:
                if other in conflicts.get(tid, ()):
                    decision[tid] = Decision.DEFER
                    decision[other] = Decision.DEFER

    # ------------------------------------------------------------------
    # Step 6: application (Figure 4 lines 14-19)

    def _apply_accepted(
        self,
        roots: Sequence[RelevantTransaction],
        extensions: Dict[TransactionId, UpdateExtension],
        decision: Dict[TransactionId, Decision],
        result: ReconcileResult,
    ) -> None:
        state = self._state
        accepted = [
            root for root in roots if decision.get(root.tid) is Decision.ACCEPT
        ]
        accepted_ids = {root.tid for root in accepted}

        # Roots are processed in publish order with a shared ``Used`` set, so
        # overlapping antecedents are applied exactly once.  (The paper
        # iterates only maximal roots; processing every accepted root in
        # order with residual extensions is equivalent — an antecedent root
        # applied first simply leaves nothing extra for its dependents.)
        used: Set[TransactionId] = set()
        for root in sorted(accepted, key=lambda r: r.order):
            extension = extensions[root.tid]
            residual = [tid for tid in extension.members if tid not in used]
            operations = flatten(
                self._schema, update_footprint(state.graph, residual)
            )
            try:
                self._instance.apply_set(operations)
            except ConstraintViolation:
                # Accepted extensions are mutually conflict-free, so this
                # indicates overlapping chains beyond what the conflict
                # rules model; rejecting is the safe, documented fallback.
                decision[root.tid] = Decision.REJECT
                accepted_ids.discard(root.tid)
                continue
            used.update(residual)
            result.updates_applied += len(operations)

        # Everything applied (roots and antecedents) becomes "applied".
        applied_now: Set[TransactionId] = set(used)
        for root in accepted:
            if root.tid in accepted_ids:
                applied_now.update(extensions[root.tid].members)
                result.accepted.append(root.tid)
        state.record_applied(applied_now)
        result.applied = sorted(applied_now, key=state.graph.order_of)

    def rebuild_soft_state(self) -> None:
        """Recompute dirty values and conflict groups from the current
        deferred set without re-deciding anything.

        Used by state reconstruction (:meth:`Participant.rebuild`): the
        deferred transactions' standing must not be re-evaluated against
        an instance that may have moved on since they were deferred —
        that re-evaluation belongs to the next real reconciliation.
        """
        self._update_soft_state(ReconcileResult(recno=self._state.last_recno))

    # ------------------------------------------------------------------
    # Step 7: UpdateSoftState (Figure 5)

    def _update_soft_state(self, result: ReconcileResult) -> None:
        state = self._state
        deferred_extensions: Dict[TransactionId, UpdateExtension] = {}
        for root in state.deferred_roots():
            try:
                deferred_extensions[root.tid] = compute_update_extension(
                    self._schema, state.graph, root, state.applied
                )
            except FlattenError:  # pragma: no cover - defensive
                continue
        dirty: Set = set()
        for extension in deferred_extensions.values():
            dirty.update(extension.touched)
        groups = build_conflict_groups(
            self._schema, state.graph, deferred_extensions
        )
        state.replace_soft_state(dirty, groups)
        result.conflict_groups = [
            (group_id, len(group.options))
            for group_id, group in sorted(groups.items(), key=lambda kv: repr(kv[0]))
        ]
