"""Antecedents, transaction extensions, and update extensions.

Definition 3 of the paper: participant ``i``'s *transaction extension* of
``X``, reconciled in epoch ``e``, is the transitive closure of ``X``'s
antecedents, skipping transactions ``i`` has already accepted.  The
*update extension* is the flattened update footprint of that closure.

Antecedent edges themselves (``ante(X)``: which earlier transaction
inserted or modified-to each value that ``X`` deletes or modifies) are
discovered by the update store at publish time, because only the store sees
the full published history; see :class:`repro.store.base.UpdateStore`.
This module consumes those edges through :class:`TransactionGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ReconciliationError
from repro.model.flatten import flatten_once
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.model.tuples import QualifiedKey
from repro.model.updates import Update


@dataclass(frozen=True)
class RelevantTransaction:
    """A root transaction delivered to a reconciling participant.

    ``priority`` is ``pri_i`` of the root; ``order`` is the transaction's
    global publish index, which totally orders the published history.
    """

    transaction: Transaction
    priority: int
    order: int

    @property
    def tid(self) -> TransactionId:
        """The root transaction's id."""
        return self.transaction.tid


class TransactionGraph:
    """Published transactions plus antecedent edges and publish order.

    The reconciling participant accumulates one of these across its
    lifetime: every transaction it has ever fetched stays available so
    previously deferred transactions can be reconsidered without another
    round trip (the paper's soft-state cache).
    """

    def __init__(self) -> None:
        self._transactions: Dict[TransactionId, Transaction] = {}
        self._antecedents: Dict[TransactionId, Tuple[TransactionId, ...]] = {}
        self._order: Dict[TransactionId, int] = {}

    def add(
        self,
        transaction: Transaction,
        antecedents: Iterable[TransactionId],
        order: int,
    ) -> None:
        """Register a transaction with its direct antecedents and order."""
        tid = transaction.tid
        self._transactions[tid] = transaction
        self._antecedents[tid] = tuple(antecedents)
        self._order[tid] = order

    def merge(self, other: "TransactionGraph") -> None:
        """Absorb every entry of ``other`` (idempotent on duplicates)."""
        self._transactions.update(other._transactions)
        self._antecedents.update(other._antecedents)
        self._order.update(other._order)

    def __contains__(self, tid: TransactionId) -> bool:
        return tid in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def transaction(self, tid: TransactionId) -> Transaction:
        """Return the transaction for ``tid``.

        Raises :class:`ReconciliationError` if it was never registered.
        """
        try:
            return self._transactions[tid]
        except KeyError:
            raise ReconciliationError(
                f"transaction {tid} is referenced but was never fetched"
            ) from None

    def antecedents_of(self, tid: TransactionId) -> Tuple[TransactionId, ...]:
        """Direct antecedents of ``tid`` (empty if none registered)."""
        return self._antecedents.get(tid, ())

    def order_of(self, tid: TransactionId) -> int:
        """Global publish index of ``tid``."""
        try:
            return self._order[tid]
        except KeyError:
            raise ReconciliationError(
                f"transaction {tid} has no recorded publish order"
            ) from None

    def extension(
        self, tid: TransactionId, applied: Set[TransactionId]
    ) -> List[TransactionId]:
        """The transaction extension ``te_i|e(tid)``.

        Transitive closure over antecedents, skipping transactions in
        ``applied`` (already part of the participant's instance), sorted
        by publish order.  The root is always included, even if somehow in
        ``applied`` — re-reconciling an applied root is a caller bug that
        surfaces elsewhere.
        """
        closure: Set[TransactionId] = set()
        stack: List[TransactionId] = [tid]
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            for ante in self.antecedents_of(current):
                if ante not in applied and ante not in closure:
                    stack.append(ante)
        return sorted(closure, key=self.order_of)


@dataclass
class UpdateExtension:
    """The flattened update extension of one root (Section 4.2).

    * ``root`` — the root transaction id;
    * ``members`` — the transaction extension, in publish order;
    * ``operations`` — ``flatten`` of the members' concatenated updates;
    * ``touched`` — every qualified key the raw (unflattened) footprint
      read or wrote, used for dirty-value deferral;
    * ``priority`` — ``pri_i`` of the root.
    """

    root: TransactionId
    members: Tuple[TransactionId, ...]
    operations: Tuple[Update, ...]
    touched: frozenset
    priority: int

    def __post_init__(self) -> None:
        self._members_set = frozenset(self.members)
        self._key_index: Optional[Tuple[Schema, Dict]] = None

    def member_set(self) -> frozenset:
        """The members as a set (for subsumption and sharing tests)."""
        return self._members_set

    def subsumes(self, other: "UpdateExtension") -> bool:
        """True if this extension's members are a superset of ``other``'s."""
        return self.member_set() >= other.member_set()

    def key_index(self, schema: Schema) -> Dict[QualifiedKey, List[Update]]:
        """The operations indexed by every qualified key they touch.

        Memoized on the extension: conflict detection consults the index
        from both ``FindConflicts`` and ``UpdateSoftState``, and an
        extension's operations never change after construction.  Callers
        must not mutate the returned mapping.
        """
        if self._key_index is not None and self._key_index[0] is schema:
            return self._key_index[1]
        index: Dict[QualifiedKey, List[Update]] = {}
        for update in self.operations:
            for key in update.keys_touched(schema):
                index.setdefault(key, []).append(update)
        self._key_index = (schema, index)
        return index


def update_footprint(
    graph: TransactionGraph, members: Sequence[TransactionId]
) -> List[Update]:
    """The paper's ``uf(L)``: concatenated updates of ordered transactions."""
    footprint: List[Update] = []
    for tid in members:
        footprint.extend(graph.transaction(tid).updates)
    return footprint


def compute_update_extension(
    schema: Schema,
    graph: TransactionGraph,
    root: RelevantTransaction,
    applied: Set[TransactionId],
) -> UpdateExtension:
    """Build the flattened update extension of ``root`` for a participant.

    The footprint is traced exactly once: :func:`flatten_once` yields the
    net operations and the touched-key set from a single chain pass.

    Raises :class:`~repro.errors.FlattenError` (propagated) if the chain is
    internally inconsistent — the engine treats that as a rejection.
    """
    members = graph.extension(root.tid, applied)
    footprint = update_footprint(graph, members)
    flat = flatten_once(schema, footprint)
    return UpdateExtension(
        root=root.tid,
        members=tuple(members),
        operations=flat.operations,
        touched=flat.keys_touched,
        priority=root.priority,
    )


@dataclass
class ReconciliationBatch:
    """Everything the update store hands a reconciling participant.

    * ``recno`` — the reconciliation epoch this batch covers up to;
    * ``roots`` — newly relevant fully-trusted transactions with their
      priorities, in publish order;
    * ``graph`` — those transactions plus every antecedent needed to build
      their extensions;
    * ``extensions`` / ``conflicts`` — optionally precomputed by the store
      (*network-centric* reconciliation, Figure 3): flattened update
      extensions per root and the direct-conflict adjacency among them.
      When present they must cover every root, including the
      participant's previously deferred transactions (the store tracks
      those).  The engine then skips its two most expensive phases.

    In *client-centric* mode ``extensions`` may still be populated with
    the store's **context-free** extensions (flattened against an empty
    applied set, computed once per published transaction); the engine
    adopts one only when its member closure is disjoint from the local
    applied set, which is exactly when it equals the local computation.
    ``pair_cache`` (a :class:`repro.core.cache.ConflictCache`, typed
    loosely to avoid an import cycle) is a store-shared memo of
    direct-conflict points between those shipped extension objects —
    pairwise conflicts are a pure function of the two extensions, so one
    participant's comparison serves the whole confederation.
    """

    recno: int
    roots: List[RelevantTransaction] = field(default_factory=list)
    graph: TransactionGraph = field(default_factory=TransactionGraph)
    extensions: Optional[Dict[TransactionId, "UpdateExtension"]] = None
    conflicts: Optional[Dict[TransactionId, set]] = None
    pair_cache: Optional[object] = None
    #: The serving store's declared capability flags (a
    #: :class:`repro.store.registry.StoreCapabilities`, typed loosely to
    #: avoid an import cycle).  The engine consults these — not the
    #: store's type — before adopting shipped extensions or the shared
    #: pair memo; ``None`` (hand-built batches in tests) is permissive.
    capabilities: Optional[object] = None

    def root_ids(self) -> List[TransactionId]:
        """Ids of the batch's root transactions."""
        return [root.tid for root in self.roots]

    @property
    def network_centric(self) -> bool:
        """True when the store precomputed extensions and conflicts."""
        return self.extensions is not None and self.conflicts is not None
