"""Append-only reconciliation (Section 4.1, Definition 2).

In the append-only model every transaction contains only insertions, so
each published transaction can be considered independently: it is accepted
iff no conflicting transaction of equal or higher priority was published in
the same epoch batch, and it does not conflict with anything previously
applied (equivalently, with the current instance).

This is both a baseline for the general algorithm and the semantics the
paper uses to introduce the problem.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import UpdateError
from repro.instance.base import Instance
from repro.model.schema import Schema
from repro.model.transactions import Transaction, TransactionId
from repro.model.updates import Insert, updates_conflict

from repro.core.decisions import Decision, ReconcileResult


def _ensure_append_only(transaction: Transaction) -> None:
    for update in transaction:
        if not isinstance(update, Insert):
            raise UpdateError(
                f"append-only reconciliation got non-insert update {update} "
                f"in {transaction.tid}"
            )


def _transactions_conflict(
    schema: Schema, left: Transaction, right: Transaction
) -> bool:
    return any(
        updates_conflict(schema, lu, ru) for lu in left for ru in right
    )


def reconcile_append_only(
    schema: Schema,
    instance: Instance,
    batch: Sequence[Tuple[Transaction, int]],
    recno: int = 0,
) -> ReconcileResult:
    """Apply one epoch batch of insert-only transactions to ``instance``.

    ``batch`` pairs each transaction with its priority ``pri_i`` for the
    reconciling participant; untrusted transactions (priority 0) are
    rejected outright.  Per Definition 2, a transaction is accepted iff

    * it is trusted,
    * no other transaction in the batch conflicts with it at equal or
      higher priority, and
    * it does not conflict with previously applied state (its inserts are
      compatible with the instance).

    There is no deferral in the append-only model: both sides of an
    equal-priority conflict are rejected.
    """
    for transaction, _priority in batch:
        _ensure_append_only(transaction)

    result = ReconcileResult(recno=recno)
    decisions: Dict[TransactionId, Decision] = {}

    accepted: List[Transaction] = []
    for transaction, priority in batch:
        if priority <= 0:
            decisions[transaction.tid] = Decision.REJECT
            continue
        blocked = False
        for other, other_priority in batch:
            if other.tid == transaction.tid:
                continue
            if other_priority >= priority and _transactions_conflict(
                schema, transaction, other
            ):
                blocked = True
                break
        if blocked:
            decisions[transaction.tid] = Decision.REJECT
            continue
        if not instance.can_apply_all(list(transaction.updates)):
            decisions[transaction.tid] = Decision.REJECT
            continue
        decisions[transaction.tid] = Decision.ACCEPT
        accepted.append(transaction)

    for transaction in accepted:
        # Accepted transactions are mutually conflict-free, but a batch can
        # still contain duplicate inserts of the same row; apply tolerantly.
        if instance.can_apply_all(list(transaction.updates)):
            instance.apply_all(list(transaction.updates))
            result.updates_applied += len(transaction.updates)
            result.accepted.append(transaction.tid)
            result.applied.append(transaction.tid)
        else:  # pragma: no cover - duplicate-row corner
            decisions[transaction.tid] = Decision.REJECT

    result.rejected = [
        tid for tid, verdict in decisions.items() if verdict is Decision.REJECT
    ]
    result.decisions = decisions
    return result
