"""Per-participant reconciliation bookkeeping.

The paper keeps most client state *soft*: it can be reconstructed from the
update store.  :class:`ParticipantState` is that state, held locally by
each reconciling peer:

* ``applied`` — every transaction whose effects are in the local instance;
* ``rejected`` — transactions explicitly rejected (their dependents must
  also be rejected — Definition 5);
* ``deferred`` — transactions awaiting user conflict resolution, with the
  data needed to reconsider them without re-fetching;
* ``dirty_keys`` — keys read or written by deferred transactions; any
  transaction touching one must itself be deferred;
* ``conflict_groups`` — the open conflicts, grouped for resolution;
* ``graph`` — a cache of every transaction (plus antecedent edges) this
  participant has ever fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.model.transactions import TransactionId
from repro.model.tuples import QualifiedKey

from repro.core.conflicts import ConflictGroup
from repro.core.extensions import RelevantTransaction, TransactionGraph


@dataclass
class DeferredEntry:
    """A deferred root transaction plus what is needed to retry it."""

    root: RelevantTransaction
    recno: int  # reconciliation at which it was (last) deferred


class ParticipantState:
    """Mutable reconciliation state of one participant."""

    def __init__(self, participant: int) -> None:
        self.participant = participant
        self.applied: Set[TransactionId] = set()
        #: Monotone counter bumped whenever ``applied`` grows.  The
        #: extension cache keys on it: equal version means the applied set
        #: is unchanged, so every cached extension is still exact (O(1)
        #: validity check instead of comparing sets).
        self.applied_version: int = 0
        self.rejected: Set[TransactionId] = set()
        self.deferred: Dict[TransactionId, DeferredEntry] = {}
        self.dirty_keys: Set[QualifiedKey] = set()
        self.conflict_groups: Dict[Tuple[str, QualifiedKey], ConflictGroup] = {}
        self.graph = TransactionGraph()
        self.last_recno: int = 0

    # ------------------------------------------------------------------
    # Queries

    def is_decided(self, tid: TransactionId) -> bool:
        """True if ``tid`` has a final verdict (applied or rejected)."""
        return tid in self.applied or tid in self.rejected

    def is_deferred(self, tid: TransactionId) -> bool:
        """True if ``tid`` is awaiting conflict resolution."""
        return tid in self.deferred

    def deferred_roots(self) -> List[RelevantTransaction]:
        """The deferred transactions, as roots for reconsideration."""
        entries = sorted(self.deferred.values(), key=lambda e: e.root.order)
        return [entry.root for entry in entries]

    def open_conflicts(self) -> List[ConflictGroup]:
        """The current conflict groups, in a stable order."""
        return [
            self.conflict_groups[group_id]
            for group_id in sorted(self.conflict_groups, key=repr)
        ]

    # ------------------------------------------------------------------
    # Mutation (used by the engine and by conflict resolution)

    def record_applied(self, tids) -> None:
        """Mark transactions as applied.

        Applied is the strongest verdict: the transaction's effects are in
        the instance, so it leaves the deferred set, and a rejection
        recorded for it *as a root proposal* is superseded (its updates
        live on inside a longer accepted chain).
        """
        before = len(self.applied)
        for tid in tids:
            self.applied.add(tid)
            self.deferred.pop(tid, None)
            self.rejected.discard(tid)
        if len(self.applied) != before:
            self.applied_version += 1

    def record_rejected(self, tids) -> None:
        """Mark transactions as rejected; they leave the deferred set."""
        for tid in tids:
            self.rejected.add(tid)
            self.deferred.pop(tid, None)

    def record_deferred(self, root: RelevantTransaction, recno: int) -> None:
        """Park a root transaction for later resolution."""
        self.deferred[root.tid] = DeferredEntry(root=root, recno=recno)

    def replace_soft_state(
        self,
        dirty_keys: Set[QualifiedKey],
        conflict_groups: Dict[Tuple[str, QualifiedKey], ConflictGroup],
    ) -> None:
        """The paper's ``UpdateSoftState``: rebuild dirty values and groups."""
        self.dirty_keys = set(dirty_keys)
        self.conflict_groups = dict(conflict_groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParticipantState(p{self.participant}, "
            f"applied={len(self.applied)}, rejected={len(self.rejected)}, "
            f"deferred={len(self.deferred)}, dirty={len(self.dirty_keys)})"
        )
