"""The reconciliation semantics and algorithms — the paper's contribution.

* :mod:`repro.core.decisions` — accept / reject / defer decisions and the
  result record of one reconciliation;
* :mod:`repro.core.extensions` — antecedents, transaction extensions
  ``te_i|e(X)`` and flattened update extensions (Definitions 3-4);
* :mod:`repro.core.conflicts` — hash-based direct-conflict detection
  between update extensions, conflict groups, and options;
* :mod:`repro.core.cache` — incremental extension and conflict-pair
  caches keyed by applied-set versions (the reconciliation hot path);
* :mod:`repro.core.state` — the reconciling participant's persistent
  bookkeeping (applied / rejected / deferred sets, dirty values);
* :mod:`repro.core.engine` — the client-centric ``ReconcileUpdates``
  algorithm of Figures 4-5;
* :mod:`repro.core.session` — the transport-agnostic reconciliation
  session wrapping the engine (consumes batches, produces decisions;
  zero store/network knowledge);
* :mod:`repro.core.appendonly` — the simpler append-only reconciliation of
  Definition 2;
* :mod:`repro.core.resolution` — user-driven conflict resolution.
"""

from repro.core.appendonly import reconcile_append_only
from repro.core.cache import CacheStats, ConflictCache, ExtensionCache
from repro.core.conflicts import (
    ConflictAnalysis,
    ConflictGroup,
    Option,
    classify_conflict,
)
from repro.core.decisions import Decision, ReconcileResult
from repro.core.engine import Reconciler
from repro.core.extensions import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
)
from repro.core.resolution import Resolution, resolve_conflicts
from repro.core.session import ReconcileSession, SessionOutcome
from repro.core.state import ParticipantState

__all__ = [
    "CacheStats",
    "ConflictAnalysis",
    "ConflictCache",
    "ConflictGroup",
    "Decision",
    "ExtensionCache",
    "Option",
    "ParticipantState",
    "ReconcileResult",
    "ReconcileSession",
    "Reconciler",
    "ReconciliationBatch",
    "RelevantTransaction",
    "Resolution",
    "SessionOutcome",
    "TransactionGraph",
    "classify_conflict",
    "reconcile_append_only",
    "resolve_conflicts",
]
