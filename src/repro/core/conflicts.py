"""Direct-conflict detection between update extensions; conflict groups.

Definition 4: two transactions *directly conflict* iff, after removing the
transactions their extensions share, some update in one flattened footprint
conflicts with some update in the other.

``FindConflicts`` in the paper uses hash-based detection to stay within
O(t^2 + t*u*a).  We do the same: extensions are indexed by the qualified
keys they write or consume, so only extensions sharing a key are compared,
and the pairwise comparison re-flattens only when the extensions actually
share member transactions.

This module also defines :class:`ConflictGroup` and :class:`Option` — the
structures ``UpdateSoftState`` records for deferred transactions so a user
can later resolve each conflict by picking at most one option per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.flatten import flatten
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.model.tuples import QualifiedKey
from repro.model.updates import Delete, Insert, Modify, Update, updates_conflict

from repro.core.extensions import TransactionGraph, UpdateExtension, update_footprint


def classify_conflict(left: Update, right: Update) -> str:
    """A human-readable conflict *type*, used to group conflicts.

    The paper groups conflicts "with the same type that involve the same
    key value" into conflict groups.
    """
    kinds = sorted((_kind(left), _kind(right)))
    return "/".join(kinds)


def _kind(update: Update) -> str:
    if isinstance(update, Insert):
        return "insert"
    if isinstance(update, Delete):
        return "delete"
    return "replace"


def _index_by_key(
    schema: Schema, ops: Sequence[Update]
) -> Dict[QualifiedKey, List[Update]]:
    """Index updates by every qualified key they touch."""
    index: Dict[QualifiedKey, List[Update]] = {}
    for update in ops:
        for key in update.keys_touched(schema):
            index.setdefault(key, []).append(update)
    return index


def _conflict_points(
    schema: Schema,
    left_ops: Sequence[Update],
    right_ops: Sequence[Update],
    left_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
    right_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
) -> List[Tuple[str, QualifiedKey]]:
    """All ``(type, key)`` pairs at which two footprints conflict.

    Updates can only conflict when they touch a shared key, so candidates
    are drawn from the key-index intersection (the paper's "hash
    table-based conflict detection").
    """
    if left_index is None:
        left_index = _index_by_key(schema, left_ops)
    if right_index is None:
        right_index = _index_by_key(schema, right_ops)
    points: List[Tuple[str, QualifiedKey]] = []
    for key in left_index.keys() & right_index.keys():
        for left in left_index[key]:
            for right in right_index[key]:
                if updates_conflict(schema, left, right):
                    point = (classify_conflict(left, right), key)
                    if point not in points:
                        points.append(point)
    return points


def direct_conflict_points(
    schema: Schema,
    graph: TransactionGraph,
    left: UpdateExtension,
    right: UpdateExtension,
    left_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
    right_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
) -> List[Tuple[str, QualifiedKey]]:
    """Definition 4, reporting *where* the extensions conflict.

    Shared member transactions are excluded from both sides before
    comparing; when the extensions share nothing, the precomputed flattened
    operations (and, if given, their key indexes) are compared directly.
    """
    shared = left.member_set() & right.member_set()
    if not shared:
        return _conflict_points(
            schema, left.operations, right.operations, left_index, right_index
        )
    left_members = [tid for tid in left.members if tid not in shared]
    right_members = [tid for tid in right.members if tid not in shared]
    if not left_members or not right_members:
        return []
    left_ops = flatten(schema, update_footprint(graph, left_members))
    right_ops = flatten(schema, update_footprint(graph, right_members))
    return _conflict_points(schema, left_ops, right_ops)


def directly_conflict(
    schema: Schema,
    graph: TransactionGraph,
    left: UpdateExtension,
    right: UpdateExtension,
) -> bool:
    """True if the two extensions directly conflict (Definition 4)."""
    return bool(direct_conflict_points(schema, graph, left, right))


def find_conflicts(
    schema: Schema,
    graph: TransactionGraph,
    extensions: Dict[TransactionId, UpdateExtension],
) -> Dict[TransactionId, Set[TransactionId]]:
    """The paper's ``FindConflicts``: pairwise direct conflicts.

    Returns a symmetric adjacency map.  Pairs where one extension subsumes
    the other are skipped (Figure 5, FindConflicts line 4).  A key index
    over the flattened operations keeps the common case near-linear.
    """
    conflicts: Dict[TransactionId, Set[TransactionId]] = {
        tid: set() for tid in extensions
    }

    indexes: Dict[TransactionId, Dict[QualifiedKey, List[Update]]] = {
        tid: _index_by_key(schema, extension.operations)
        for tid, extension in extensions.items()
    }
    by_key: Dict[QualifiedKey, List[TransactionId]] = {}
    for tid, index in indexes.items():
        for key in index:
            by_key.setdefault(key, []).append(tid)

    # A dict used as an insertion-ordered set keeps iteration deterministic
    # without a global sort over all candidate pairs.
    candidate_pairs: Dict[Tuple[TransactionId, TransactionId], None] = {}
    for tids in by_key.values():
        for i, left in enumerate(tids):
            for right in tids[i + 1 :]:
                pair = (left, right) if left < right else (right, left)
                candidate_pairs[pair] = None

    for left_tid, right_tid in candidate_pairs:
        left, right = extensions[left_tid], extensions[right_tid]
        if left.subsumes(right) or right.subsumes(left):
            continue
        points = direct_conflict_points(
            schema,
            graph,
            left,
            right,
            indexes[left_tid],
            indexes[right_tid],
        )
        if points:
            conflicts[left_tid].add(right_tid)
            conflicts[right_tid].add(left_tid)
    return conflicts


# ----------------------------------------------------------------------
# Conflict groups and options (deferred-transaction bookkeeping)


@dataclass
class Option:
    """Transactions within a conflict group that make the same modification.

    Accepting an option means accepting all of its transactions (they are
    mutually compatible at the conflicting key); the other options' sole
    transactions are rejected.  ``effect`` describes the modification: the
    row written, or None for a deletion.
    """

    transactions: Tuple[TransactionId, ...]
    effect: Optional[Tuple]

    def describe(self) -> str:
        """Human-readable description for resolution UIs."""
        txns = ", ".join(str(t) for t in self.transactions)
        if self.effect is None:
            return f"delete the row [{txns}]"
        return f"set row to {self.effect!r} [{txns}]"


@dataclass
class ConflictGroup:
    """Conflicts of one type at one key value (Section 5, "conflict groups").

    At most one option may be accepted when the group is resolved.
    """

    kind: str
    key: QualifiedKey
    options: List[Option] = field(default_factory=list)

    @property
    def group_id(self) -> Tuple[str, QualifiedKey]:
        """The ``(type, value)`` identifier the paper indexes groups by."""
        return (self.kind, self.key)

    def transactions(self) -> List[TransactionId]:
        """All transactions involved in this group."""
        tids: List[TransactionId] = []
        for option in self.options:
            tids.extend(option.transactions)
        return tids

    def describe(self) -> str:
        """Human-readable description for resolution UIs."""
        lines = [f"{self.kind} conflict at {self.key[0]}{self.key[1]!r}:"]
        for index, option in enumerate(self.options):
            lines.append(f"  [{index}] {option.describe()}")
        return "\n".join(lines)


def _effect_at_key(
    schema: Schema, extension: UpdateExtension, key: QualifiedKey
) -> Optional[Tuple]:
    """What an extension leaves at ``key``: the written row or None.

    Used to decide whether two deferred transactions belong to the same
    option (they "make the same modification to the key value").
    """
    for update in extension.operations:
        written = update.written_row()
        if written is not None:
            rel = schema.relation(update.relation)
            if (update.relation, rel.key_of(written)) == key:
                return written
    return None


def build_conflict_groups(
    schema: Schema,
    graph: TransactionGraph,
    deferred: Dict[TransactionId, UpdateExtension],
) -> Dict[Tuple[str, QualifiedKey], ConflictGroup]:
    """The grouping step of ``UpdateSoftState`` (Figure 5, lines 7-16).

    Finds conflicts among the deferred extensions, groups them by
    ``(type, key)``, and combines compatible transactions (same effect at
    the key) into shared options.
    """
    adjacency = find_conflicts(schema, graph, deferred)
    members: Dict[Tuple[str, QualifiedKey], Set[TransactionId]] = {}
    for tid, neighbours in adjacency.items():
        for other in neighbours:
            if other < tid:
                continue  # handle each unordered pair once
            points = direct_conflict_points(
                schema, graph, deferred[tid], deferred[other]
            )
            for point in points:
                members.setdefault(point, set()).update((tid, other))

    groups: Dict[Tuple[str, QualifiedKey], ConflictGroup] = {}
    for (kind, key), tids in members.items():
        by_effect: Dict[object, List[TransactionId]] = {}
        for tid in sorted(tids):
            effect = _effect_at_key(schema, deferred[tid], key)
            by_effect.setdefault(effect, []).append(tid)
        options = [
            Option(transactions=tuple(tids_for_effect), effect=effect)
            for effect, tids_for_effect in sorted(
                by_effect.items(), key=lambda item: repr(item[0])
            )
        ]
        groups[(kind, key)] = ConflictGroup(kind=kind, key=key, options=options)
    return groups
