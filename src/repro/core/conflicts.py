"""Direct-conflict detection between update extensions; conflict groups.

Definition 4: two transactions *directly conflict* iff, after removing the
transactions their extensions share, some update in one flattened footprint
conflicts with some update in the other.

``FindConflicts`` in the paper uses hash-based detection to stay within
O(t^2 + t*u*a).  We do the same: extensions are indexed by the qualified
keys they write or consume, so only extensions sharing a key are compared,
and the pairwise comparison re-flattens only when the extensions actually
share member transactions.

This module also defines :class:`ConflictGroup` and :class:`Option` — the
structures ``UpdateSoftState`` records for deferred transactions so a user
can later resolve each conflict by picking at most one option per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.flatten import flatten
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.model.tuples import QualifiedKey
from repro.model.updates import Delete, Insert, Modify, Update, updates_conflict

from repro.core.cache import CacheStats, ConflictCache
from repro.core.extensions import TransactionGraph, UpdateExtension, update_footprint


def classify_conflict(left: Update, right: Update) -> str:
    """A human-readable conflict *type*, used to group conflicts.

    The paper groups conflicts "with the same type that involve the same
    key value" into conflict groups.
    """
    kinds = sorted((_kind(left), _kind(right)))
    return "/".join(kinds)


def _kind(update: Update) -> str:
    if isinstance(update, Insert):
        return "insert"
    if isinstance(update, Delete):
        return "delete"
    return "replace"


def _index_by_key(
    schema: Schema, ops: Sequence[Update]
) -> Dict[QualifiedKey, List[Update]]:
    """Index updates by every qualified key they touch."""
    index: Dict[QualifiedKey, List[Update]] = {}
    for update in ops:
        for key in update.keys_touched(schema):
            index.setdefault(key, []).append(update)
    return index


def _conflict_points(
    schema: Schema,
    left_ops: Sequence[Update],
    right_ops: Sequence[Update],
    left_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
    right_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
) -> List[Tuple[str, QualifiedKey]]:
    """All ``(type, key)`` pairs at which two footprints conflict.

    Updates can only conflict when they touch a shared key, so candidates
    are drawn from the key-index intersection (the paper's "hash
    table-based conflict detection").
    """
    if left_index is None:
        left_index = _index_by_key(schema, left_ops)
    if right_index is None:
        right_index = _index_by_key(schema, right_ops)
    # Probe the smaller index into the larger one instead of materialising
    # the key intersection; most footprints share at most one key.
    if len(left_index) > len(right_index):
        left_index, right_index = right_index, left_index
    # Dict-as-set: O(1) dedup while preserving first-seen order.
    points: Dict[Tuple[str, QualifiedKey], None] = {}
    for key, left_at_key in left_index.items():
        right_at_key = right_index.get(key)
        if right_at_key is None:
            continue
        for left in left_at_key:
            for right in right_at_key:
                if updates_conflict(schema, left, right):
                    points[(classify_conflict(left, right), key)] = None
    return list(points)


def direct_conflict_points(
    schema: Schema,
    graph: TransactionGraph,
    left: UpdateExtension,
    right: UpdateExtension,
    left_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
    right_index: Optional[Dict[QualifiedKey, List[Update]]] = None,
) -> List[Tuple[str, QualifiedKey]]:
    """Definition 4, reporting *where* the extensions conflict.

    Shared member transactions are excluded from both sides before
    comparing; when the extensions share nothing, the precomputed flattened
    operations (and, if given, their key indexes) are compared directly.
    """
    left_set = left.member_set()
    right_set = right.member_set()
    if left_set.isdisjoint(right_set):  # common case: no allocation
        if left_index is None:
            left_index = left.key_index(schema)
        if right_index is None:
            right_index = right.key_index(schema)
        return _conflict_points(
            schema, left.operations, right.operations, left_index, right_index
        )
    shared = left_set & right_set
    left_members = [tid for tid in left.members if tid not in shared]
    right_members = [tid for tid in right.members if tid not in shared]
    if not left_members or not right_members:
        return []
    left_ops = flatten(schema, update_footprint(graph, left_members))
    right_ops = flatten(schema, update_footprint(graph, right_members))
    return _conflict_points(schema, left_ops, right_ops)


def directly_conflict(
    schema: Schema,
    graph: TransactionGraph,
    left: UpdateExtension,
    right: UpdateExtension,
) -> bool:
    """True if the two extensions directly conflict (Definition 4)."""
    return bool(direct_conflict_points(schema, graph, left, right))


@dataclass
class ConflictAnalysis:
    """What ``FindConflicts`` learned about a set of extensions.

    * ``adjacency`` — the symmetric direct-conflict map the greedy
      ``DoGroup`` phase consumes;
    * ``points`` — per conflicting (unordered, lower-tid-first) pair, the
      ``(type, key)`` points at which the pair conflicts.  Conflict-group
      construction consumes these directly instead of re-running
      :func:`direct_conflict_points` for every adjacent pair.
    """

    adjacency: Dict[TransactionId, Set[TransactionId]]
    points: Dict[
        Tuple[TransactionId, TransactionId],
        Tuple[Tuple[str, QualifiedKey], ...],
    ]


def find_conflicts(
    schema: Schema,
    graph: TransactionGraph,
    extensions: Dict[TransactionId, UpdateExtension],
    cache: Optional["ConflictCache"] = None,
) -> ConflictAnalysis:
    """The paper's ``FindConflicts``: pairwise direct conflicts.

    Returns the symmetric adjacency map together with the conflict points
    of every conflicting pair (see :class:`ConflictAnalysis`).  Pairs
    where one extension subsumes the other are skipped (Figure 5,
    FindConflicts line 4).  A key index over the flattened operations
    keeps the common case near-linear, and a
    :class:`~repro.core.cache.ConflictCache` (when provided) skips the
    pairwise comparison entirely for pairs whose extensions are unchanged
    since the last call — including non-conflicting pairs.
    """
    conflicts: Dict[TransactionId, Set[TransactionId]] = {
        tid: set() for tid in extensions
    }
    points_by_pair: Dict[
        Tuple[TransactionId, TransactionId],
        Tuple[Tuple[str, QualifiedKey], ...],
    ] = {}

    by_key: Dict[QualifiedKey, List[TransactionId]] = {}
    for tid, extension in extensions.items():
        for key in extension.key_index(schema):
            by_key.setdefault(key, []).append(tid)

    # A dict used as an insertion-ordered set keeps iteration deterministic
    # without a global sort over all candidate pairs.
    candidate_pairs: Dict[Tuple[TransactionId, TransactionId], None] = {}
    for tids in by_key.values():
        for i, left in enumerate(tids):
            for right in tids[i + 1 :]:
                pair = (left, right) if left < right else (right, left)
                candidate_pairs[pair] = None

    for pair in candidate_pairs:
        left_tid, right_tid = pair
        left, right = extensions[left_tid], extensions[right_tid]
        if left.subsumes(right) or right.subsumes(left):
            continue
        points: Optional[Tuple] = None
        if cache is not None:
            points = cache.lookup(pair, left, right)
        if points is None:
            points = tuple(
                direct_conflict_points(
                    schema,
                    graph,
                    left,
                    right,
                    left.key_index(schema),
                    right.key_index(schema),
                )
            )
            if cache is not None:
                cache.store(pair, left, right, points)
        if points:
            conflicts[left_tid].add(right_tid)
            conflicts[right_tid].add(left_tid)
            points_by_pair[pair] = points
    return ConflictAnalysis(adjacency=conflicts, points=points_by_pair)


class IncrementalConflictIndex:
    """``FindConflicts`` maintained incrementally across epochs.

    The engine's extension set evolves slowly: previously deferred roots
    keep their (cached) extension objects, decided roots leave, and new
    roots arrive.  Conflicts are a pairwise property of two extensions,
    so the analysis of the new set equals the previous analysis minus
    pairs involving departed/changed extensions plus fresh comparisons
    for pairs involving added/changed ones.  This index stores the
    current analysis together with a key → roots map and applies exactly
    that delta on :meth:`update` — the all-pairs candidate scan of
    :func:`find_conflicts` is paid only for what changed, not per epoch.

    Extensions are tracked by object identity (the extension cache
    returns the same object while an entry stays valid), so a recomputed
    extension is automatically treated as removed + added.

    ``enabled=False`` degrades to a stateless full :func:`find_conflicts`
    per call (the uncached baseline).  ``stats.pair_misses`` counts
    pairwise comparisons actually performed.
    """

    def __init__(self, enabled: bool = True, stats=None) -> None:
        self.enabled = enabled
        self.stats = stats if stats is not None else CacheStats()
        self._extensions: Dict[TransactionId, UpdateExtension] = {}
        self._by_key: Dict[QualifiedKey, Dict[TransactionId, None]] = {}
        self._adjacency: Dict[TransactionId, Set[TransactionId]] = {}
        self._points: Dict[
            Tuple[TransactionId, TransactionId],
            Tuple[Tuple[str, QualifiedKey], ...],
        ] = {}

    def __len__(self) -> int:
        return len(self._extensions)

    def update(
        self,
        schema: Schema,
        graph: TransactionGraph,
        extensions: Dict[TransactionId, UpdateExtension],
        shared: Optional["ConflictCache"] = None,
    ) -> ConflictAnalysis:
        """Bring the index to ``extensions`` and return its analysis.

        The result equals ``find_conflicts(schema, graph, extensions)``
        but is a *live view* of the index (no per-epoch copying): it is
        valid until the next :meth:`update` or :meth:`clear`.

        ``shared`` is an optional cross-participant
        :class:`~repro.core.cache.ConflictCache` (shipped by the store
        alongside context-free extensions): pairwise points are a pure
        function of the two extension objects, so a pair another
        participant already compared — validated by object identity on
        both sides — is reused instead of recomputed.
        """
        if not self.enabled:
            return find_conflicts(schema, graph, extensions)
        removed = [
            tid
            for tid, extension in self._extensions.items()
            if extensions.get(tid) is not extension
        ]
        added = [
            tid
            for tid, extension in extensions.items()
            if self._extensions.get(tid) is not extension
        ]
        for tid in removed:
            self._drop(schema, tid)
        for tid in added:
            self._add(schema, graph, tid, extensions[tid], shared)
        return ConflictAnalysis(
            adjacency=self._adjacency, points=self._points
        )

    def _drop(self, schema: Schema, tid: TransactionId) -> None:
        extension = self._extensions.pop(tid)
        for key in extension.key_index(schema):
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.pop(tid, None)
                if not bucket:
                    del self._by_key[key]
        for other in self._adjacency.pop(tid, ()):  # symmetric edges
            self._adjacency[other].discard(tid)
            del self._points[ConflictCache.pair_key(tid, other)]

    def _add(
        self,
        schema: Schema,
        graph: TransactionGraph,
        tid: TransactionId,
        extension: UpdateExtension,
        shared: Optional["ConflictCache"] = None,
    ) -> None:
        self._extensions[tid] = extension
        neighbours = self._adjacency[tid] = set()
        # Partners drawn from the key buckets — the same hash-based
        # candidate generation as find_conflicts, restricted to the one
        # new extension (dict-as-set keeps the order deterministic).
        partners: Dict[TransactionId, None] = {}
        keys = extension.key_index(schema)
        for key in keys:
            bucket = self._by_key.get(key)
            if bucket is not None:
                partners.update(bucket)
        operations = extension.operations
        members = extension.member_set()
        for other in partners:
            other_extension = self._extensions[other]
            if extension.subsumes(other_extension) or other_extension.subsumes(
                extension
            ):
                continue
            pair = ConflictCache.pair_key(tid, other)
            points: Optional[Sequence] = None
            if shared is not None:
                points = shared.lookup(pair, extension, other_extension)
                if points is not None:
                    self.stats.pair_hits += 1
            if points is None:
                self.stats.pair_misses += 1
                other_operations = other_extension.operations
                if (
                    len(operations) == 1
                    and len(other_operations) == 1
                    and members.isdisjoint(other_extension.member_set())
                ):
                    # Dominant case for fine-grained workloads: two
                    # single-update footprints with nothing shared.  One
                    # predicate call decides the pair; a conflict holds
                    # at every key the two updates share.
                    left, right = operations[0], other_operations[0]
                    if updates_conflict(schema, left, right):
                        kind = classify_conflict(left, right)
                        other_keys = other_extension.key_index(schema)
                        points = [
                            (kind, key) for key in keys if key in other_keys
                        ]
                    else:
                        points = []
                else:
                    points = direct_conflict_points(
                        schema, graph, extension, other_extension
                    )
                if shared is not None:
                    shared.store(pair, extension, other_extension, points)
            if points:
                self._points[pair] = tuple(points)
                neighbours.add(other)
                self._adjacency[other].add(tid)
        for key in keys:
            self._by_key.setdefault(key, {})[tid] = None

    def clear(self) -> None:
        """Drop all state (used when a caller switches extension sets)."""
        self._extensions.clear()
        self._by_key.clear()
        self._adjacency.clear()
        self._points.clear()


# ----------------------------------------------------------------------
# Conflict groups and options (deferred-transaction bookkeeping)


@dataclass
class Option:
    """Transactions within a conflict group that make the same modification.

    Accepting an option means accepting all of its transactions (they are
    mutually compatible at the conflicting key); the other options' sole
    transactions are rejected.  ``effect`` describes the modification: the
    row written, or None for a deletion.
    """

    transactions: Tuple[TransactionId, ...]
    effect: Optional[Tuple]

    def describe(self) -> str:
        """Human-readable description for resolution UIs."""
        txns = ", ".join(str(t) for t in self.transactions)
        if self.effect is None:
            return f"delete the row [{txns}]"
        return f"set row to {self.effect!r} [{txns}]"


@dataclass
class ConflictGroup:
    """Conflicts of one type at one key value (Section 5, "conflict groups").

    At most one option may be accepted when the group is resolved.
    """

    kind: str
    key: QualifiedKey
    options: List[Option] = field(default_factory=list)

    @property
    def group_id(self) -> Tuple[str, QualifiedKey]:
        """The ``(type, value)`` identifier the paper indexes groups by."""
        return (self.kind, self.key)

    def transactions(self) -> List[TransactionId]:
        """All transactions involved in this group."""
        tids: List[TransactionId] = []
        for option in self.options:
            tids.extend(option.transactions)
        return tids

    def describe(self) -> str:
        """Human-readable description for resolution UIs."""
        lines = [f"{self.kind} conflict at {self.key[0]}{self.key[1]!r}:"]
        for index, option in enumerate(self.options):
            lines.append(f"  [{index}] {option.describe()}")
        return "\n".join(lines)


def _effect_at_key(
    schema: Schema, extension: UpdateExtension, key: QualifiedKey
) -> Optional[Tuple]:
    """What an extension leaves at ``key``: the written row or None.

    This is the ``effect`` surfaced on :class:`Option` for resolution
    UIs.  It is *not* sufficient to decide option sharing — see
    :func:`_option_signature`.
    """
    for update in extension.operations:
        written = update.written_row()
        if written is not None:
            rel = schema.relation(update.relation)
            if (update.relation, rel.key_of(written)) == key:
                return written
    return None


def _option_signature(
    schema: Schema, extension: UpdateExtension, key: QualifiedKey
) -> Tuple:
    """The partition signature for option sharing at ``key``.

    Two deferred transactions may share an option only when they "make
    the same modification to the key value".  The written row alone is
    not enough: every absence would collapse to ``None``, merging e.g.
    deletions of *different row versions* of the key — which are
    mutually conflicting (only one antecedent exists, so at most one
    can be accepted) — into a single option, leaving a "conflict group"
    with no alternatives to choose between.  The signature therefore
    records the written row, or exactly which row the extension removes
    from the key (and, for a replacement moving the row away, where it
    goes).
    """
    for update in extension.operations:
        written = update.written_row()
        if written is not None:
            rel = schema.relation(update.relation)
            if (update.relation, rel.key_of(written)) == key:
                return ("write", written)
    for update in extension.operations:
        if isinstance(update, Delete):
            rel = schema.relation(update.relation)
            if (update.relation, rel.key_of(update.row)) == key:
                return ("delete", update.row)
        elif isinstance(update, Modify):
            rel = schema.relation(update.relation)
            if (update.relation, rel.key_of(update.old_row)) == key:
                return ("replace", update.old_row, update.new_row)
    return ("none",)


def build_conflict_groups(
    schema: Schema,
    graph: TransactionGraph,
    deferred: Dict[TransactionId, UpdateExtension],
    cache: Optional["ConflictCache"] = None,
    analysis: Optional[ConflictAnalysis] = None,
) -> Dict[Tuple[str, QualifiedKey], ConflictGroup]:
    """The grouping step of ``UpdateSoftState`` (Figure 5, lines 7-16).

    Finds conflicts among the deferred extensions, groups them by
    ``(type, key)``, and combines compatible transactions (same
    modification at the key — see :func:`_option_signature`) into shared
    options.  The conflict *points* recorded by
    :func:`find_conflicts` are consumed directly — the seed implementation
    re-ran :func:`direct_conflict_points` for every adjacent pair here.
    ``analysis`` lets a caller that already analysed (a superset of) the
    deferred extensions this epoch pass the result in.
    """
    if analysis is None:
        analysis = find_conflicts(schema, graph, deferred, cache=cache)
    members: Dict[Tuple[str, QualifiedKey], Set[TransactionId]] = {}
    for (tid, other), points in analysis.points.items():
        for point in points:
            members.setdefault(point, set()).update((tid, other))

    groups: Dict[Tuple[str, QualifiedKey], ConflictGroup] = {}
    for (kind, key), tids in members.items():
        by_signature: Dict[Tuple, List[TransactionId]] = {}
        for tid in sorted(tids):
            signature = _option_signature(schema, deferred[tid], key)
            by_signature.setdefault(signature, []).append(tid)
        options = [
            Option(
                transactions=tuple(tids_for_signature),
                effect=signature[1] if signature[0] == "write" else None,
            )
            for signature, tids_for_signature in sorted(
                by_signature.items(), key=lambda item: repr(item[0])
            )
        ]
        groups[(kind, key)] = ConflictGroup(kind=kind, key=key, options=options)
    return groups
