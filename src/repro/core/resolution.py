"""User-driven conflict resolution (Sections 4.2 and 5.1).

Once transactions have been deferred into conflict groups, a user resolves
a group by selecting at most one :class:`~repro.core.conflicts.Option`.
Per the paper: "the user specifies some number of transactions to remove
from the deferred set and reject.  The remaining transactions are removed
from the deferred set and treated as recently published transactions, and
the reconciliation solution is re-run to apply those that no longer
conflict."

:func:`resolve_conflicts` performs exactly that: it marks the losing
options' transactions as rejected — *except* transactions that are members
of a chosen transaction's extension, which must stay acceptable or the
winner itself would become rejectable — and then re-runs
``ReconcileUpdates`` with an empty batch so the surviving deferred
transactions are reconsidered immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import ResolutionError
from repro.model.transactions import TransactionId
from repro.model.tuples import QualifiedKey

from repro.core.decisions import ReconcileResult
from repro.core.engine import Reconciler
from repro.core.extensions import ReconciliationBatch


@dataclass(frozen=True)
class Resolution:
    """One user decision: for conflict group ``group_id``, accept the
    option at ``chosen_option`` (or reject every option with ``None``)."""

    group_id: Tuple[str, QualifiedKey]
    chosen_option: Optional[int]


def resolve_conflicts(
    reconciler: Reconciler,
    resolutions: Sequence[Resolution],
    recno: Optional[int] = None,
) -> ReconcileResult:
    """Resolve conflict groups and re-run reconciliation.

    Raises :class:`ResolutionError` if a resolution references an unknown
    group or option index.  Returns the result of the follow-up
    ``ReconcileUpdates`` run (which carries the newly accepted and rejected
    transactions).
    """
    state = reconciler.state
    to_reject: Set[TransactionId] = set()
    keep: Set[TransactionId] = set()

    for resolution in resolutions:
        group = state.conflict_groups.get(resolution.group_id)
        if group is None:
            raise ResolutionError(
                f"unknown conflict group {resolution.group_id!r}"
            )
        if resolution.chosen_option is not None and not (
            0 <= resolution.chosen_option < len(group.options)
        ):
            raise ResolutionError(
                f"conflict group {resolution.group_id!r} has no option "
                f"{resolution.chosen_option}"
            )
        for index, option in enumerate(group.options):
            if index == resolution.chosen_option:
                keep.update(option.transactions)
                # The winners' antecedents must stay acceptable too.
                for tid in option.transactions:
                    entry = state.deferred.get(tid)
                    if entry is None:
                        continue
                    keep.update(
                        state.graph.extension(tid, state.applied)
                    )
            else:
                to_reject.update(option.transactions)

    to_reject -= keep
    state.record_rejected(to_reject)

    # Re-run reconciliation with no new transactions: the remaining
    # deferred transactions are reconsidered, and those whose conflicts
    # are resolved get accepted (or rejected, if they depended on a loser).
    batch = ReconciliationBatch(
        recno=state.last_recno if recno is None else recno
    )
    result = reconciler.reconcile(batch)
    # The user's explicit rejections are decisions too; surface them so
    # callers (e.g. Participant.resolve) can report them to the store.
    for tid in sorted(to_reject):
        if tid not in result.rejected:
            result.rejected.append(tid)
    return result


def pending_resolutions(reconciler: Reconciler) -> List[str]:
    """Human-readable descriptions of every open conflict group."""
    return [
        group.describe() for group in reconciler.state.open_conflicts()
    ]
