"""Decision values and the result record of one reconciliation run."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.transactions import TransactionId

from repro.core.cache import CacheStats


class Decision(enum.Enum):
    """The verdict ``ReconcileUpdates`` reaches for one root transaction."""

    ACCEPT = "accept"
    REJECT = "reject"
    DEFER = "defer"

    def __str__(self) -> str:
        return self.value


@dataclass
class ReconcileResult:
    """Everything one call to :meth:`Reconciler.reconcile` decided.

    ``accepted`` / ``rejected`` / ``deferred`` list the *root* transactions
    by decision; ``applied`` lists every transaction whose effects reached
    the instance (roots plus antecedents applied through extensions);
    ``updates_applied`` counts individual updates written to the instance;
    ``conflict_groups`` summarises the open conflicts after this run, as
    ``(group key, option count)`` pairs — full details live on the
    participant state; ``cache_stats`` is the extension/conflict-cache
    counter delta for this run (always populated by the engine — an
    uncached run simply reports every extension as a miss; None only on
    results that never went through :meth:`Reconciler.reconcile`).
    """

    recno: int
    accepted: List[TransactionId] = field(default_factory=list)
    rejected: List[TransactionId] = field(default_factory=list)
    deferred: List[TransactionId] = field(default_factory=list)
    applied: List[TransactionId] = field(default_factory=list)
    updates_applied: int = 0
    decisions: Dict[TransactionId, Decision] = field(default_factory=dict)
    conflict_groups: List[Tuple[object, int]] = field(default_factory=list)
    cache_stats: Optional[CacheStats] = None

    @property
    def decided(self) -> int:
        """Number of root transactions that got a final accept/reject."""
        return len(self.accepted) + len(self.rejected)

    def summary(self) -> str:
        """One-line human-readable summary, used by the examples."""
        return (
            f"recno={self.recno} accepted={len(self.accepted)} "
            f"rejected={len(self.rejected)} deferred={len(self.deferred)} "
            f"updates_applied={self.updates_applied}"
        )
