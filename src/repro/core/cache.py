"""Incremental caches for the reconciliation hot path.

The paper's complexity argument (Section 4.3) assumes hash-based conflict
detection and soft-state reuse keep ``ReconcileUpdates`` within
O(t² + t·u·a).  The seed implementation met the bound per call but paid it
again on every epoch: each deferred transaction's update extension was
re-derived from scratch every reconciliation, and every extension pair was
re-compared even when neither side had changed.  This module makes that
work *incremental* — pay once per newly published transaction, not once
per epoch per participant:

* :class:`ExtensionCache` memoizes ``root → UpdateExtension`` against a
  monotone version counter on the participant's applied set
  (:attr:`~repro.core.state.ParticipantState.applied_version`).  A version
  match is an O(1) hit.  On a version mismatch the entry is *revalidated*
  in O(|members|): the transaction extension is the antecedent closure
  stopped at applied transactions, and applied sets only grow, so a cached
  closure none of whose members became applied is still exact (any member
  the larger applied set would remove must itself appear in
  ``members ∩ applied``).  Only entries that fail revalidation are
  recomputed.

* :class:`ConflictCache` memoizes the direct-conflict points of extension
  *pairs*, keyed by the identity of the two extension objects.  Extensions
  are immutable and :class:`ExtensionCache` returns the same object while
  an entry stays valid, so identity equality is exact.  Negative results
  (no conflict) are cached too — they are the overwhelmingly common case.

* :class:`CacheStats` counts hits, misses, and revalidations; the engine
  exposes a per-reconciliation snapshot on
  :attr:`~repro.core.decisions.ReconcileResult.cache_stats`.

:class:`ExtensionCache` instances are per-participant (client-side on
the :class:`~repro.core.engine.Reconciler`, store-side per registered
peer in network-centric mode) and are pruned to the still-deferred roots
after each reconciliation, so they hold O(deferred) entries, not
O(history).  :class:`ConflictCache` is used two ways: per participant by
the network-centric store mixin, and as the *confederation-shared* pair
memo the store ships on every batch (identity validation makes sharing
across participants exact — see
:meth:`repro.store.network_centric.NetworkCentricMixin.shared_pair_cache`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.model.schema import Schema
from repro.model.transactions import TransactionId

from repro.core.extensions import (
    RelevantTransaction,
    TransactionGraph,
    UpdateExtension,
    compute_update_extension,
)

#: An unordered extension pair, stored with the lower tid first.
PairKey = Tuple[TransactionId, TransactionId]


@dataclass
class CacheStats:
    """Counters for one cache (or a snapshot/delta of them).

    ``hits`` are O(1) version matches; ``revalidations`` are O(|members|)
    reuses after the applied set grew; ``shipped`` counts store-computed
    extensions adopted instead of computing locally (context-free ones
    proven disjoint from the applied set, and the per-participant
    extensions of a fully network-centric batch);
    ``misses`` are full recomputations (including cold entries);
    ``pair_hits`` / ``pair_misses`` count conflict-pair comparisons served
    from / added to the pair cache (or performed by the incremental
    conflict index).
    """

    hits: int = 0
    misses: int = 0
    revalidations: int = 0
    shipped: int = 0
    pair_hits: int = 0
    pair_misses: int = 0

    @property
    def reuses(self) -> int:
        """Extension lookups that avoided a local recomputation."""
        return self.hits + self.revalidations + self.shipped

    @property
    def hit_rate(self) -> float:
        """Fraction of extension lookups served without recomputation."""
        total = self.reuses + self.misses
        return self.reuses / total if total else 0.0

    @property
    def pair_hit_rate(self) -> float:
        """Fraction of pair comparisons served from the cache."""
        total = self.pair_hits + self.pair_misses
        return self.pair_hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        """An immutable-by-convention copy of the current counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            revalidations=self.revalidations,
            shipped=self.shipped,
            pair_hits=self.pair_hits,
            pair_misses=self.pair_misses,
        )

    def add(self, other: "CacheStats") -> None:
        """Accumulate ``other``'s counters into this one (aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.revalidations += other.revalidations
        self.shipped += other.shipped
        self.pair_hits += other.pair_hits
        self.pair_misses += other.pair_misses

    def minus(self, other: "CacheStats") -> "CacheStats":
        """The counter delta since ``other`` (an earlier snapshot)."""
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            revalidations=self.revalidations - other.revalidations,
            shipped=self.shipped - other.shipped,
            pair_hits=self.pair_hits - other.pair_hits,
            pair_misses=self.pair_misses - other.pair_misses,
        )

    def as_dict(self) -> Dict[str, float]:
        """A JSON-friendly view (used by the perf benchmark)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "shipped": self.shipped,
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "hit_rate": self.hit_rate,
            "pair_hit_rate": self.pair_hit_rate,
        }


class ExtensionCache:
    """Memoizes update extensions against an applied-set version counter.

    ``enabled=False`` turns every lookup into a recomputation (the
    benchmark's uncached baseline) while keeping the interface identical.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats = CacheStats()
        self._entries: Dict[TransactionId, Tuple[int, UpdateExtension]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self,
        tid: TransactionId,
        version: int,
        applied: Set[TransactionId],
        priority: Optional[int] = None,
    ) -> Optional[UpdateExtension]:
        """The cached extension for ``tid`` if still valid, else None.

        A version match hits outright.  Otherwise the entry is revalidated:
        if none of its members became applied, the closure is unchanged and
        the entry is refreshed to the current version (see module
        docstring).  ``priority`` guards against trust-policy drift: a
        cached extension carrying a different root priority is discarded.
        """
        if not self.enabled:
            return None
        entry = self._entries.get(tid)
        if entry is None:
            return None
        cached_version, extension = entry
        if priority is not None and extension.priority != priority:
            return None
        if cached_version == version:
            self.stats.hits += 1
            return extension
        if not (extension.member_set() & applied):
            self._entries[tid] = (version, extension)
            self.stats.revalidations += 1
            return extension
        return None

    def store(
        self, tid: TransactionId, version: int, extension: UpdateExtension
    ) -> None:
        """Record ``extension`` as valid at applied-set ``version``."""
        if self.enabled:
            self._entries[tid] = (version, extension)

    def get_or_compute(
        self,
        schema: Schema,
        graph: TransactionGraph,
        root: RelevantTransaction,
        applied: Set[TransactionId],
        version: int,
    ) -> UpdateExtension:
        """The root's extension, from cache when valid.

        Propagates :class:`~repro.errors.FlattenError` from the underlying
        computation (the engine rejects such roots); failures are not
        cached — a root that fails to flatten is rejected and never
        re-requested.
        """
        extension = self.lookup(root.tid, version, applied, root.priority)
        if extension is not None:
            return extension
        self.stats.misses += 1
        extension = compute_update_extension(schema, graph, root, applied)
        self.store(root.tid, version, extension)
        return extension

    def prune(self, keep: Iterable[TransactionId]) -> None:
        """Drop entries for roots no longer under consideration."""
        keep_set = set(keep)
        for tid in [t for t in self._entries if t not in keep_set]:
            del self._entries[tid]

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()


class PageCache:
    """A bounded LRU cache paging immutable values from a backing store.

    The durable store (:mod:`repro.store.durable`) keeps transaction
    bodies on disk and pages them through one of these, so resident
    memory stays O(cache capacity) — the open frontier — while the
    published history grows without bound.  The cache is deliberately
    dumb: keys map to immutable values, a hit refreshes recency, and
    inserting past ``capacity`` evicts the least-recently-used entry
    (an evicted body is simply re-read from disk on its next miss).

    Recency is tracked with the dict's own insertion order (pop +
    re-insert on hit), so iteration — and therefore eviction — is
    deterministic.  Counters mirror :class:`CacheStats` in spirit:
    ``hits``/``misses`` price the paging, ``evictions`` counts
    capacity-forced drops, and ``peak_resident`` records the high-water
    mark the bounded-memory claim is asserted against.
    """

    def __init__(self, capacity: int) -> None:
        """``capacity`` must be >= 1 (a zero-size page cache would turn
        every lookup into a disk read and hide bugs as slowness)."""
        if capacity < 1:
            raise ValueError(f"PageCache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_resident = 0
        self._entries: Dict[object, object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached value, refreshed as most recently used; else None."""
        value = self._entries.pop(key, None)
        if value is None:
            self.misses += 1
            return None
        self._entries[key] = value
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        if len(self._entries) > self.peak_resident:
            self.peak_resident = len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def as_dict(self) -> Dict[str, int]:
        """A JSON-friendly view (used by the durable perf benchmark)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident": len(self._entries),
            "peak_resident": self.peak_resident,
            "capacity": self.capacity,
        }


class ConflictCache:
    """Memoizes direct-conflict points per extension pair.

    Entries pin the two compared :class:`UpdateExtension` objects, so a
    recomputed (hence new) extension object naturally invalidates every
    pair it participated in.  ``stats`` is shared with the owning
    :class:`ExtensionCache` when the engine wires them together, so one
    snapshot covers both.

    Instances used as the *confederation-shared* pair memo are mutated
    concurrently when the threaded epoch scheduler runs several
    reconciliations at once, so every structural mutation is guarded by
    an internal lock.  Races on content are benign by construction —
    conflict points are a pure function of the two extension objects, so
    two threads storing the same pair write the same value — but
    unguarded pruning while another thread inserts would corrupt the
    dict iteration.
    """

    def __init__(
        self,
        enabled: bool = True,
        stats: Optional[CacheStats] = None,
        limit: Optional[int] = None,
    ) -> None:
        """``limit`` caps the entry count with FIFO eviction (an evicted
        pair simply gets re-compared on its next miss); None = unbounded,
        for callers that prune explicitly."""
        self.enabled = enabled
        self.stats = stats if stats is not None else CacheStats()
        self.limit = limit
        self._lock = threading.Lock()
        self._entries: Dict[
            PairKey,
            Tuple[UpdateExtension, UpdateExtension, Tuple],
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def pair_key(left: TransactionId, right: TransactionId) -> PairKey:
        """The canonical unordered key for a pair of roots."""
        return (left, right) if left < right else (right, left)

    def lookup(
        self,
        key: PairKey,
        left: UpdateExtension,
        right: UpdateExtension,
    ) -> Optional[Tuple]:
        """Cached conflict points for the pair, or None if stale/absent.

        ``left``/``right`` may arrive in either order; the stored entry is
        keyed canonically and validated by object identity on both sides.
        """
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        cached_left, cached_right, points = entry
        if (cached_left is left and cached_right is right) or (
            cached_left is right and cached_right is left
        ):
            self.stats.pair_hits += 1
            return points
        return None

    def store(
        self,
        key: PairKey,
        left: UpdateExtension,
        right: UpdateExtension,
        points: Sequence,
    ) -> None:
        """Record the pair's conflict points (possibly empty — cached too)."""
        if self.enabled:
            self.stats.pair_misses += 1
            with self._lock:
                self._entries[key] = (left, right, tuple(points))
                if self.limit is not None:
                    while len(self._entries) > self.limit:
                        self._entries.pop(next(iter(self._entries)))

    def prune(self, keep: Iterable[TransactionId]) -> None:
        """Drop pairs involving roots no longer under consideration."""
        keep_set = set(keep)
        with self._lock:
            for key in [
                k for k in self._entries
                if k[0] not in keep_set or k[1] not in keep_set
            ]:
                del self._entries[key]

    def discard(self, roots: Iterable[TransactionId]) -> None:
        """Drop every pair involving any of ``roots`` (retirement: the
        roots have been finally decided by every participant, so no
        reconciliation will compare their extensions again)."""
        drop = set(roots)
        if not drop:
            return
        with self._lock:
            for key in [
                k for k in self._entries if k[0] in drop or k[1] in drop
            ]:
                del self._entries[key]

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
