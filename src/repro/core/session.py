"""The transport-agnostic reconciliation session.

One :class:`ReconcileSession` wraps one participant's
:class:`~repro.core.engine.Reconciler` (the pure decision kernel) and
owns the *per-epoch* bookkeeping that used to be inlined in
``Participant.reconcile``: emitting the ``epoch_start`` event, timing
the kernel, and splitting the kernel's full result from the *upstream*
result the store needs to hear about.

The split of responsibilities after this extraction:

* **decision kernel** (:class:`~repro.core.engine.Reconciler`) — pure
  ``ReconcileUpdates`` over a :class:`ReconciliationBatch`; no store, no
  network, no clock;
* **session** (this module) — consumes a batch, produces decisions and
  the upstream delta; still zero store/network knowledge (the batch is a
  value, wherever it came from);
* **transport** (:class:`~repro.cdss.participant.Participant`) — the
  only layer that talks to an :class:`~repro.store.base.UpdateStore`:
  it fetches the batch through the single store contract
  (:meth:`~repro.store.base.UpdateStore.reconciliation_batch`), feeds it
  to the session, and reports the upstream result back.

Because the session is transport-free it can be driven by anything that
can produce a batch — a store, a replayed log, a test fixture — and the
epoch scheduler can run many sessions concurrently while store access
stays serialized at the transport layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.decisions import ReconcileResult
from repro.core.engine import Reconciler
from repro.core.extensions import ReconciliationBatch
from repro.core.state import ParticipantState
from repro.model.updates import Update


@dataclass
class SessionOutcome:
    """What one session run produced.

    * ``result`` — the kernel's full :class:`ReconcileResult`;
    * ``upstream`` — the subset the store must record: the full
      accept/reject/apply sets, but only *newly* deferred roots
      (re-deferral is the common case while a conflict awaits
      resolution, and re-notifying would cost a message pair per
      deferred transaction per reconciliation on a distributed store);
    * ``local_seconds`` — wall-clock spent inside the decision kernel
      (the "local" bar of the paper's Figures 10 and 12).
    """

    result: ReconcileResult
    upstream: ReconcileResult
    local_seconds: float


class ReconcileSession:
    """Runs reconciliation epochs for one participant, transport-free."""

    def __init__(
        self, reconciler: Reconciler, hooks: Optional[object] = None
    ) -> None:
        """``hooks`` is an optional event bus
        (:class:`repro.confed.hooks.HookBus`, duck-typed — the core
        layer never imports upward); when present every run emits
        ``epoch_start`` before the kernel executes."""
        self._reconciler = reconciler
        self._hooks = hooks

    @property
    def reconciler(self) -> Reconciler:
        """The wrapped decision kernel."""
        return self._reconciler

    @property
    def state(self) -> ParticipantState:
        """The participant's reconciliation bookkeeping."""
        return self._reconciler.state

    def run(
        self,
        batch: ReconciliationBatch,
        own_updates: Sequence[Update] = (),
    ) -> SessionOutcome:
        """Process one batch: decisions, upstream delta, kernel timing."""
        state = self._reconciler.state
        if self._hooks is not None:
            self._hooks.emit(
                "epoch_start",
                participant=state.participant,
                recno=batch.recno,
                network_centric=batch.network_centric,
            )
        already_deferred = set(state.deferred)
        # Pure timing instrumentation around the kernel call — the
        # measured seconds are reported (Figures 10/12), never consulted
        # by any decision, so the wall-clock read is allowed here.
        started = time.perf_counter()  # repro: allow[RPR003]
        result = self._reconciler.reconcile(batch, own_updates=own_updates)
        local_seconds = time.perf_counter() - started  # repro: allow[RPR003]
        upstream = ReconcileResult(
            recno=result.recno,
            accepted=result.accepted,
            rejected=result.rejected,
            deferred=[
                tid for tid in result.deferred if tid not in already_deferred
            ],
            applied=result.applied,
        )
        return SessionOutcome(
            result=result, upstream=upstream, local_seconds=local_seconds
        )
