"""CLI entry point: ``python -m repro.analysis <paths> [options]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error.  This is the CI
gate contract (``.github/workflows/ci.yml`` runs it over ``src tests
benchmarks examples``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import run_analysis
from repro.analysis.report import render
from repro.analysis.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (also the docs' flag reference)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & lock-discipline checker: repo-specific AST "
            "lint rules (RPR001-RPR009) over the given files and "
            "directories."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (directories are walked for *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the checker; exit 0 clean, 1 findings, 2 usage error."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path is required (or --list-rules)",
            file=sys.stderr,
        )
        return 2
    select = args.select.split(",") if args.select else None
    try:
        findings = run_analysis(args.paths, select=select)
    except ValueError as exc:  # unknown --select code
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
