"""The AST lint engine behind ``python -m repro.analysis``.

The repo's determinism and lock-discipline invariants (capability
routing, seeded RNG substreams, ``_store_call`` transport discipline,
serialized hook dispatch, exact config round-trips) are enforced by
convention — a violation only surfaces if a decision-stream pin happens
to catch it.  This engine checks them *statically*: each invariant is a
:class:`Rule` with a stable ``RPRnnn`` code, rules visit a file's AST
and yield :class:`Finding`\\ s, and the CLI gates CI on an empty result.

Scoping: a rule usually guards one layer (``core/`` must not read wall
clocks, ``cdss/`` must not bypass ``_store_call``), so every checked
file gets a :class:`ModuleContext` describing *where it lives* — its
realm (``src`` / ``tests`` / ``benchmarks`` / ``examples``) and, for
``src/repro`` modules, the subpackage.  Rules declare what they apply
to through :meth:`Rule.applies`.

Suppressions: a finding is silenced by ``# repro: allow[RPRnnn]`` on
the offending line or the line directly above it.  Suppressions are
per-code (``allow[RPR003,RPR007]`` lists several) so an allow for one
invariant never hides a different one.

Fixtures: the rule tests feed the engine files that *should* fail.  A
fixture declares the module it impersonates with a
``# repro: fixture-module src/repro/...`` header, so scoped rules see
the pretended location rather than the fixture's real path.  Fixture
files use a non-``.py`` extension and are therefore invisible to
directory walks — the self-check of the real tree never scans them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Path anchors that name a realm; the first match (outermost part) wins.
REALM_ANCHORS: Tuple[str, ...] = ("src", "tests", "benchmarks", "examples")

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_FIXTURE_RE = re.compile(r"#\s*repro:\s*fixture-module\s+(\S+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    path: str
    line: int
    column: int
    message: str

    def render(self) -> str:
        """The one-line human-readable form."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """The JSON-reporter form."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Where a checked file lives, for rule scoping.

    ``path`` is the repo-relative (or as-given) path; ``realm`` is the
    outermost anchor directory (``"other"`` when none matches);
    ``subpackage`` is the first package under ``src/repro`` (e.g.
    ``"store"`` for ``src/repro/store/dht.py``), or ``None`` outside
    ``src``.
    """

    path: str
    realm: str = "other"
    subpackage: Optional[str] = None

    @classmethod
    def from_path(cls, path: str) -> "ModuleContext":
        """Classify ``path`` into realm/subpackage for rule targeting."""
        parts = Path(path).parts
        realm = "other"
        subpackage = None
        for index, part in enumerate(parts):
            if part in REALM_ANCHORS:
                realm = part
                if part == "src" and len(parts) > index + 2:
                    # src / repro / <subpackage> / ...  (a top-level
                    # module like src/repro/errors.py has no subpackage)
                    if len(parts) > index + 3:
                        subpackage = parts[index + 2]
                break
        return cls(path=str(Path(path).as_posix()), realm=realm, subpackage=subpackage)

    @property
    def filename(self) -> str:
        """The basename of the (possibly pretended) module path."""
        return Path(self.path).name

    def in_module(self, *suffixes: str) -> bool:
        """True when the context path ends with any of ``suffixes``."""
        return any(self.path.endswith(suffix) for suffix in suffixes)


class Rule:
    """One checkable invariant.

    Subclasses set ``code``/``name``/``summary``, narrow
    :meth:`applies`, and implement :meth:`check` as a generator of
    :class:`Finding`\\ s.  Rules are stateless across files — any
    per-file bookkeeping lives in locals of ``check``.
    """

    code: str = "RPR000"
    name: str = "abstract-rule"
    summary: str = ""

    def applies(self, context: ModuleContext) -> bool:
        """Whether this rule checks files at ``context`` (default: all)."""
        return True

    def check(
        self, tree: ast.Module, context: ModuleContext
    ) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            code=self.code,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class FileReport:
    """Everything the engine derived from one file."""

    context: ModuleContext
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number → codes allowed on that line (1-based)."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            }
            allowed[lineno] = codes
    return allowed


def _fixture_override(source: str) -> Optional[str]:
    """The pretended module path a fixture header declares, if any."""
    for line in source.splitlines()[:5]:
        match = _FIXTURE_RE.search(line)
        if match:
            return match.group(1)
    return None


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> FileReport:
    """Run ``rules`` over one file's source text."""
    override = _fixture_override(source)
    # Rules scope by the pretended location (fixtures impersonate real
    # modules), but findings always point at the file on disk.
    scope = ModuleContext.from_path(override if override else path)
    report = FileReport(context=scope)
    tree = ast.parse(source, filename=path)
    allowed = _suppressions(source)
    for rule in rules:
        if not rule.applies(scope):
            continue
        for finding in rule.check(tree, scope):
            lines = (finding.line, finding.line - 1)
            if any(finding.code in allowed.get(line, ()) for line in lines):
                report.suppressed += 1
                continue
            if finding.path != path:
                finding = replace(finding, path=path)
            report.findings.append(finding)
    return report


def collect_files(paths: Iterable[str]) -> List[Path]:
    """Expand files and directories into the ``.py`` files to check.

    Directories are walked recursively for ``*.py`` (``__pycache__``
    skipped); explicit file arguments are taken verbatim whatever their
    extension — that is how the rule tests feed non-``.py`` fixtures.
    """
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(
                sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if "__pycache__" not in candidate.parts
                )
            )
        else:
            collected.append(path)
    return collected


def run_analysis(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Check ``paths`` and return every unsuppressed finding.

    ``select`` narrows to specific rule codes (exact, case-insensitive).
    Unreadable or syntactically invalid files surface as ``RPR000``
    findings rather than crashing the run — a gate that dies on a bad
    file checks nothing else.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    if select is not None:
        wanted = {code.strip().upper() for code in select}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise ValueError(
                f"unknown rule codes {sorted(unknown)}; known: "
                f"{sorted(rule.code for rule in rules)}"
            )
        rules = [rule for rule in rules if rule.code in wanted]
    findings: List[Finding] = []
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding("RPR000", str(path), 1, 1, f"cannot read file: {exc}")
            )
            continue
        try:
            report = analyze_source(source, str(path), rules)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    "RPR000",
                    str(path),
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        findings.extend(report.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return findings
