"""Determinism & lock-discipline checking for the reproduction.

Two halves, one contract:

* **Static** — :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules`:
  an AST lint engine with repo-specific rules ``RPR001``–``RPR008``
  covering capability routing, seeded RNG substreams, wall-clock-free
  decision paths, ``_store_call`` transport discipline, hook-bus
  dispatch, memo lock helpers, ordered iteration, and exact config
  round-trips.  Run as ``python -m repro.analysis src tests benchmarks
  examples`` (the CI gate); suppress an intended exception with
  ``# repro: allow[RPRnnn]`` on or above the line.
* **Dynamic** — :mod:`repro.analysis.runtime`: debug-mode
  instrumentation that wraps a store's lock and container state with
  owner-asserting proxies, deterministically raising
  :class:`~repro.analysis.runtime.LockDisciplineError` on any access
  that does not hold the store lock — the race detector the static
  rules cannot be.
"""

from repro.analysis.engine import (
    Finding,
    ModuleContext,
    Rule,
    analyze_source,
    collect_files,
    run_analysis,
)
from repro.analysis.report import render, render_json, render_text
from repro.analysis.rules import RULES_BY_CODE, default_rules
from repro.analysis.runtime import (
    InstrumentedRLock,
    LockDisciplineError,
    StoreInstrumentation,
    instrument_store,
    lock_discipline,
)

__all__ = [
    "Finding",
    "InstrumentedRLock",
    "LockDisciplineError",
    "ModuleContext",
    "RULES_BY_CODE",
    "Rule",
    "StoreInstrumentation",
    "analyze_source",
    "collect_files",
    "default_rules",
    "instrument_store",
    "lock_discipline",
    "render",
    "render_json",
    "render_text",
    "run_analysis",
]
