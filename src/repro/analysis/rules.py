"""The repo-specific lint rules (``RPR001``–``RPR010``).

Each rule encodes one invariant of the verification spine — the
properties the store-equivalence matrix and the chaos suite rely on but
could previously only catch *after* they broke a decision stream:

=======  ==============================================================
RPR001   No ``isinstance``/``type()`` checks against store classes
         outside ``store/`` — route on ``batch.capabilities``.
RPR002   No module-level ``random.*`` RNG and no argless
         ``random.Random()`` — seeded substreams only.
RPR003   No wall-clock reads in ``core/``/``store/`` decision paths —
         simulated latency goes through ``pay_latency``.
RPR004   No direct store-method calls in ``cdss/`` outside
         ``_store_call`` — the transport holds the store lock.
RPR005   Hook events are dispatched through the bus with known names —
         a literal ``emit`` of an unknown event silently no-ops, and
         poking ``_handlers`` bypasses the serialized dispatch.
RPR006   Shared memo internals (``._entries``) are mutated only by
         their lock-holding helpers in ``core/cache.py``.
RPR007   No iteration over set expressions feeding ordered output —
         wrap in ``sorted(...)`` so decision-adjacent order is stable.
RPR008   ``@dataclass`` classes with ``to_dict``/``from_dict`` keep the
         dict keys in exact parity with their fields.
RPR009   Message kinds passed to ``Network.send`` and handled by
         ``_on_<kind>`` methods come from the module-level ``KINDS``
         registry — a typo'd kind silently burns the retry budget.
RPR010   No direct ``time.sleep`` outside the
         :class:`~repro.net.clock.LatencyClock` implementations
         (``net/clock.py``) — a blocking sleep on the async schedule
         stalls the whole event loop; pay latency through the clock.
=======  ==============================================================

Rules deliberately prefer *precision* over recall: each one flags only
patterns it can judge statically with no false positives on the real
tree, and the fixture suite (``tests/analysis/fixtures``) proves every
rule still fires.  Genuinely intended exceptions carry
``# repro: allow[RPRnnn]`` at the site, so the waiver is visible in
review next to its justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.confed.hooks import EVENTS as HOOK_EVENTS

#: Concrete update-store classes the engine must never type-switch on.
STORE_CLASS_NAMES: Tuple[str, ...] = (
    "UpdateStore",
    "MemoryUpdateStore",
    "CentralUpdateStore",
    "DhtUpdateStore",
    "NetworkCentricMixin",
)

#: Wall-clock reads that would make a decision path time-dependent.
WALL_CLOCK_ATTRS: Tuple[str, ...] = (
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "time_ns",
)

#: Mutating methods of the memo mapping that must stay behind the lock
#: helpers in ``core/cache.py``.
MEMO_MUTATORS: Tuple[str, ...] = (
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
)


def _walk_with_function_stack(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, enclosing function names)`` over the whole tree."""

    def visit(node: ast.AST, stack: Tuple[str, ...]) -> Iterator:
        """Recurse, yielding each node with its enclosing-function stack."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, stack + (child.name,))
            else:
                yield child, stack
                yield from visit(child, stack)

    yield from visit(tree, ())


class StoreTypeCheckRule(Rule):
    """RPR001: route on capabilities, never on store classes."""

    code = "RPR001"
    name = "store-type-check"
    summary = (
        "isinstance/type() check against a store class outside store/ — "
        "route on batch.capabilities instead"
    )

    def applies(self, context: ModuleContext) -> bool:
        """src/ modules outside store/ — the engine side of the seam."""
        return context.realm == "src" and context.subpackage != "store"

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag isinstance/type() switches on imported store classes."""
        imported: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "repro.store" or module.startswith("repro.store."):
                    for alias in node.names:
                        name = alias.asname or alias.name
                        if name in STORE_CLASS_NAMES or alias.name in STORE_CLASS_NAMES:
                            imported.add(name)
        if not imported:
            return
        for node in ast.walk(tree):
            target = self._type_switch_target(node, imported)
            if target is not None:
                yield super().finding(
                    context,
                    node,
                    f"type check against store class {target!r}; the "
                    f"engine routes on batch.capabilities, never on "
                    f"concrete store types",
                )

    @staticmethod
    def _type_switch_target(node: ast.AST, imported: Set[str]) -> Optional[str]:
        """The store class a type switch targets, if ``node`` is one."""

        def named(expr: ast.AST) -> Optional[str]:
            """The imported store-class name ``expr`` references, if any."""
            if isinstance(expr, ast.Name) and expr.id in imported:
                return expr.id
            return None

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "isinstance" and len(node.args) == 2:
                second = node.args[1]
                candidates = (
                    second.elts
                    if isinstance(second, (ast.Tuple, ast.List))
                    else [second]
                )
                for candidate in candidates:
                    name = named(candidate)
                    if name:
                        return name
        if isinstance(node, ast.Compare):
            # type(x) is StoreClass  /  type(x) == StoreClass
            sides = [node.left, *node.comparators]
            has_type_call = any(
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Name)
                and side.func.id == "type"
                for side in sides
            )
            if has_type_call:
                for side in sides:
                    name = named(side)
                    if name:
                        return name
        return None


class UnseededRandomRule(Rule):
    """RPR002: every RNG is an explicitly seeded substream."""

    code = "RPR002"
    name = "unseeded-random"
    summary = (
        "module-level random.* or argless random.Random() — use an "
        "explicitly seeded random.Random(seed) substream"
    )

    REALMS = frozenset({"src", "examples", "benchmarks"})

    def applies(self, context: ModuleContext) -> bool:
        """Everything seeded is in scope: src/, examples/, benchmarks/."""
        return context.realm in self.REALMS

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag shared-RNG draws and argless ``random.Random()``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    yield super().finding(
                        context,
                        node,
                        f"importing {', '.join(bad)} from random pulls the "
                        f"shared module-level RNG; import Random and seed a "
                        f"substream",
                    )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield super().finding(
                            context,
                            node,
                            "argless random.Random() seeds from the OS — "
                            "pass an explicit seed so runs reproduce",
                        )
                else:
                    yield super().finding(
                        context,
                        node,
                        f"random.{func.attr}() draws from the shared "
                        f"module-level RNG; use a seeded "
                        f"random.Random(seed) substream",
                    )


class WallClockRule(Rule):
    """RPR003: decision paths never read the wall clock."""

    code = "RPR003"
    name = "wall-clock-in-decision-path"
    summary = (
        "wall-clock read in core/ or store/ — simulated latency goes "
        "through PerfCounters and pay_latency"
    )

    SUBPACKAGES = frozenset({"core", "store"})

    def applies(self, context: ModuleContext) -> bool:
        """Decision-path subpackages only: core/ and store/."""
        return context.realm == "src" and context.subpackage in self.SUBPACKAGES

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag wall-clock reads (``time.*``, ``datetime.now``, ...)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in WALL_CLOCK_ATTRS]
                if bad:
                    yield super().finding(
                        context,
                        node,
                        f"importing {', '.join(bad)} from time into a "
                        f"decision-path module",
                    )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in WALL_CLOCK_ATTRS
            ):
                yield super().finding(
                    context,
                    node,
                    f"time.{func.attr}() in a decision path makes outcomes "
                    f"time-dependent; charge simulated latency via "
                    f"PerfCounters and pay it through pay_latency",
                )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("now", "utcnow", "today")
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")
            ):
                yield super().finding(
                    context,
                    node,
                    f"{func.value.id}.{func.attr}() reads the wall clock in "
                    f"a decision path",
                )


class DirectStoreCallRule(Rule):
    """RPR004: the cdss transport reaches the store only via _store_call."""

    code = "RPR004"
    name = "store-call-outside-lock"
    summary = (
        "direct store method call in cdss/ outside _store_call — the "
        "transport must hold the store lock"
    )

    def applies(self, context: ModuleContext) -> bool:
        """The transport layer: src/repro/cdss."""
        return context.realm == "src" and context.subpackage == "cdss"

    @staticmethod
    def _exempt(stack: Tuple[str, ...]) -> bool:
        """Calls inside ``_store_call`` itself are the mechanism, and
        the ``*_locked`` naming convention marks helper callables that
        are only ever *executed through* ``_store_call`` (so the lock is
        held when their body runs)."""
        return any(
            name == "_store_call" or name.endswith("_locked") for name in stack
        )

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag ``.store.method(...)`` calls outside ``_store_call``."""
        for node, stack in _walk_with_function_stack(tree):
            if self._exempt(stack):
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            is_store_attr = (
                isinstance(value, ast.Attribute) and value.attr == "store"
            )
            is_store_name = isinstance(value, ast.Name) and value.id == "store"
            if is_store_attr or is_store_name:
                yield super().finding(
                    context,
                    node,
                    f"direct store call .store.{func.attr}(...) bypasses "
                    f"_store_call — the store lock and perf accounting "
                    f"are skipped",
                )


class HookEventRule(Rule):
    """RPR005: events go through the bus, under known names."""

    code = "RPR005"
    name = "hook-event-dispatch"
    summary = (
        "emit of an unknown hook event (silent no-op) or direct "
        "_handlers access bypassing serialized dispatch"
    )

    def applies(self, context: ModuleContext) -> bool:
        """All src/ modules."""
        return context.realm == "src"

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag unknown event names and ``_handlers`` pokes."""
        in_hooks_module = context.in_module("confed/hooks.py")
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("emit", "_emit")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value not in HOOK_EVENTS
            ):
                yield super().finding(
                    context,
                    node,
                    f"emit of unknown hook event {node.args[0].value!r} — "
                    f"HookBus.emit silently no-ops on unknown names; known "
                    f"events: {', '.join(HOOK_EVENTS)}",
                )
            if (
                not in_hooks_module
                and isinstance(node, ast.Attribute)
                and node.attr == "_handlers"
            ):
                yield super().finding(
                    context,
                    node,
                    "direct access to HookBus._handlers bypasses the "
                    "serialized, subscription-ordered dispatch",
                )


class MemoMutationRule(Rule):
    """RPR006: memo internals mutate only inside their lock helpers."""

    code = "RPR006"
    name = "memo-mutation-outside-lock"
    summary = (
        "mutation of a memo's ._entries outside core/cache.py — shared "
        "memos are mutated only by their lock-holding helpers"
    )

    def applies(self, context: ModuleContext) -> bool:
        """Everywhere except the memos' own module, core/cache.py."""
        return not context.in_module("core/cache.py")

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag writes, deletes, and mutator calls on a ``._entries``."""
        def is_entries_attr(expr: ast.AST) -> bool:
            """True when ``expr`` is an ``._entries`` attribute access."""
            return isinstance(expr, ast.Attribute) and expr.attr == "_entries"

        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_entries_attr(
                        target.value
                    ):
                        yield super().finding(
                            context,
                            node,
                            "writing into ._entries outside core/cache.py "
                            "races the memo's internal lock",
                        )
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and is_entries_attr(
                        target.value
                    ):
                        yield super().finding(
                            context,
                            node,
                            "deleting from ._entries outside core/cache.py "
                            "races the memo's internal lock",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MEMO_MUTATORS
                and is_entries_attr(node.func.value)
            ):
                yield super().finding(
                    context,
                    node,
                    f"._entries.{node.func.attr}(...) outside core/cache.py "
                    f"races the memo's internal lock",
                )


class SetIterationRule(Rule):
    """RPR007: ordered output never iterates a raw set expression."""

    code = "RPR007"
    name = "unordered-set-iteration"
    summary = (
        "iteration over a set expression — set order is arbitrary; wrap "
        "in sorted(...) when the result feeds ordered decision output"
    )

    SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def applies(self, context: ModuleContext) -> bool:
        """All src/ modules."""
        return context.realm == "src"

    @classmethod
    def _is_set_expression(cls, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, cls.SET_OPS):
            return cls._is_set_expression(expr.left) or cls._is_set_expression(
                expr.right
            )
        return False

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes belonging to ``scope``, not descending into nested
        function bodies (each function is its own dataflow scope)."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from SetIterationRule._scope_nodes(child)

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag for/comprehension iteration over set-valued expressions."""
        # A light local-dataflow pass per scope: names assigned a set
        # expression count as set-valued for iteration checks in that
        # same scope (re-assignment to a non-set clears them).
        scopes: List[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            nodes = list(self._scope_nodes(scope))
            set_names: Set[str] = set()
            for stmt in nodes:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        if self._is_set_expression(stmt.value):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
            iters: List[ast.AST] = []
            for stmt in nodes:
                if isinstance(stmt, ast.For):
                    iters.append(stmt.iter)
                elif isinstance(
                    stmt, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    iters.extend(gen.iter for gen in stmt.generators)
            for candidate in iters:
                named_set = (
                    isinstance(candidate, ast.Name) and candidate.id in set_names
                )
                if self._is_set_expression(candidate) or named_set:
                    yield super().finding(
                        context,
                        candidate,
                        "iterating a set expression yields arbitrary "
                        "order; wrap in sorted(...) so downstream "
                        "output is deterministic",
                    )


class DictRoundTripRule(Rule):
    """RPR008: to_dict keys stay in parity with dataclass fields."""

    code = "RPR008"
    name = "dict-roundtrip-parity"
    summary = (
        "to_dict() keys of a @dataclass with from_dict() must exactly "
        "match its field names — drift breaks the exact round-trip"
    )

    def applies(self, context: ModuleContext) -> bool:
        """All src/ modules."""
        return context.realm == "src"

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag to_dict()/field drift on round-trippable dataclasses."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(node):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            to_dict = methods.get("to_dict")
            if to_dict is None or "from_dict" not in methods:
                continue
            fields = self._field_names(node)
            keys = self._to_dict_keys(to_dict)
            if fields is None or keys is None:
                continue
            missing = fields - keys
            extra = keys - fields
            if missing or extra:
                detail = []
                if missing:
                    detail.append(f"missing keys: {sorted(missing)}")
                if extra:
                    detail.append(f"extra keys: {sorted(extra)}")
                yield super().finding(
                    context,
                    to_dict,
                    f"{node.name}.to_dict() keys drift from the dataclass "
                    f"fields ({'; '.join(detail)}); from_dict(to_dict(x)) "
                    f"cannot round-trip exactly",
                )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            name = decorator
            if isinstance(decorator, ast.Call):
                name = decorator.func
            if isinstance(name, ast.Name) and name.id == "dataclass":
                return True
            if isinstance(name, ast.Attribute) and name.attr == "dataclass":
                return True
        return False

    @staticmethod
    def _field_names(node: ast.ClassDef) -> Optional[Set[str]]:
        names: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                annotation = ast.unparse(stmt.annotation)
                if name.startswith("_") or "ClassVar" in annotation:
                    continue
                names.add(name)
        return names or None

    @staticmethod
    def _to_dict_keys(func: ast.FunctionDef) -> Optional[Set[str]]:
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Dict):
                keys: Set[str] = set()
                for key in stmt.value.keys:
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        return None  # computed keys: not statically checkable
                    keys.add(key.value)
                return keys
        return None


class KindsRegistryRule(Rule):
    """RPR009: message kinds come from the module's KINDS registry."""

    code = "RPR009"
    name = "message-kind-registry"
    summary = (
        "message kinds passed to Network.send and handled by "
        "_on_<kind> methods must come from the module-level KINDS "
        "registry — a typo'd kind silently produces an unanswered "
        "request that burns the whole retry budget"
    )

    def applies(self, context: ModuleContext) -> bool:
        """All src/ modules."""
        return context.realm == "src"

    @staticmethod
    def _declared_kinds(tree: ast.Module) -> Optional[Set[str]]:
        """String members of a module-level ``KINDS = frozenset({...})``
        (or any literal collection), or None when undeclared."""
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == "KINDS":
                    return {
                        literal.value
                        for literal in ast.walk(node.value)
                        if isinstance(literal, ast.Constant)
                        and isinstance(literal.value, str)
                    }
        return None

    @staticmethod
    def _send_kind(node: ast.AST) -> Optional[ast.Constant]:
        """The literal kind of a ``....send(sender, recipient, kind)``
        call (third positional or ``kind=``), else None."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
        ):
            return None
        candidate: Optional[ast.AST] = None
        if len(node.args) >= 3:
            candidate = node.args[2]
        for keyword in node.keywords:
            if keyword.arg == "kind":
                candidate = keyword.value
        if isinstance(candidate, ast.Constant) and isinstance(
            candidate.value, str
        ):
            return candidate
        return None

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag literal kinds missing from the module's KINDS registry."""
        # Engage only for modules that actually speak the wire protocol
        # (at least one literal-kind send) — hook-bus subscribers also
        # name methods ``_on_<event>`` and must not be swept in.
        sends = [
            kind_node
            for node in ast.walk(tree)
            if (kind_node := self._send_kind(node)) is not None
        ]
        if not sends:
            return
        declared = self._declared_kinds(tree)
        if declared is None:
            for kind_node in sends:
                yield super().finding(
                    context,
                    kind_node,
                    f"message kind {kind_node.value!r} is sent but the "
                    f"module declares no KINDS registry to check it "
                    f"against",
                )
            return
        for kind_node in sends:
            if kind_node.value not in declared:
                yield super().finding(
                    context,
                    kind_node,
                    f"message kind {kind_node.value!r} is not in the "
                    f"module's KINDS registry — a typo here burns the "
                    f"whole retry budget before surfacing",
                )
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.startswith("_on_")
                and node.name[4:]
                and node.name[4:] not in declared
            ):
                yield super().finding(
                    context,
                    node,
                    f"handler {node.name}() matches no kind in the "
                    f"module's KINDS registry — it can never be "
                    f"dispatched",
                )


class BlockingSleepRule(Rule):
    """RPR010: latency is paid through a LatencyClock, never slept."""

    code = "RPR010"
    name = "blocking-sleep-outside-clock"
    summary = (
        "direct time.sleep outside the LatencyClock implementations — "
        "a blocking sleep stalls the async scheduler's event loop; pay "
        "latency through the store's clock (pay_latency)"
    )

    def applies(self, context: ModuleContext) -> bool:
        """Everywhere except the clocks' own module, net/clock.py."""
        return not context.in_module("net/clock.py")

    def check(self, tree: ast.Module, context: ModuleContext) -> Iterator[Finding]:
        """Flag ``time.sleep(...)`` calls and ``from time import sleep``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "sleep" for alias in node.names):
                    yield super().finding(
                        context,
                        node,
                        "importing sleep from time invites blocking waits "
                        "outside the LatencyClock seam; pay latency "
                        "through the store's clock instead",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sleep"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield super().finding(
                    context,
                    node,
                    "time.sleep() outside net/clock.py blocks the calling "
                    "thread — under the async schedule that stalls the "
                    "whole event loop; charge the latency to PerfCounters "
                    "and pay it through the store's LatencyClock",
                )


def default_rules() -> List[Rule]:
    """One instance of every shipped rule, in code order."""
    return [
        StoreTypeCheckRule(),
        UnseededRandomRule(),
        WallClockRule(),
        DirectStoreCallRule(),
        HookEventRule(),
        MemoMutationRule(),
        SetIterationRule(),
        DictRoundTripRule(),
        KindsRegistryRule(),
        BlockingSleepRule(),
    ]


#: code → rule class, for ``--select`` validation and the docs.
RULES_BY_CODE: Dict[str, type] = {
    rule.code: type(rule) for rule in default_rules()
}
