"""Runtime lock-discipline instrumentation (the dynamic checker half).

The static rules (:mod:`repro.analysis.rules`) catch *syntactic* lock
bypasses — a store call outside ``_store_call``, a memo poked around its
helpers.  They cannot see a dynamically constructed call path or a
third-party driver.  This module catches those at run time: it wraps a
store's ``lock`` with an owner-tracking shim and replaces the store's
plain ``dict``/``list``/``set`` attributes with **owner-asserting
proxies** that raise :class:`LockDisciplineError` the moment any code
touches them without holding the store lock.

The discipline enforced is exactly the PR 3 transport contract: *stores
are not internally thread-safe; every access to store state happens
under ``store.lock``* (held by
:meth:`repro.cdss.participant.Participant._store_call`, by the
confederation facade around snapshot/restore reads, and by the fault
controller around lifecycle actions).  Under the serial scheduler the
lock is uncontended, so an instrumented run is cheap enough to gate in
CI; under the :class:`~repro.confed.scheduler.ThreadedScheduler` chaos
matrix the proxies catch unsynchronized cross-thread access the static
rules cannot see — and because the check is *lock-held*, not
*race-observed*, detection is deterministic: a bypass raises on its
first execution, no unlucky interleaving required.

Usage (tests / CI)::

    from repro.analysis.runtime import lock_discipline

    with Confederation(config, hooks=hooks) as confed:
        with lock_discipline(confed.store):
            confed.run()          # LockDisciplineError on any bypass

Instrumentation is shallow (only containers directly on the store
object) and reversible — on exit the raw containers and the original
lock are restored, so post-run reporting and benchmarks read unwrapped
state.
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping, MutableSequence, MutableSet
from contextlib import contextmanager
from typing import Iterable, List


class LockDisciplineError(RuntimeError):
    """Store state was touched without holding the store lock."""


class InstrumentedRLock:
    """A reentrant lock shim that knows its current owner.

    Wraps the store's real ``RLock``; ownership bookkeeping happens
    while the inner lock is held, so reads from other threads can never
    observe *their own* thread id spuriously — ``held()`` is exact for
    the asking thread, which is the only question the proxies ask.
    """

    def __init__(self, inner: threading.RLock) -> None:
        self._inner = inner
        self._owner: int = 0
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the inner lock, recording this thread as the owner."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._depth += 1
        return acquired

    def release(self) -> None:
        """Release the inner lock, clearing ownership at depth zero."""
        self._depth -= 1
        if self._depth == 0:
            self._owner = 0
        self._inner.release()

    def __enter__(self) -> "InstrumentedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def held(self) -> bool:
        """True when the calling thread currently holds the lock."""
        return self._owner == threading.get_ident()


class _Guarded:
    """Shared assertion for the container proxies."""

    __slots__ = ("_inner", "_lock", "_label")

    def __init__(self, inner, lock: InstrumentedRLock, label: str) -> None:
        self._inner = inner
        self._lock = lock
        self._label = label

    @property
    def raw(self):
        """The unwrapped container (for uninstrumenting)."""
        return self._inner

    def _assert_held(self) -> None:
        if not self._lock.held():
            raise LockDisciplineError(
                f"unsynchronized access to {self._label} from thread "
                f"{threading.current_thread().name!r}: the store lock is "
                f"not held — route store access through "
                f"Participant._store_call or take store.lock explicitly"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Guarded({self._label}={self._inner!r})"


class GuardedMapping(_Guarded, MutableMapping):
    """A dict proxy asserting lock ownership on every operation."""

    def __getitem__(self, key):
        self._assert_held()
        return self._inner[key]

    def __setitem__(self, key, value) -> None:
        self._assert_held()
        self._inner[key] = value

    def __delitem__(self, key) -> None:
        self._assert_held()
        del self._inner[key]

    def __iter__(self):
        self._assert_held()
        return iter(self._inner)

    def __len__(self) -> int:
        self._assert_held()
        return len(self._inner)

    def __contains__(self, key) -> bool:
        self._assert_held()
        return key in self._inner


class GuardedSequence(_Guarded, MutableSequence):
    """A list proxy asserting lock ownership on every operation."""

    def __getitem__(self, index):
        self._assert_held()
        return self._inner[index]

    def __setitem__(self, index, value) -> None:
        self._assert_held()
        self._inner[index] = value

    def __delitem__(self, index) -> None:
        self._assert_held()
        del self._inner[index]

    def __len__(self) -> int:
        self._assert_held()
        return len(self._inner)

    def insert(self, index, value) -> None:
        """``list.insert`` under the ownership assertion."""
        self._assert_held()
        self._inner.insert(index, value)


class GuardedSet(_Guarded, MutableSet):
    """A set proxy asserting lock ownership on every operation."""

    @classmethod
    def _from_iterable(cls, iterable):
        # The abc mixins build set-algebra results (``a - b``, ``a | b``)
        # through this hook; those results are fresh locals, not store
        # state, so they come back as plain sets.
        return set(iterable)

    def __contains__(self, value) -> bool:
        self._assert_held()
        return value in self._inner

    def __iter__(self):
        self._assert_held()
        return iter(self._inner)

    def __len__(self) -> int:
        self._assert_held()
        return len(self._inner)

    def add(self, value) -> None:
        """``set.add`` under the ownership assertion."""
        self._assert_held()
        self._inner.add(value)

    def discard(self, value) -> None:
        """``set.discard`` under the ownership assertion."""
        self._assert_held()
        self._inner.discard(value)


_PROXY_TYPES = {dict: GuardedMapping, list: GuardedSequence, set: GuardedSet}


class StoreInstrumentation:
    """The handle :func:`instrument_store` returns; restores on close."""

    def __init__(self, store, lock: InstrumentedRLock, wrapped: List[str]) -> None:
        self.store = store
        self.lock = lock
        self.wrapped = wrapped
        self._original_lock = lock._inner
        self._active = True

    def restore(self) -> None:
        """Unwrap every proxied attribute and restore the original lock."""
        if not self._active:
            return
        self._active = False
        for name in self.wrapped:
            value = getattr(self.store, name, None)
            if isinstance(value, _Guarded):
                setattr(self.store, name, value.raw)
        self.store.lock = self._original_lock


def instrument_store(store, skip: Iterable[str] = ()) -> StoreInstrumentation:
    """Wrap ``store``'s lock and container attributes with asserting
    proxies; returns the handle whose ``restore()`` undoes it.

    Only attributes whose value is *exactly* ``dict``/``list``/``set``
    are wrapped (richer objects like ``PerfCounters`` or the shared
    :class:`~repro.core.cache.ConflictCache` carry their own locking
    discipline).  ``skip`` names attributes to leave untouched.
    """
    lock = InstrumentedRLock(store.lock)
    store.lock = lock
    skip_set = set(skip)
    wrapped: List[str] = []
    for name, value in sorted(vars(store).items()):
        if name in skip_set or name == "lock":
            continue
        proxy_type = _PROXY_TYPES.get(type(value))
        if proxy_type is None:
            continue
        label = f"{type(store).__name__}.{name}"
        setattr(store, name, proxy_type(value, lock, label))
        wrapped.append(name)
    return StoreInstrumentation(store, lock, wrapped)


@contextmanager
def lock_discipline(store, skip: Iterable[str] = ()):
    """Context manager: instrument ``store`` for the block, restore after.

    Yields the :class:`StoreInstrumentation` handle (its ``wrapped``
    list names the guarded attributes, useful in tests).
    """
    handle = instrument_store(store, skip=skip)
    try:
        yield handle
    finally:
        handle.restore()


__all__ = [
    "GuardedMapping",
    "GuardedSequence",
    "GuardedSet",
    "InstrumentedRLock",
    "LockDisciplineError",
    "StoreInstrumentation",
    "instrument_store",
    "lock_discipline",
]
