"""Reporters for analysis findings: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail (ruff-style)."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_code: Dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"{len(findings)} finding(s): {breakdown}")
    else:
        lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: counts plus the full finding list.

    Shape is stable for CI consumption::

        {"findings": [{code, path, line, column, message}, ...],
         "counts": {"RPR001": 2, ...}, "total": 3}
    """
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload: Dict[str, object] = {
        "total": len(findings),
        "counts": dict(sorted(by_code.items())),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render(findings: Sequence[Finding], fmt: str) -> str:
    """Render ``findings`` as ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "json":
        return render_json(findings)
    return render_text(findings)


__all__: List[str] = ["render", "render_text", "render_json"]
