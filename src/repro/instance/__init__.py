"""Materialised local database instances.

Each CDSS participant controls a local instance of the shared schema
(``Ii(Sigma)`` in Definition 1).  This package provides:

* :class:`repro.instance.memory.MemoryInstance` — a key-indexed in-memory
  instance, used by the reconciliation engine and the simulations;
* :class:`repro.instance.sqlite_instance.SqliteInstance` — the same
  interface persisted in sqlite3, standing in for the participant-local
  relational databases of the paper's deployment;
* :func:`repro.instance.base.apply_update` semantics shared by both.
"""

from repro.instance.base import Instance
from repro.instance.memory import MemoryInstance
from repro.instance.sqlite_instance import SqliteInstance

__all__ = ["Instance", "MemoryInstance", "SqliteInstance"]
