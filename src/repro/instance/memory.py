"""In-memory key-indexed instance — the workhorse of the simulations."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.instance.base import Instance
from repro.model.schema import Schema


class MemoryInstance(Instance):
    """A database instance held entirely in Python dictionaries.

    Each relation is a dict from key tuple to row tuple, giving O(1)
    lookups — the same asymptotics the paper obtains from hash-based
    conflict detection.
    """

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema)
        self._data: Dict[str, Dict[Tuple, Tuple]] = {
            rel.name: {} for rel in schema
        }

    def get(self, relation: str, key: Tuple) -> Optional[Tuple]:
        """Return the row stored under ``key`` in ``relation``, or None."""
        return self._data[relation].get(key)

    def rows(self, relation: str) -> Iterable[Tuple]:
        """Iterate over all rows of ``relation``."""
        return iter(self._data[relation].values())

    def count(self, relation: str) -> int:
        """Number of rows currently in ``relation`` (O(1) here)."""
        return len(self._data[relation])

    def _set(self, relation: str, key: Tuple, row: Tuple) -> None:
        self._data[relation][key] = row

    def _remove(self, relation: str, key: Tuple) -> None:
        self._data[relation].pop(key, None)

    def copy(self) -> "MemoryInstance":
        """An independent deep copy of this instance."""
        clone = MemoryInstance(self._schema)
        for relation, rows in self._data.items():
            clone._data[relation] = dict(rows)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryInstance):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("MemoryInstance is unhashable")
