"""The abstract instance interface and shared update-application semantics.

An *instance* is a materialised database: for every relation in the schema,
a set of rows indexed by key.  The reconciliation engine needs exactly four
capabilities from it: look up the row under a key, apply an update, test
whether an update sequence could be applied without violating integrity
constraints (``CheckState`` line 5 of the paper's algorithm), and enumerate
state for metrics.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConstraintViolation
from repro.model.schema import Schema
from repro.model.tuples import QualifiedKey
from repro.model.updates import Delete, Insert, Modify, Update


class Instance(abc.ABC):
    """A materialised database instance over a fixed schema."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        #: Monotone counter bumped by every successful mutation entry
        #: point (``apply`` / ``apply_all`` / ``apply_set``).  Pure
        #: read-only checks such as :meth:`can_apply_set` are functions of
        #: the instance state, so callers may memoize their verdicts
        #: against this version.
        self.mutation_count: int = 0

    @property
    def schema(self) -> Schema:
        """The schema this instance materialises."""
        return self._schema

    @abc.abstractmethod
    def get(self, relation: str, key: Tuple) -> Optional[Tuple]:
        """Return the row stored under ``key`` in ``relation``, or None."""

    @abc.abstractmethod
    def rows(self, relation: str) -> Iterable[Tuple]:
        """Iterate over all rows of ``relation`` (order unspecified)."""

    @abc.abstractmethod
    def _set(self, relation: str, key: Tuple, row: Tuple) -> None:
        """Store ``row`` under ``key`` (insert or overwrite)."""

    @abc.abstractmethod
    def _remove(self, relation: str, key: Tuple) -> None:
        """Remove the row under ``key``; no-op if absent."""

    def count(self, relation: str) -> int:
        """Number of rows currently in ``relation``."""
        return sum(1 for _ in self.rows(relation))

    def contains_row(self, relation: str, row: Tuple) -> bool:
        """True if exactly ``row`` is present in ``relation``."""
        key = self._schema.relation(relation).key_of(row)
        return self.get(relation, key) == row

    # ------------------------------------------------------------------
    # Update application

    def can_apply(self, update: Update) -> bool:
        """True if ``update`` can be applied without violating constraints."""
        try:
            self._check(update, simulated={})
        except ConstraintViolation:
            return False
        return True

    def can_apply_all(self, updates: Sequence[Update]) -> bool:
        """True if the whole sequence applies cleanly, in order.

        This is the "can be completely applied to the instance without
        violating its integrity constraints" test of Definition 5,
        condition 2.  The check simulates the sequence against a scratch
        overlay so the instance itself is not modified.
        """
        simulated: Dict[QualifiedKey, Optional[Tuple]] = {}
        try:
            for update in updates:
                self._check(update, simulated)
                self._simulate(update, simulated)
        except ConstraintViolation:
            return False
        return True

    def apply(self, update: Update) -> None:
        """Apply a single update, raising :class:`ConstraintViolation` on error."""
        self._check(update, simulated={})
        self._execute(update)
        self.mutation_count += 1

    def apply_all(self, updates: Sequence[Update]) -> None:
        """Apply an update sequence atomically-in-effect.

        The sequence is validated as a whole first (so a failure partway
        through cannot leave the instance half-updated), then executed.
        """
        simulated: Dict[QualifiedKey, Optional[Tuple]] = {}
        for update in updates:
            self._check(update, simulated)
            self._simulate(update, simulated)
        for update in updates:
            self._execute(update)
        if updates:
            self.mutation_count += 1

    # ------------------------------------------------------------------
    # Set application (flattened update extensions)

    def _check_set(self, updates: Sequence[Update]) -> None:
        """Validate a *set* of mutually independent updates.

        Flattened update extensions are sets, not sequences: members may
        exchange rows between keys (including cyclic renames), so the
        semantics is consume-everything-then-produce-everything.  Raises
        :class:`ConstraintViolation` when the set does not fit.
        """
        overlay: Dict[QualifiedKey, Optional[Tuple]] = {}
        # Phase 1: every consumed row must currently be present.
        for update in updates:
            read = update.read_row()
            if read is None:
                continue
            rel = self._schema.relation(update.relation)
            key = (update.relation, rel.key_of(read))
            if key in overlay:
                raise ConstraintViolation(
                    f"update set consumes key {key} twice"
                )
            existing = self.get(update.relation, rel.key_of(read))
            if existing != read:
                raise ConstraintViolation(
                    f"update {update} consumes {read!r} but the instance "
                    f"holds {existing!r}"
                )
            overlay[key] = None
        # Phase 2: every produced row must land on a free (or identical)
        # slot in the post-consumption state.
        for update in updates:
            written = update.written_row()
            if written is None:
                continue
            rel = self._schema.relation(update.relation)
            rel.validate_row(written)
            key = (update.relation, rel.key_of(written))
            target = self._effective(update.relation, rel.key_of(written), overlay)
            if target is not None and target != written:
                raise ConstraintViolation(
                    f"update {update} writes over existing row {target!r}"
                )
            overlay[key] = written
        # Phase 3: foreign keys against the final state.
        for update in updates:
            written = update.written_row()
            if written is not None:
                self._check_foreign_keys(update.relation, written, overlay)

    def can_apply_set(self, updates: Sequence[Update]) -> bool:
        """True if the update set fits this instance (set semantics)."""
        try:
            self._check_set(updates)
        except ConstraintViolation:
            return False
        return True

    def apply_set(self, updates: Sequence[Update]) -> None:
        """Apply a set of mutually independent updates atomically.

        All consumed rows are removed first, then all produced rows are
        stored, so renames between keys (even cyclic ones) apply cleanly.
        """
        self._check_set(updates)
        for update in updates:
            read = update.read_row()
            if read is not None:
                rel = self._schema.relation(update.relation)
                self._remove(update.relation, rel.key_of(read))
        for update in updates:
            written = update.written_row()
            if written is not None:
                rel = self._schema.relation(update.relation)
                self._set(update.relation, rel.key_of(written), written)
        if updates:
            self.mutation_count += 1

    # ------------------------------------------------------------------
    # Internal helpers

    def _effective(
        self,
        relation: str,
        key: Tuple,
        simulated: Dict[QualifiedKey, Optional[Tuple]],
    ) -> Optional[Tuple]:
        """Row under ``key`` as seen through the simulation overlay."""
        qualified = (relation, key)
        if qualified in simulated:
            return simulated[qualified]
        return self.get(relation, key)

    def _check(
        self,
        update: Update,
        simulated: Dict[QualifiedKey, Optional[Tuple]],
    ) -> None:
        """Raise :class:`ConstraintViolation` if ``update`` is inapplicable."""
        rel = self._schema.relation(update.relation)
        if isinstance(update, Insert):
            rel.validate_row(update.row)
            key = rel.key_of(update.row)
            existing = self._effective(update.relation, key, simulated)
            if existing is not None and existing != update.row:
                raise ConstraintViolation(
                    f"insert of {update} collides with existing row {existing!r}"
                )
            self._check_foreign_keys(update.relation, update.row, simulated)
        elif isinstance(update, Delete):
            key = rel.key_of(update.row)
            existing = self._effective(update.relation, key, simulated)
            if existing != update.row:
                raise ConstraintViolation(
                    f"delete of {update} does not match stored row {existing!r}"
                )
        elif isinstance(update, Modify):
            rel.validate_row(update.new_row)
            old_key = rel.key_of(update.old_row)
            existing = self._effective(update.relation, old_key, simulated)
            if existing != update.old_row:
                raise ConstraintViolation(
                    f"modify of {update} does not match stored row {existing!r}"
                )
            new_key = rel.key_of(update.new_row)
            if new_key != old_key:
                target = self._effective(update.relation, new_key, simulated)
                if target is not None:
                    raise ConstraintViolation(
                        f"modify of {update} collides with existing row {target!r}"
                    )
            self._check_foreign_keys(update.relation, update.new_row, simulated)

    def _check_foreign_keys(
        self,
        relation: str,
        row: Tuple,
        simulated: Dict[QualifiedKey, Optional[Tuple]],
    ) -> None:
        rel = self._schema.relation(relation)
        for fk in self._schema.foreign_keys_from(relation):
            referenced = tuple(
                rel.value_of(row, attr) for attr in fk.source_attributes
            )
            target = self._effective(fk.target_relation, referenced, simulated)
            if target is None:
                raise ConstraintViolation(
                    f"row {row!r} of {relation!r} references "
                    f"{fk.target_relation!r} key {referenced!r}, which is absent"
                )

    def _simulate(
        self,
        update: Update,
        simulated: Dict[QualifiedKey, Optional[Tuple]],
    ) -> None:
        """Record the effect of ``update`` in the simulation overlay."""
        rel = self._schema.relation(update.relation)
        if isinstance(update, Insert):
            simulated[(update.relation, rel.key_of(update.row))] = update.row
        elif isinstance(update, Delete):
            simulated[(update.relation, rel.key_of(update.row))] = None
        elif isinstance(update, Modify):
            simulated[(update.relation, rel.key_of(update.old_row))] = None
            simulated[(update.relation, rel.key_of(update.new_row))] = update.new_row

    def _execute(self, update: Update) -> None:
        """Mutate the instance; assumes :meth:`_check` already passed."""
        rel = self._schema.relation(update.relation)
        if isinstance(update, Insert):
            self._set(update.relation, rel.key_of(update.row), update.row)
        elif isinstance(update, Delete):
            self._remove(update.relation, rel.key_of(update.row))
        elif isinstance(update, Modify):
            self._remove(update.relation, rel.key_of(update.old_row))
            self._set(update.relation, rel.key_of(update.new_row), update.new_row)

    # ------------------------------------------------------------------
    # Introspection for metrics and tests

    def snapshot(self) -> Dict[str, Dict[Tuple, Tuple]]:
        """A deep copy of the full state: relation -> key -> row."""
        state: Dict[str, Dict[Tuple, Tuple]] = {}
        for rel in self._schema:
            rows: Dict[Tuple, Tuple] = {}
            for row in self.rows(rel.name):
                rows[rel.key_of(row)] = row
            state[rel.name] = rows
        return state

    def all_keys(self) -> List[QualifiedKey]:
        """Every qualified key currently holding a row."""
        keys: List[QualifiedKey] = []
        for rel in self._schema:
            for row in self.rows(rel.name):
                keys.append((rel.name, rel.key_of(row)))
        return keys
