"""A participant-local instance persisted in sqlite3.

The paper's participants each maintain a local relational database.  This
class provides the same :class:`~repro.instance.base.Instance` interface as
the in-memory variant, backed by a sqlite database (on disk or in memory).
Rows are stored with their key attributes as dedicated indexed columns and
the remaining attributes alongside them.

Values are serialised with ``repr`` and parsed back with
:func:`ast.literal_eval`, so any literal-representable Python value
(strings, numbers, tuples, ...) round-trips faithfully.
"""

from __future__ import annotations

import ast
import sqlite3
from typing import Iterable, Optional, Tuple

from repro.instance.base import Instance
from repro.model.schema import Schema


def _encode(value: object) -> str:
    return repr(value)


def _decode(text: str) -> object:
    return ast.literal_eval(text)


def _table_name(relation: str) -> str:
    # Quote via brackets after sanity-checking to prevent any SQL injection
    # through relation names.
    if not relation.replace("_", "").isalnum():
        raise ValueError(f"relation name {relation!r} is not a valid identifier")
    return f'"rel_{relation}"'


class SqliteInstance(Instance):
    """An :class:`Instance` stored in a sqlite3 database."""

    def __init__(self, schema: Schema, path: str = ":memory:") -> None:
        super().__init__(schema)
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._create_tables()

    def _create_tables(self) -> None:
        with self._conn:
            for rel in self._schema:
                columns = ", ".join(
                    f'"{attr.name}" TEXT NOT NULL' for attr in rel.attributes
                )
                key_cols = ", ".join(f'"{k}"' for k in rel.key)
                self._conn.execute(
                    f"CREATE TABLE IF NOT EXISTS {_table_name(rel.name)} "
                    f"({columns}, PRIMARY KEY ({key_cols}))"
                )

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    def __enter__(self) -> "SqliteInstance":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def get(self, relation: str, key: Tuple) -> Optional[Tuple]:
        """Return the row stored under ``key`` in ``relation``, or None."""
        rel = self._schema.relation(relation)
        where = " AND ".join(f'"{k}" = ?' for k in rel.key)
        cursor = self._conn.execute(
            f"SELECT * FROM {_table_name(relation)} WHERE {where}",
            tuple(_encode(v) for v in key),
        )
        record = cursor.fetchone()
        if record is None:
            return None
        return tuple(_decode(text) for text in record)

    def rows(self, relation: str) -> Iterable[Tuple]:
        """Iterate over all rows of ``relation``."""
        cursor = self._conn.execute(f"SELECT * FROM {_table_name(relation)}")
        for record in cursor:
            yield tuple(_decode(text) for text in record)

    def count(self, relation: str) -> int:
        """Number of rows currently in ``relation``."""
        cursor = self._conn.execute(
            f"SELECT COUNT(*) FROM {_table_name(relation)}"
        )
        return int(cursor.fetchone()[0])

    def _set(self, relation: str, key: Tuple, row: Tuple) -> None:
        rel = self._schema.relation(relation)
        placeholders = ", ".join("?" for _ in rel.attributes)
        with self._conn:
            self._remove(relation, key)
            self._conn.execute(
                f"INSERT INTO {_table_name(relation)} VALUES ({placeholders})",
                tuple(_encode(v) for v in row),
            )

    def _remove(self, relation: str, key: Tuple) -> None:
        rel = self._schema.relation(relation)
        where = " AND ".join(f'"{k}" = ?' for k in rel.key)
        self._conn.execute(
            f"DELETE FROM {_table_name(relation)} WHERE {where}",
            tuple(_encode(v) for v in key),
        )
