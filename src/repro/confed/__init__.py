"""The unified confederation API: config, facade, lifecycle, hooks.

This is the public entry point for building and running a CDSS:

* :class:`~repro.confed.config.ConfederationConfig` — declarative,
  dict-round-trippable configuration naming the store backend (a driver
  registry name), instance backend, peers, trust policies, workload,
  and engine knobs in one place;
* :class:`~repro.confed.confederation.Confederation` — the facade built
  from it: participant lifecycle (``open``/``close``, context-manager
  support), ``snapshot``/``restore`` soft-state reconstruction, the
  evaluation schedule (``run``), and metric reports;
* :class:`~repro.confed.hooks.HookBus` — the event bus participants and
  reconcilers emit into (``on_publish``, ``on_epoch_start``,
  ``on_decision``, ``on_conflict``, ``on_cache_stats``,
  ``on_reconcile``, ``on_epoch_end``); metrics are subscribers, not
  engine plumbing;
* :mod:`~repro.confed.scheduler` — the pluggable epoch schedulers
  ``run()`` executes the schedule through
  (:class:`~repro.confed.scheduler.SerialScheduler` /
  :class:`~repro.confed.scheduler.ThreadedScheduler` /
  :class:`~repro.confed.scheduler.AsyncScheduler`, selected by
  ``config.schedule_mode``).

The legacy ``repro.cdss.CDSS`` / ``repro.cdss.Simulation`` entry points
remain as deprecation shims delegating here.
"""

from repro.confed.config import (
    INSTANCE_BACKENDS,
    NETWORK_CENTRIC_MODES,
    SCHEDULE_MODES,
    ConfederationConfig,
)
from repro.confed.confederation import Confederation, ParticipantSnapshot
from repro.confed.faults import FaultController
from repro.confed.hooks import EVENTS, HookBus
from repro.confed.report import ConfederationReport
from repro.confed.scheduler import (
    AsyncScheduler,
    EpochScheduler,
    SerialScheduler,
    ThreadedScheduler,
    create_scheduler,
)

__all__ = [
    "AsyncScheduler",
    "Confederation",
    "ConfederationConfig",
    "ConfederationReport",
    "EVENTS",
    "EpochScheduler",
    "FaultController",
    "HookBus",
    "INSTANCE_BACKENDS",
    "NETWORK_CENTRIC_MODES",
    "ParticipantSnapshot",
    "SCHEDULE_MODES",
    "SerialScheduler",
    "ThreadedScheduler",
    "create_scheduler",
]
