"""Pluggable epoch schedulers for :meth:`Confederation.run`.

The evaluation schedule — every ``reconciliation_interval`` transactions
each participant publishes and reconciles, for ``rounds`` cycles — used
to be a serial loop inlined in ``Confederation.run()``.  It is now a
strategy object selected from
:attr:`~repro.confed.config.ConfederationConfig.schedule_mode`:

* :class:`SerialScheduler` (``"serial"``, the default) — the paper's
  strict round-robin: one participant at a time edits, publishes, and
  reconciles.  Byte-for-byte the historical behaviour.
* :class:`ThreadedScheduler` (``"threaded"``) — independent
  participants' *edit* and *reconcile* phases run concurrently on a
  thread pool; store access stays serialized by the store's lock (held
  by the :class:`~repro.cdss.participant.Participant` transport around
  every call).  Each round is three phases:

  1. **edit** (parallel) — every participant generates and executes its
     transactions.  Deterministic: the workload generator keeps an
     independent RNG substream per participant, and a participant's
     edits depend only on its own replica.
  2. **publish barrier** (serial, ascending participant id) — epochs are
     allocated in a deterministic global order, so the published prefix
     every reconciliation sees is reproducible run to run.
  3. **reconcile** (parallel) — sessions run concurrently.  After the
     barrier the stable prefix is fixed and a reconciliation only reads
     that prefix plus the participant's own record, so decisions do not
     depend on worker interleaving.

  The mode trades the paper's interleaving for throughput: within a
  round every participant sees every other's publications of that round
  (under the serial schedule, participant 1 reconciles before
  participant 2 publishes).  Reports and decisions are reproducible for
  a given mode; the two modes are distinct, equally valid schedules.

Wall-clock wins come from overlapping whatever does not hold the store
lock: the GIL-free portions of local work (sqlite instances release it)
and, chiefly, store latency — with a ``real_latency`` store the injected
per-message delays are slept outside the lock, and the threaded
scheduler overlaps different participants' waits exactly as concurrent
clients of a real networked store would
(``benchmarks/test_perf_scheduler.py`` pins the win on a 16-peer run).
"""

from __future__ import annotations

import abc
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.errors import ConfigError, SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.cdss.participant import Participant
    from repro.confed.confederation import Confederation
    from repro.confed.config import ConfederationConfig


class EpochScheduler(abc.ABC):
    """Executes a confederation's evaluation schedule."""

    #: The ``schedule_mode`` name this scheduler answers to.
    name: str

    @abc.abstractmethod
    def run(self, confederation: "Confederation") -> None:
        """Run every configured round (and the final reconcile pass)."""

    # ------------------------------------------------------------------

    @staticmethod
    def edit_phase(
        confederation: "Confederation", participant: "Participant"
    ) -> int:
        """One participant's edit phase: generate and execute
        ``reconciliation_interval`` transactions; returns how many were
        actually produced (the generator may skip on a saturated
        domain)."""
        executed = 0
        for _ in range(confederation.config.reconciliation_interval):
            updates = confederation.generator.transaction_updates(
                participant.id, participant.instance
            )
            if updates:
                participant.execute(updates)
                executed += 1
        return executed


class SerialScheduler(EpochScheduler):
    """The paper's strict round-robin schedule (the default)."""

    name = "serial"

    def run(self, confederation: "Confederation") -> None:
        """Drive the strict round-robin schedule to completion."""
        config = confederation.config
        for round_index in range(config.rounds):
            # Resolve each participant by id at its step: a fault-plan
            # restart earlier in the round replaces the object, and the
            # schedule must drive the rebuilt one.
            for pid in [p.id for p in confederation.participants]:
                participant = confederation.participant(pid)
                published = self.edit_phase(confederation, participant)
                participant.publish_and_reconcile()
                confederation.finish_scheduled_epoch(
                    participant, round_index, published
                )
        if config.final_reconcile:
            for participant in confederation.participants:
                participant.reconcile()


class ThreadedScheduler(EpochScheduler):
    """Concurrent edit/reconcile phases with a publish-order barrier."""

    name = "threaded"

    #: Default pool ceiling.  Workers spend most of their time *waiting*
    #: — store calls serialize on the store lock and injected latency is
    #: slept — so the pool is sized by the peer count (capped), not by
    #: the CPU count: overlapping waits needs threads, not cores.
    MAX_DEFAULT_WORKERS = 32

    def __init__(self, workers: Optional[int] = None) -> None:
        """``workers=None`` sizes the pool as
        ``min(peer count, MAX_DEFAULT_WORKERS)`` at run time.

        A non-positive worker count is a configuration error — it used
        to silently fall back to the default sizing through a truthiness
        check, which hid the mistake."""
        if workers is not None and workers < 1:
            raise ConfigError(
                f"ThreadedScheduler needs at least one worker, got {workers}"
            )
        self._workers = workers

    @staticmethod
    def _parallel_phase(
        pool: ThreadPoolExecutor,
        participants: List["Participant"],
        work: Callable[["Participant"], object],
        phase: str,
    ) -> List[object]:
        """Run one phase across the pool, failing fast.

        A worker exception used to surface only while draining
        ``pool.map`` results; now the phase waits with
        ``FIRST_EXCEPTION``, cancels what has not started, lets
        already-running workers drain (so nothing mutates the round
        after the raise), and aborts with a :class:`SchedulerError`
        naming the failing participant — the publish barrier and the
        reconcile phase never run against a half-edited round.
        """
        futures = {pool.submit(work, p): p for p in participants}
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        failures = [
            (futures[future], future.exception())
            for future in done
            if future.exception() is not None
        ]
        if failures:
            for future in pending:
                future.cancel()
            wait(pending)
            participant, error = min(failures, key=lambda pair: pair[0].id)
            raise SchedulerError(
                f"{phase} phase failed for participant {participant.id}: "
                f"{error}"
            ) from error
        return [future.result() for future in futures]

    def run(self, confederation: "Confederation") -> None:
        """Drive the phased parallel schedule to completion."""
        config = confederation.config
        if not confederation.participants:
            return
        workers = (
            self._workers
            if self._workers is not None
            else max(
                1,
                min(len(confederation.participants), self.MAX_DEFAULT_WORKERS),
            )
        )
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="epoch"
        ) as pool:
            for round_index in range(config.rounds):
                # Re-read the roster every round: a fault-plan restart
                # (fired at the end of the previous round's steps)
                # replaces a participant object, and workers must drive
                # the rebuilt one, not a stale reference.
                participants = confederation.participants
                counts: List[int] = self._parallel_phase(
                    pool,
                    participants,
                    lambda p: self.edit_phase(confederation, p),
                    "edit",
                )
                # Deterministic publish-order barrier: epochs allocated
                # in ascending participant id, every round.
                for participant in participants:
                    participant.publish()
                self._parallel_phase(
                    pool, participants, lambda p: p.reconcile(), "reconcile"
                )
                for participant, published in zip(participants, counts):
                    confederation.finish_scheduled_epoch(
                        participant, round_index, published
                    )
            if config.final_reconcile:
                self._parallel_phase(
                    pool,
                    confederation.participants,
                    lambda p: p.reconcile(),
                    "reconcile",
                )


#: Mode name → scheduler class.  ``ConfederationConfig.SCHEDULE_MODES``
#: must name exactly these keys; ``tests/confed/test_scheduler.py`` pins
#: the two in sync.
SCHEDULERS: Dict[str, Type[EpochScheduler]] = {
    SerialScheduler.name: SerialScheduler,
    ThreadedScheduler.name: ThreadedScheduler,
}


def create_scheduler(config: "ConfederationConfig") -> EpochScheduler:
    """The scheduler a config's ``schedule_mode`` names."""
    scheduler_cls = SCHEDULERS.get(config.schedule_mode)
    if scheduler_cls is None:
        raise ConfigError(
            f"unknown schedule mode {config.schedule_mode!r}; "
            f"available: {', '.join(sorted(SCHEDULERS))}"
        )
    if scheduler_cls is ThreadedScheduler:
        return ThreadedScheduler(workers=config.schedule_workers)
    return scheduler_cls()
