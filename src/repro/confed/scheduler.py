"""Pluggable epoch schedulers for :meth:`Confederation.run`.

The evaluation schedule — every ``reconciliation_interval`` transactions
each participant publishes and reconciles, for ``rounds`` cycles — used
to be a serial loop inlined in ``Confederation.run()``.  It is now a
strategy object selected from
:attr:`~repro.confed.config.ConfederationConfig.schedule_mode`:

* :class:`SerialScheduler` (``"serial"``, the default) — the paper's
  strict round-robin: one participant at a time edits, publishes, and
  reconciles.  Byte-for-byte the historical behaviour.
* :class:`ThreadedScheduler` (``"threaded"``) — independent
  participants' *edit* and *reconcile* phases run concurrently on a
  thread pool; store access stays serialized by the store's lock (held
  by the :class:`~repro.cdss.participant.Participant` transport around
  every call).  Each round is three phases:

  1. **edit** (parallel) — every participant generates and executes its
     transactions.  Deterministic: the workload generator keeps an
     independent RNG substream per participant, and a participant's
     edits depend only on its own replica.
  2. **publish barrier** (serial, ascending participant id) — epochs are
     allocated in a deterministic global order, so the published prefix
     every reconciliation sees is reproducible run to run.
  3. **reconcile** (parallel) — sessions run concurrently.  After the
     barrier the stable prefix is fixed and a reconciliation only reads
     that prefix plus the participant's own record, so decisions do not
     depend on worker interleaving.

  The mode trades the paper's interleaving for throughput: within a
  round every participant sees every other's publications of that round
  (under the serial schedule, participant 1 reconciles before
  participant 2 publishes).  Reports and decisions are reproducible for
  a given mode; the modes are distinct, equally valid schedules.
* :class:`AsyncScheduler` (``"async"``) — the same three-phase round
  as the threaded mode, but participants run as asyncio *tasks* on one
  event loop instead of pool threads.  The store's latency clock is
  swapped for an :class:`~repro.net.clock.AsyncLatencyClock` for the
  duration of the run, so injected latency *accrues* to a task while
  its synchronous segment runs and is then awaited — which pipelines
  the publish barrier: epochs are still allocated strictly in
  ascending participant id (tasks start in creation order and the
  lock-held allocation runs synchronously to the first await), but
  participant *i+1* allocates its epoch while participant *i*'s
  latency awaits.  The threaded barrier, by contrast, is serial in
  wall time.  Publish order and per-participant RNG substreams are
  identical to the threaded schedule, so per-participant decision
  streams are byte-identical between the two modes — and because one
  event loop interleaves whole synchronous segments deterministically,
  the async mode's *global* stream is reproducible as well.

Wall-clock wins come from overlapping whatever does not hold the store
lock: the GIL-free portions of local work (sqlite instances release it)
and, chiefly, store latency — with a ``real_latency`` store the injected
per-message delays are paid outside the lock, and the threaded and
async schedulers overlap different participants' waits exactly as
concurrent clients of a real networked store would
(``benchmarks/test_perf_scheduler.py`` pins the threaded win on a
16-peer run and the async-over-threaded win on a 64-peer high-latency
run, where the pipelined barrier dominates).
"""

from __future__ import annotations

import abc
import asyncio
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.errors import ConfigError, SchedulerError
from repro.net.clock import AsyncLatencyClock

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.cdss.participant import Participant
    from repro.confed.confederation import Confederation
    from repro.confed.config import ConfederationConfig


class EpochScheduler(abc.ABC):
    """Executes a confederation's evaluation schedule."""

    #: The ``schedule_mode`` name this scheduler answers to.
    name: str

    @abc.abstractmethod
    def run(self, confederation: "Confederation") -> None:
        """Run every configured round (and the final reconcile pass)."""

    # ------------------------------------------------------------------

    @staticmethod
    def edit_phase(
        confederation: "Confederation", participant: "Participant"
    ) -> int:
        """One participant's edit phase: generate and execute
        ``reconciliation_interval`` transactions; returns how many were
        actually produced (the generator may skip on a saturated
        domain)."""
        executed = 0
        for _ in range(confederation.config.reconciliation_interval):
            updates = confederation.generator.transaction_updates(
                participant.id, participant.instance
            )
            if updates:
                participant.execute(updates)
                executed += 1
        return executed


class SerialScheduler(EpochScheduler):
    """The paper's strict round-robin schedule (the default)."""

    name = "serial"

    def run(self, confederation: "Confederation") -> None:
        """Drive the strict round-robin schedule to completion."""
        config = confederation.config
        for round_index in range(config.rounds):
            # Resolve each participant by id at its step: a fault-plan
            # restart earlier in the round replaces the object, and the
            # schedule must drive the rebuilt one.
            for pid in [p.id for p in confederation.participants]:
                participant = confederation.participant(pid)
                published = self.edit_phase(confederation, participant)
                participant.publish_and_reconcile()
                confederation.finish_scheduled_epoch(
                    participant, round_index, published
                )
        if config.final_reconcile:
            for participant in confederation.participants:
                participant.reconcile()


class ThreadedScheduler(EpochScheduler):
    """Concurrent edit/reconcile phases with a publish-order barrier."""

    name = "threaded"

    #: Default pool ceiling.  Workers spend most of their time *waiting*
    #: — store calls serialize on the store lock and injected latency is
    #: slept — so the pool is sized by the peer count (capped), not by
    #: the CPU count: overlapping waits needs threads, not cores.
    MAX_DEFAULT_WORKERS = 32

    def __init__(self, workers: Optional[int] = None) -> None:
        """``workers=None`` sizes the pool as
        ``min(peer count, MAX_DEFAULT_WORKERS)`` at run time.

        A non-positive worker count is a configuration error — it used
        to silently fall back to the default sizing through a truthiness
        check, which hid the mistake."""
        if workers is not None and workers < 1:
            raise ConfigError(
                f"ThreadedScheduler needs at least one worker, got {workers}"
            )
        self._workers = workers

    @staticmethod
    def _parallel_phase(
        pool: ThreadPoolExecutor,
        participants: List["Participant"],
        work: Callable[["Participant"], object],
        phase: str,
    ) -> List[object]:
        """Run one phase across the pool, failing fast.

        A worker exception used to surface only while draining
        ``pool.map`` results; now the phase waits with
        ``FIRST_EXCEPTION``, cancels what has not started, lets
        already-running workers drain (so nothing mutates the round
        after the raise), and aborts with a :class:`SchedulerError`
        naming the failing participant — the publish barrier and the
        reconcile phase never run against a half-edited round.
        """
        futures = {pool.submit(work, p): p for p in participants}
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        failures = [
            (futures[future], future.exception())
            for future in done
            if future.exception() is not None
        ]
        if failures:
            for future in pending:
                future.cancel()
            wait(pending)
            participant, error = min(failures, key=lambda pair: pair[0].id)
            raise SchedulerError(
                f"{phase} phase failed for participant {participant.id}: "
                f"{error}"
            ) from error
        return [future.result() for future in futures]

    def run(self, confederation: "Confederation") -> None:
        """Drive the phased parallel schedule to completion."""
        config = confederation.config
        if not confederation.participants:
            return
        workers = (
            self._workers
            if self._workers is not None
            else max(
                1,
                min(len(confederation.participants), self.MAX_DEFAULT_WORKERS),
            )
        )
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="epoch"
        ) as pool:
            for round_index in range(config.rounds):
                # Re-read the roster every round: a fault-plan restart
                # (fired at the end of the previous round's steps)
                # replaces a participant object, and workers must drive
                # the rebuilt one, not a stale reference.
                participants = confederation.participants
                counts: List[int] = self._parallel_phase(
                    pool,
                    participants,
                    lambda p: self.edit_phase(confederation, p),
                    "edit",
                )
                # Deterministic publish-order barrier: epochs allocated
                # in ascending participant id, every round.
                for participant in participants:
                    participant.publish()
                self._parallel_phase(
                    pool, participants, lambda p: p.reconcile(), "reconcile"
                )
                for participant, published in zip(participants, counts):
                    confederation.finish_scheduled_epoch(
                        participant, round_index, published
                    )
            if config.final_reconcile:
                self._parallel_phase(
                    pool,
                    confederation.participants,
                    lambda p: p.reconcile(),
                    "reconcile",
                )


class AsyncScheduler(EpochScheduler):
    """Pipelined epochs: participants as tasks on one event loop.

    Structurally the threaded schedule — parallel edit, deterministic
    publish-order barrier, parallel reconcile, fail-fast
    :class:`~repro.errors.SchedulerError` before the barrier — but the
    concurrency primitive is an asyncio task, and injected latency is
    awaited through an :class:`~repro.net.clock.AsyncLatencyClock`
    instead of blocking a pool thread.  Everything synchronous (store
    calls under the lock, session compute, ``HookBus.emit``) runs on
    the single loop thread, so within a phase whole segments interleave
    deterministically in task order; only the latency waits overlap.
    """

    name = "async"

    def __init__(self, workers: Optional[int] = None) -> None:
        """``workers`` caps the in-flight tasks per phase;
        ``None`` lets every participant be in flight at once (tasks are
        cheap — the cap exists for stores where even *queued* work has
        a footprint).

        A non-positive count is a configuration error, exactly as for
        :class:`ThreadedScheduler`."""
        if workers is not None and workers < 1:
            raise ConfigError(
                f"AsyncScheduler needs at least one in-flight task, "
                f"got {workers}"
            )
        self._workers = workers

    async def _parallel_phase(
        self,
        participants: List["Participant"],
        work: Callable[["Participant"], object],
        phase: str,
        clock: AsyncLatencyClock,
        limit: int,
    ) -> List[object]:
        """Run one phase as tasks, failing fast like the threaded pool.

        Tasks are created in ascending participant id and the event
        loop starts them in creation order (``call_soon`` is FIFO; the
        semaphore grants waiters FIFO too), so each participant's
        lock-held synchronous segment runs in a deterministic global
        order — this is what makes the *publish* phase a deterministic
        barrier without serializing its latency: participant *i* hits
        ``clock.drain()`` and awaits while participant *i+1* allocates
        its epoch.  On a failure the pending tasks are cancelled
        (started segments always run to their await point — synchronous
        code cannot be interrupted mid-segment) and the phase aborts
        with a :class:`SchedulerError` naming the lowest-id failing
        participant, matching the threaded scheduler.
        """
        semaphore = asyncio.Semaphore(limit)

        async def step(participant: "Participant") -> object:
            """One participant's phase: sync segment, then the debt."""
            async with semaphore:
                result = work(participant)
                await clock.drain()
                return result

        tasks = [asyncio.create_task(step(p)) for p in participants]
        done, pending = await asyncio.wait(
            tasks, return_when=asyncio.FIRST_EXCEPTION
        )
        failures = [
            (participant, task.exception())
            for participant, task in zip(participants, tasks)
            if task in done and task.exception() is not None
        ]
        if failures:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
            participant, error = min(failures, key=lambda pair: pair[0].id)
            raise SchedulerError(
                f"{phase} phase failed for participant {participant.id}: "
                f"{error}"
            ) from error
        return [task.result() for task in tasks]

    async def _run(self, confederation: "Confederation") -> None:
        """The schedule, inside the event loop ``run`` owns."""
        config = confederation.config
        store = confederation.store
        clock = AsyncLatencyClock()
        # Swap the store's latency clock for the run: payments accrue
        # to the paying task instead of blocking the loop.  (Minimal
        # test doubles without a clock attribute pay nothing anyway.)
        previous = getattr(store, "clock", None)
        if previous is not None:
            store.clock = clock
        try:
            for round_index in range(config.rounds):
                # Re-read the roster every round: a fault-plan restart
                # replaces a participant object, and tasks must drive
                # the rebuilt one, not a stale reference.
                participants = confederation.participants
                limit = self._workers or max(1, len(participants))
                counts: List[int] = await self._parallel_phase(
                    participants,
                    lambda p: self.edit_phase(confederation, p),
                    "edit",
                    clock,
                    limit,
                )
                # Deterministic publish-order barrier, pipelined:
                # epochs allocated in ascending participant id, while
                # earlier participants' latency awaits overlap later
                # allocations (see _parallel_phase).
                await self._parallel_phase(
                    participants, lambda p: p.publish(), "publish", clock, limit
                )
                await self._parallel_phase(
                    participants, lambda p: p.reconcile(), "reconcile",
                    clock, limit,
                )
                for participant, published in zip(participants, counts):
                    confederation.finish_scheduled_epoch(
                        participant, round_index, published
                    )
                # Epoch-end work (fault-plan restarts rebuild replicas
                # through the store) charges latency to *this* task.
                await clock.drain()
            if config.final_reconcile:
                participants = confederation.participants
                await self._parallel_phase(
                    participants,
                    lambda p: p.reconcile(),
                    "reconcile",
                    clock,
                    self._workers or max(1, len(participants)),
                )
        finally:
            if previous is not None:
                store.clock = previous

    def run(self, confederation: "Confederation") -> None:
        """Drive the pipelined schedule on a fresh event loop."""
        if not confederation.participants:
            return
        asyncio.run(self._run(confederation))


#: Mode name → scheduler class.  ``ConfederationConfig.SCHEDULE_MODES``
#: must name exactly these keys; ``tests/confed/test_scheduler.py`` pins
#: the two in sync.
SCHEDULERS: Dict[str, Type[EpochScheduler]] = {
    SerialScheduler.name: SerialScheduler,
    ThreadedScheduler.name: ThreadedScheduler,
    AsyncScheduler.name: AsyncScheduler,
}


def create_scheduler(config: "ConfederationConfig") -> EpochScheduler:
    """The scheduler a config's ``schedule_mode`` names."""
    scheduler_cls = SCHEDULERS.get(config.schedule_mode)
    if scheduler_cls is None:
        raise ConfigError(
            f"unknown schedule mode {config.schedule_mode!r}; "
            f"available: {', '.join(sorted(SCHEDULERS))}"
        )
    if scheduler_cls in (ThreadedScheduler, AsyncScheduler):
        return scheduler_cls(workers=config.schedule_workers)
    return scheduler_cls()
