"""Declarative confederation configuration.

:class:`ConfederationConfig` names everything a confederation needs in
one serialisable place: the store backend (a driver-registry name plus
options), the instance backend, the peers and their trust policies, the
synthetic workload, the engine knobs, and the evaluation schedule.  It
round-trips through plain dicts (``from_dict(to_dict(cfg)) == cfg``) and
the dicts are JSON-safe, so experiment configurations can live in files
and version control instead of scattered constructor calls.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.workload.generator import WorkloadConfig

#: Instance backends a participant's local replica can use, by name.
INSTANCE_BACKENDS: Tuple[str, ...] = ("memory", "sqlite")

#: Accepted values of ``ConfederationConfig.network_centric``.  The
#: named forms are canonical since PR 5: ``"client"`` (the paper's
#: client-centric reconciliation) and ``"store"`` (the store computes
#: per-participant extensions and conflict adjacency —
#: ``begin_network_reconciliation``).  The booleans are their legacy
#: spellings and round-trip unchanged.
NETWORK_CENTRIC_MODES: Tuple[object, ...] = (False, True, "client", "store")

#: Epoch-scheduler modes :meth:`repro.confed.Confederation.run` can use
#: (see :mod:`repro.confed.scheduler`).
SCHEDULE_MODES: Tuple[str, ...] = ("serial", "threaded", "async")


@dataclass
class ConfederationConfig:
    """Everything needed to build and run one confederation.

    * ``store`` — a store-driver name from
      :func:`repro.store.registry.available_stores`; ``store_options``
      are passed to the driver's factory (e.g. ``path`` for the central
      store, ``hosts`` for the DHT);
    * ``instance_backend`` — each participant's local replica:
      ``"memory"`` or ``"sqlite"``;
    * ``peers`` — participant ids, in registration order;
    * ``trust`` — explicit priorities per peer
      (``{pid: {other_pid: priority}}``); ``None`` means the evaluation
      section's setting: every peer trusts every other at
      ``trust_priority``, so conflicts can only be resolved manually;
    * ``network_centric`` / ``engine_caching`` — engine knobs.
      ``network_centric`` picks Figure 3's reconciliation column:
      ``"client"`` (or ``False``, the default) computes extensions and
      conflicts at each participant; ``"store"`` (or the legacy ``True``)
      asks the store for fully-assembled batches
      (``begin_network_reconciliation`` — requires a backend declaring
      ``network_centric_batches``, which every built-in backend
      does).  ``engine_caching`` toggles the PR 1 incremental caches;
    * ``workload`` plus ``reconciliation_interval`` / ``rounds`` /
      ``final_reconcile`` — the evaluation schedule
      :meth:`repro.confed.Confederation.run` executes;
    * ``schedule_mode`` / ``schedule_workers`` — which epoch scheduler
      executes it: ``"serial"`` (the paper's strict round-robin),
      ``"threaded"`` (independent participants' edit and reconcile
      phases run concurrently on a thread pool between deterministic
      publish-order barriers; ``schedule_workers`` caps the pool, None
      sizes it from the peer count), or ``"async"`` (participants run
      as asyncio tasks on one event loop, injected latency is awaited
      through the store's :class:`~repro.net.clock.AsyncLatencyClock`,
      and the publish barrier pipelines; ``schedule_workers`` caps the
      in-flight tasks, None lets every participant be in flight).  See
      :mod:`repro.confed.scheduler`;
    * ``faults`` — an optional :class:`repro.net.faults.FaultPlan`: the
      seeded, declarative chaos schedule the run should suffer (host
      crashes and recoveries pinned to epochs, message drops /
      duplicates / latency spikes by kind, participant crash-restarts).
      ``Confederation.open()`` wires the plan's message faults into the
      store's simulated network and executes its epoch-scheduled
      actions through :class:`repro.confed.faults.FaultController`.
    """

    store: str = "memory"
    store_options: Dict[str, object] = field(default_factory=dict)
    instance_backend: str = "memory"
    peers: Tuple[int, ...] = ()
    trust: Optional[Dict[int, Dict[int, int]]] = None
    trust_priority: int = 1
    network_centric: Union[bool, str] = False
    engine_caching: bool = True
    workload: Optional[WorkloadConfig] = None
    reconciliation_interval: int = 4
    rounds: int = 4
    final_reconcile: bool = False
    schedule_mode: str = "serial"
    schedule_workers: Optional[int] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        self.peers = tuple(self.peers)
        if self.trust is not None:
            self.trust = {
                int(pid): {int(other): int(pri) for other, pri in edges.items()}
                for pid, edges in self.trust.items()
            }

    # ------------------------------------------------------------------
    # Validation

    def validate(self) -> "ConfederationConfig":
        """Check internal consistency; returns self.

        Store-name resolution is validated where the store is built
        (the registry raises :class:`~repro.errors.ConfigError` for
        unknown backends); this checks everything that does not need
        the registry.
        """
        if self.instance_backend not in INSTANCE_BACKENDS:
            raise ConfigError(
                f"unknown instance backend {self.instance_backend!r}; "
                f"available: {', '.join(INSTANCE_BACKENDS)}"
            )
        if len(set(self.peers)) != len(self.peers):
            raise ConfigError(f"duplicate peer ids in {self.peers!r}")
        if self.trust is not None:
            known = set(self.peers)
            for pid, edges in self.trust.items():
                unknown = ({pid} | set(edges)) - known
                if unknown:
                    raise ConfigError(
                        f"trust policy references unknown peers {sorted(unknown)}"
                    )
        if self.reconciliation_interval < 0:
            raise ConfigError("reconciliation_interval must be >= 0")
        if self.rounds < 0:
            raise ConfigError("rounds must be >= 0")
        if self.schedule_mode not in SCHEDULE_MODES:
            raise ConfigError(
                f"unknown schedule mode {self.schedule_mode!r}; "
                f"available: {', '.join(SCHEDULE_MODES)}"
            )
        if self.schedule_workers is not None and self.schedule_workers < 1:
            raise ConfigError("schedule_workers must be >= 1 (or None)")
        if not any(
            type(self.network_centric) is type(mode)
            and self.network_centric == mode
            for mode in NETWORK_CENTRIC_MODES
        ):
            raise ConfigError(
                f"unknown network_centric mode {self.network_centric!r}; "
                f"accepted: False/'client' (client-centric), "
                f"True/'store' (store-computed batches)"
            )
        if self.faults is not None:
            self.faults.validate()
            known = set(self.peers)
            for restart in self.faults.restarts:
                if known and restart.participant not in known:
                    raise ConfigError(
                        f"fault plan restarts unknown participant "
                        f"{restart.participant}; peers: {sorted(known)}"
                    )
        return self

    @property
    def network_centric_store(self) -> bool:
        """True when the config asks for store-computed batches
        (``network_centric`` is ``"store"`` or the legacy ``True``)."""
        return self.network_centric is True or self.network_centric == "store"

    # ------------------------------------------------------------------
    # Dict round-trip

    def to_dict(self) -> Dict[str, object]:
        """A plain, JSON-safe dict representation.

        Mapping keys become strings (JSON objects only have string
        keys); :meth:`from_dict` converts them back, so the round trip
        — including a ``json.dumps``/``json.loads`` detour — is exact.
        """
        return {
            "store": self.store,
            "store_options": dict(self.store_options),
            "instance_backend": self.instance_backend,
            "peers": list(self.peers),
            "trust": None
            if self.trust is None
            else {
                str(pid): {str(other): pri for other, pri in edges.items()}
                for pid, edges in self.trust.items()
            },
            "trust_priority": self.trust_priority,
            "network_centric": self.network_centric,
            "engine_caching": self.engine_caching,
            "workload": None if self.workload is None else asdict(self.workload),
            "reconciliation_interval": self.reconciliation_interval,
            "rounds": self.rounds,
            "final_reconcile": self.final_reconcile,
            "schedule_mode": self.schedule_mode,
            "schedule_workers": self.schedule_workers,
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConfederationConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.errors.ConfigError` — a typo
        in a config file must not silently fall back to a default.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown config keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        if kwargs.get("peers") is not None:
            kwargs["peers"] = tuple(int(pid) for pid in kwargs["peers"])
        workload = kwargs.get("workload")
        if isinstance(workload, Mapping):
            workload_fields = {f.name for f in fields(WorkloadConfig)}
            unknown = set(workload) - workload_fields
            if unknown:
                raise ConfigError(
                    f"unknown workload keys {sorted(unknown)}; "
                    f"known: {sorted(workload_fields)}"
                )
            kwargs["workload"] = WorkloadConfig(**workload)
        faults = kwargs.get("faults")
        if isinstance(faults, Mapping):
            kwargs["faults"] = FaultPlan.from_dict(faults)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Convenience constructors

    @classmethod
    def evaluation(
        cls, participants: int = 10, **overrides
    ) -> "ConfederationConfig":
        """The evaluation-section shape: peers ``1..n``, mutual trust."""
        return cls(peers=tuple(range(1, participants + 1)), **overrides)
