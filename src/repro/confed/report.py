"""The metrics report of one confederation run.

Carries the two metrics of the paper's evaluation section — the *state
ratio* and per-participant reconciliation timings split into store and
local components — plus the engine cache counters.  The timing and
cache data are gathered by hook-bus subscribers
(:mod:`repro.metrics.subscribers`), not by reaching into participant
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.cache import CacheStats
from repro.metrics.subscribers import FaultSummary
from repro.metrics.timing import TimingAggregate


@dataclass
class ConfederationReport:
    """Everything a benchmark needs from one confederation run.

    ``config`` is whatever configuration object drove the run (a
    :class:`~repro.confed.config.ConfederationConfig`, or the legacy
    ``SimulationConfig`` when produced through the deprecated shim).
    """

    config: object
    state_ratio: float
    timings: Dict[int, TimingAggregate]
    transactions_published: int
    store_messages: int
    #: Which epoch scheduler identity produced the run (a
    #: ``schedule_mode`` name: ``"serial"``, ``"threaded"`` or
    #: ``"async"``).  Decision streams are only comparable between
    #: runs of the same schedule, so a report names its own.
    scheduler: str = "serial"
    #: Engine cache counters summed over all participants.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: Fault activity of the run: injected faults by action, store
    #: retries, degraded fallbacks, recoveries.  All zero on a
    #: fault-free run (the default).
    faults: FaultSummary = field(default_factory=FaultSummary)
    #: Wire-protocol mix, from the store's simulated network when it
    #: has one (empty for in-process stores): fragments delivered per
    #: message kind, and that kind's share of the delivered bytes.
    #: Together they show *where* a mode's traffic goes — e.g. the
    #: Figure-3 byte trade of the network-centric DHT path.
    kind_counts: Dict[str, int] = field(default_factory=dict)
    kind_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_total_seconds_per_participant(self) -> float:
        """Average, over participants, of their total reconciliation time."""
        if not self.timings:
            return 0.0
        totals = [agg.total_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_store_seconds_per_participant(self) -> float:
        """Average total store time per participant."""
        if not self.timings:
            return 0.0
        totals = [agg.total_store_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_local_seconds_per_participant(self) -> float:
        """Average total local time per participant."""
        if not self.timings:
            return 0.0
        totals = [agg.total_local_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_seconds_per_reconciliation(self) -> float:
        """Average time of a single reconciliation across all peers."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_seconds for agg in self.timings.values())
        return total / count

    @property
    def mean_store_seconds_per_reconciliation(self) -> float:
        """Average store time of a single reconciliation."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_store_seconds for agg in self.timings.values())
        return total / count

    @property
    def mean_local_seconds_per_reconciliation(self) -> float:
        """Average local time of a single reconciliation."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_local_seconds for agg in self.timings.values())
        return total / count
