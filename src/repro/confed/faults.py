"""Epoch-scheduled fault execution for confederations.

The message-level half of a :class:`~repro.net.faults.FaultPlan` (drops,
duplicates, latency spikes) runs inside the simulated network via
:class:`~repro.net.faults.FaultInjector`.  The *lifecycle* half — host
crashes, host recoveries, and participant crash-restarts pinned to
epochs — needs an owner that can reach the store and the participant
registry.  That owner is :class:`FaultController`: the confederation
ticks it after every schedule step
(:meth:`repro.confed.confederation.Confederation.finish_scheduled_epoch`)
and it fires every pending action whose epoch the store has reached.

Actions fire in ``(epoch, declaration order)`` order, serially, between
schedule steps — never concurrently with a reconciliation, so even the
threaded scheduler observes crashes only at step boundaries.  Execution
is by plain delegation:

* ``crash`` → ``store.fail_host(host)`` (the host's state is wiped; the
  DHT's successor replicas keep serving — see
  :mod:`repro.store.dht`);
* ``recover`` → ``store.recover_host(host)`` (rejoin the ring and
  rebalance records back);
* ``restart`` → ``confederation.restore(participant)`` — the paper's
  soft-state claim exercised mid-run: the participant object is
  discarded and rebuilt entirely from the update store.

A restart emits a ``recovery`` hook event (``kind="participant"``); the
store surface emits the ``fault``/``recovery`` events for crashes.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, List, Tuple

from repro.net.faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.confed.confederation import Confederation


class FaultController:
    """Fires a plan's epoch-scheduled crashes, recoveries, and restarts."""

    def __init__(self, plan: FaultPlan) -> None:
        actions: List[Tuple[int, int, str, object]] = []
        seq = 0
        for crash in plan.crashes:
            actions.append((crash.at_epoch, seq, "crash", crash.host))
            seq += 1
            if crash.recover_at_epoch is not None:
                actions.append(
                    (crash.recover_at_epoch, seq, "recover", crash.host)
                )
                seq += 1
        for restart in plan.restarts:
            actions.append(
                (restart.at_epoch, seq, "restart", restart.participant)
            )
            seq += 1
        actions.sort()
        self._pending = actions

    @property
    def pending(self) -> Tuple[Tuple[int, str, object], ...]:
        """Actions not yet fired, as ``(epoch, action, target)`` triples
        in firing order."""
        return tuple(
            (epoch, action, target)
            for epoch, _seq, action, target in self._pending
        )

    def tick(self, confederation: "Confederation") -> None:
        """Fire every pending action whose epoch the store has reached.

        Called between schedule steps; idempotent when nothing is due.
        """
        store = confederation.store
        # Crash/recover mutate store state directly (no participant
        # transport in between), so hold the store lock for the check
        # and the action.  ``restore`` runs *outside* the lock: it
        # routes through ``_store_call`` internally (the lock is
        # reentrant, but restore also pays simulated latency, which must
        # never be slept under the lock).  Minimal test doubles without
        # a ``lock`` attribute are called directly, mirroring
        # ``Participant._store_call``.
        lock = getattr(store, "lock", None)
        while True:
            with lock if lock is not None else nullcontext():
                due = bool(
                    self._pending
                    and self._pending[0][0] <= store.current_epoch()
                )
                if not due:
                    return
                _epoch, _seq, action, target = self._pending.pop(0)
                if action == "crash":
                    store.fail_host(target)
                    continue
                if action == "recover":
                    store.recover_host(target)
                    continue
            # restart — outside the lock (see above)
            confederation.restore(target)
            confederation.hooks.emit(
                "recovery", kind="participant", participant=target
            )
