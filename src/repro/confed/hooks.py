"""The confederation event hook bus.

One :class:`HookBus` per confederation: participants and their
reconcilers emit lifecycle events into it, and any number of subscribers
observe them.  The built-in metric collectors
(:mod:`repro.metrics.subscribers`) are ordinary subscribers — the bus is
the one observability surface, replacing ad-hoc counter plumbing.

Events and payloads (all payload entries are keyword arguments):

=================  =====================================================
``publish``        ``participant``, ``epoch``, ``transactions`` — a peer
                   published a transaction batch.
``epoch_start``    ``participant``, ``recno``, ``network_centric`` — a
                   reconciliation run is about to process its batch
                   (``network_centric`` is True when the store
                   pre-assembled it).
``decision``       ``participant``, ``recno``, ``tid``, ``decision`` —
                   one root transaction's verdict
                   (:class:`repro.core.decisions.Decision`); emitted in
                   publish order.
``conflict``       ``participant``, ``recno``, ``group`` — one open
                   conflict group after the run, in stable group order.
``cache_stats``    ``participant``, ``recno``, ``stats`` — the run's
                   :class:`repro.core.cache.CacheStats` counter delta.
``reconcile``      ``participant``, ``recno``, ``result``, ``timing`` —
                   a reconciliation finished; carries the full
                   :class:`~repro.core.decisions.ReconcileResult` and
                   the :class:`~repro.cdss.participant.ReconcileTiming`.
``epoch_end``      ``participant``, ``round``, ``published``,
                   ``total_published`` — the schedule finished one
                   participant's publish-and-reconcile step;
                   ``published`` counts the transactions that step
                   published and ``total_published`` the running total
                   across the run (subscribers observe schedule
                   progress instead of polling the report).
``fault``          ``action`` plus fault-specific context — one injected
                   fault fired: a message-level injection carries
                   ``kind``/``sender``/``recipient``
                   (:class:`repro.net.faults.FaultInjector`), a host
                   crash carries ``host``
                   (:meth:`repro.store.dht.DhtUpdateStore.fail_host`).
``retry``          ``kind``, ``recipient``, ``attempt`` — a store
                   request went unanswered and is being re-sent
                   (attempt numbering starts at 1).
``degraded``       store-specific context (e.g. ``participant``,
                   ``roots``) — a resilient path gave up on its
                   preferred strategy and fell back to a slower but
                   correct one.
``recovery``       ``kind`` plus context — a previously failed
                   component rejoined (``kind="host"`` carries
                   ``host``; ``kind="participant"`` carries
                   ``participant``).
=================  =====================================================

Delivery is synchronous and in subscription order; handler exceptions
propagate to the emitting call (hooks are part of the run, not
best-effort logging).  Handlers must accept their payload as keyword
arguments — accepting ``**_`` for unused entries keeps them forward
compatible with payload growth.

Emission is serialized by a reentrant lock: the threaded epoch
scheduler emits from several worker threads, and subscribers (the
metric collectors) must never see interleaved handler runs.  Under the
default serial schedule the lock is uncontended.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError

#: Every event the bus can carry, in lifecycle order.
EVENTS: Tuple[str, ...] = (
    "publish",
    "epoch_start",
    "decision",
    "conflict",
    "cache_stats",
    "reconcile",
    "epoch_end",
    "fault",
    "retry",
    "degraded",
    "recovery",
)

Handler = Callable[..., None]


class HookBus:
    """A synchronous, ordered publish/subscribe bus for lifecycle events."""

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Handler]] = {}
        self._emit_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Subscription

    def subscribe(self, event: str, handler: Handler) -> Handler:
        """Register ``handler`` for ``event``; returns the handler so the
        call can be used as a decorator.  Unknown event names raise
        :class:`~repro.errors.ConfigError` (silent typos would otherwise
        subscribe to nothing)."""
        if event not in EVENTS:
            raise ConfigError(
                f"unknown hook event {event!r}; known events: {', '.join(EVENTS)}"
            )
        self._handlers.setdefault(event, []).append(handler)
        return handler

    def unsubscribe(self, event: str, handler: Handler) -> None:
        """Remove a previously subscribed handler (no-op if absent)."""
        handlers = self._handlers.get(event)
        if handlers and handler in handlers:
            handlers.remove(handler)

    # Named shorthands — the documented hook points of the public API.

    def on_publish(self, handler: Handler) -> Handler:
        """Subscribe to ``publish`` events."""
        return self.subscribe("publish", handler)

    def on_epoch_start(self, handler: Handler) -> Handler:
        """Subscribe to ``epoch_start`` events."""
        return self.subscribe("epoch_start", handler)

    def on_decision(self, handler: Handler) -> Handler:
        """Subscribe to ``decision`` events."""
        return self.subscribe("decision", handler)

    def on_conflict(self, handler: Handler) -> Handler:
        """Subscribe to ``conflict`` events."""
        return self.subscribe("conflict", handler)

    def on_cache_stats(self, handler: Handler) -> Handler:
        """Subscribe to ``cache_stats`` events."""
        return self.subscribe("cache_stats", handler)

    def on_reconcile(self, handler: Handler) -> Handler:
        """Subscribe to ``reconcile`` events."""
        return self.subscribe("reconcile", handler)

    def on_epoch_end(self, handler: Handler) -> Handler:
        """Subscribe to ``epoch_end`` events."""
        return self.subscribe("epoch_end", handler)

    def on_fault(self, handler: Handler) -> Handler:
        """Subscribe to ``fault`` events."""
        return self.subscribe("fault", handler)

    def on_retry(self, handler: Handler) -> Handler:
        """Subscribe to ``retry`` events."""
        return self.subscribe("retry", handler)

    def on_degraded(self, handler: Handler) -> Handler:
        """Subscribe to ``degraded`` events."""
        return self.subscribe("degraded", handler)

    def on_recovery(self, handler: Handler) -> Handler:
        """Subscribe to ``recovery`` events."""
        return self.subscribe("recovery", handler)

    # ------------------------------------------------------------------
    # Emission

    def has(self, event: str) -> bool:
        """True when ``event`` has at least one subscriber.  Emitters use
        this to skip payload construction loops on a quiet bus."""
        return bool(self._handlers.get(event))

    def emit(self, event: str, **payload) -> None:
        """Deliver ``payload`` to every subscriber of ``event``, in
        subscription order.  Handler runs are serialized across threads
        (see the module docstring)."""
        handlers = self._handlers.get(event)
        if not handlers:
            return
        with self._emit_lock:
            for handler in list(handlers):
                handler(**payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {
            event: len(handlers)
            for event, handlers in self._handlers.items()
            if handlers
        }
        return f"HookBus({counts!r})"
