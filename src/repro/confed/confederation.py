"""The :class:`Confederation` facade: one object that owns a CDSS.

Built from a declarative :class:`~repro.confed.config.ConfederationConfig`,
a confederation owns the participant lifecycle:

* ``open()`` builds the store through the driver registry, wires the
  event hook bus and its metric collectors, and registers the
  configured peers with their trust policies; ``close()`` releases the
  store.  Both are also available as a context manager;
* participants publish/reconcile/resolve exactly as before — the facade
  adds by-name store selection, capability validation, and observability,
  not new reconciliation semantics;
* ``snapshot()``/``restore()`` wrap the soft-state reconstruction of
  Section 5.2 (:meth:`repro.cdss.participant.Participant.rebuild`):
  everything a participant is can be re-derived from the update store;
* ``run()`` executes the evaluation-section schedule through a
  pluggable epoch scheduler (:mod:`repro.confed.scheduler` — the
  paper's serial round-robin, or a threaded schedule that overlaps
  independent participants' work) and ``report()`` collects the
  paper's metrics from hook-bus subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdss.participant import Participant
from repro.confed.config import ConfederationConfig
from repro.confed.faults import FaultController
from repro.confed.hooks import HookBus
from repro.confed.report import ConfederationReport
from repro.confed.scheduler import create_scheduler
from repro.errors import ConfigError
from repro.instance.base import Instance
from repro.instance.sqlite_instance import SqliteInstance
from repro.metrics.state_ratio import state_ratio
from repro.metrics.subscribers import (
    CacheStatsCollector,
    FaultCollector,
    TimingCollector,
)
from repro.metrics.timing import aggregate_timings
from repro.net.faults import FaultInjector, FaultPlan
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.policy.acceptance import TrustPolicy
from repro.store.base import UpdateStore
from repro.store.registry import create_store
from repro.workload.generator import WorkloadConfig, WorkloadGenerator, curated_schema


@dataclass(frozen=True)
class ParticipantSnapshot:
    """What the update store knows about one participant's decisions.

    This is exactly the state the paper's soft-state claim says suffices
    to rebuild a participant: applied transactions (in publish order),
    rejected and deferred ids, and the last reconciliation epoch.
    """

    participant: int
    applied: Tuple[TransactionId, ...]
    rejected: Tuple[TransactionId, ...]
    deferred: Tuple[TransactionId, ...]
    last_recno: int


class Confederation:
    """A confederation of participants over one update store.

    Construct from a config (optionally with a pre-built ``store`` or a
    non-default ``schema``), then ``open()`` — or use it as a context
    manager::

        config = ConfederationConfig(store="central", peers=(1, 2, 3))
        with Confederation.from_config(config) as confed:
            confed.participant(1).execute([...])
            confed.participant(1).publish_and_reconcile()
    """

    def __init__(
        self,
        config: Optional[ConfederationConfig] = None,
        store: Optional[UpdateStore] = None,
        schema: Optional[Schema] = None,
        hooks: Optional[HookBus] = None,
    ) -> None:
        """``store`` adopts an existing store (the config's ``store``
        name and ``store_options`` are then ignored, and ``close()``
        leaves it to its owner); ``schema`` overrides the default
        evaluation schema when the facade builds the store itself."""
        self.config = (config or ConfederationConfig()).validate()
        self.hooks = hooks or HookBus()
        self._store: Optional[UpdateStore] = store
        self._owns_store = store is None
        self._schema = schema if store is None else store.schema
        self._participants: Dict[int, Participant] = {}
        self._opened = False
        self._closed = False
        self._transactions_published = 0
        self._generator: Optional[WorkloadGenerator] = None
        # Metric collectors: ordinary bus subscribers (see
        # repro.metrics.subscribers) — report() reads these.
        self._timing = TimingCollector().attach(self.hooks)
        self._cache_stats = CacheStatsCollector().attach(self.hooks)
        self._fault_collector = FaultCollector().attach(self.hooks)
        self._fault_controller: Optional[FaultController] = None

    @classmethod
    def from_config(
        cls,
        config: ConfederationConfig,
        schema: Optional[Schema] = None,
        hooks: Optional[HookBus] = None,
    ) -> "Confederation":
        """Build and ``open()`` a confederation from a config."""
        return cls(config, schema=schema, hooks=hooks).open()

    # ------------------------------------------------------------------
    # Lifecycle

    def open(self) -> "Confederation":
        """Build the store and register the configured peers.

        Idempotence is deliberate ambiguity-free: opening twice, or
        reopening after ``close()``, raises
        :class:`~repro.errors.ConfigError`.
        """
        if self._closed:
            raise ConfigError("this confederation has been closed")
        if self._opened:
            raise ConfigError("this confederation is already open")
        if self._store is None:
            schema = self._schema if self._schema is not None else curated_schema()
            self._store = create_store(
                self.config.store, schema, **self.config.store_options
            )
        if (
            self.config.network_centric_store
            and not self._store.capabilities.network_centric_batches
        ):
            raise ConfigError(
                f"store backend {type(self._store).__name__} does not "
                f"support store-computed reconciliation batches "
                f"(capabilities.network_centric_batches is False)"
            )
        # The store surfaces fault / retry / degraded / recovery events
        # on the confederation's bus.
        self._store.hooks = self.hooks
        if self.config.faults is not None and not self.config.faults.is_empty():
            self._install_faults(self.config.faults)
        self._opened = True
        for pid in self.config.peers:
            self.add_participant(pid, self._policy_for(pid))
        return self

    def _install_faults(self, plan: FaultPlan) -> None:
        """Wire a fault plan into the store, or refuse it loudly.

        A plan naming faults the store cannot suffer is a configuration
        error at ``open()``, not a silent no-op at fire time: message
        faults need the store's simulated network, host crashes need the
        ``fail_host``/``recover_host`` surface.  The checks are
        duck-typed (capability, not concrete type) so third-party
        drivers qualify by exposing the same surface.
        """
        store = self._store
        if plan.messages:
            network = getattr(store, "network", None)
            if network is None:
                raise ConfigError(
                    f"store backend {type(store).__name__} has no "
                    f"simulated network; message faults need a networked "
                    f"store (e.g. 'dht')"
                )
            network.injector = FaultInjector(
                plan,
                latency=store.message_latency,
                emit=lambda **payload: self.hooks.emit("fault", **payload),
            )
        if plan.crashes and not (
            hasattr(store, "fail_host") and hasattr(store, "recover_host")
        ):
            raise ConfigError(
                f"store backend {type(store).__name__} cannot crash or "
                f"recover hosts; host-crash faults need the "
                f"fail_host/recover_host surface (e.g. 'dht')"
            )
        self._fault_controller = FaultController(plan)

    def close(self) -> None:
        """Release the store (if this confederation created it).

        Idempotent; after closing, the confederation cannot be reused —
        rebuild one from the same config instead (the store holds
        everything needed, per Section 5.2).
        """
        if self._closed:
            return
        self._closed = True
        store = self._store
        if store is not None and self._owns_store:
            close = getattr(store, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Confederation":
        if not self._opened:
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigError("this confederation has been closed")
        if not self._opened:
            raise ConfigError(
                "this confederation is not open yet; call open() or use "
                "Confederation.from_config(...)"
            )

    # ------------------------------------------------------------------
    # Participants

    @staticmethod
    def _mutual_policy(pid: int, ids: Sequence[int], priority: int) -> TrustPolicy:
        """Everyone-trusts-everyone at one priority, for peer ``pid``."""
        policy = TrustPolicy()
        for other in ids:
            if other != pid:
                policy.trust_participant(other, priority)
        return policy

    def _policy_for(self, pid: int) -> TrustPolicy:
        """The configured trust policy of one peer."""
        if self.config.trust is None:
            return self._mutual_policy(
                pid, self.config.peers, self.config.trust_priority
            )
        policy = TrustPolicy()
        for other, priority in self.config.trust.get(pid, {}).items():
            policy.trust_participant(other, priority)
        return policy

    def _make_instance(self) -> Optional[Instance]:
        """A fresh local replica per the configured instance backend
        (``None`` lets :class:`Participant` build its default)."""
        if self.config.instance_backend == "sqlite":
            return SqliteInstance(self.store.schema)
        return None

    def add_participant(
        self,
        participant_id: int,
        policy: TrustPolicy,
        instance: Optional[Instance] = None,
    ) -> Participant:
        """Create and register a participant.

        A duplicate id is a caller error —
        :class:`~repro.errors.ConfigError`, not a store fault.
        """
        self._ensure_open()
        if participant_id in self._participants:
            raise ConfigError(
                f"participant {participant_id} already exists in this confederation"
            )
        participant = Participant(
            participant_id,
            self.store,
            policy,
            instance if instance is not None else self._make_instance(),
            network_centric=self.config.network_centric_store,
            engine_caching=self.config.engine_caching,
            hooks=self.hooks,
        )
        self._participants[participant_id] = participant
        return participant

    def add_mutually_trusting_participants(
        self, ids: Sequence[int], priority: int = 1
    ) -> List[Participant]:
        """The evaluation-section setup: everyone trusts everyone equally.

        Equal priorities mean conflicts "must be manually rather than
        automatically resolved" — the configuration all the paper's
        experiments use.
        """
        return [
            self.add_participant(pid, self._mutual_policy(pid, ids, priority))
            for pid in ids
        ]

    def participant(self, participant_id: int) -> Participant:
        """Look up a participant by id."""
        self._ensure_open()
        try:
            return self._participants[participant_id]
        except KeyError:
            raise ConfigError(
                f"no participant {participant_id} in this confederation"
            ) from None

    @property
    def participants(self) -> List[Participant]:
        """All participants, ordered by id."""
        return [self._participants[pid] for pid in sorted(self._participants)]

    def __len__(self) -> int:
        return len(self._participants)

    # ------------------------------------------------------------------
    # Store access

    @property
    def store(self) -> UpdateStore:
        """The shared update store."""
        if self._store is None:
            raise ConfigError(
                "the store is built by open(); call open() first"
            )
        return self._store

    @property
    def schema(self) -> Schema:
        """The shared schema."""
        return self.store.schema

    # ------------------------------------------------------------------
    # Soft-state snapshot / restore (Section 5.2)

    def snapshot(self) -> Dict[int, ParticipantSnapshot]:
        """Per-participant decision state as recorded by the store.

        Requires a store that supports ``decided_transactions`` (all
        built-in backends do; a store that cannot enumerate decisions
        raises ``NotImplementedError`` per the base contract).
        """
        self._ensure_open()
        snapshots = {}
        # Snapshot reads are store access like any other: take the
        # store lock so a concurrently scheduled epoch cannot interleave
        # (the lock is reentrant and uncontended outside threaded runs).
        with self.store.lock:
            for participant in self.participants:
                applied, rejected, deferred = self.store.decided_transactions(
                    participant.id
                )
                snapshots[participant.id] = ParticipantSnapshot(
                    participant=participant.id,
                    applied=tuple(t.tid for t in applied),
                    rejected=tuple(rejected),
                    deferred=tuple(deferred),
                    last_recno=self.store.last_reconciliation_epoch(
                        participant.id
                    ),
                )
        return snapshots

    def restore(
        self,
        participant_id: Optional[int] = None,
        instance: Optional[Instance] = None,
    ):
        """Rebuild participants entirely from the update store.

        Wraps :meth:`Participant.rebuild`: the applied transactions are
        replayed in publish order into a fresh instance and the
        rejected/deferred soft state is reconstructed.  With an id,
        restores (and returns) that one participant; with none, restores
        every participant and returns them as a dict.  The restored
        objects replace the live ones and keep their policies and the
        confederation's hook bus.

        The replayed-into replica is ``instance`` when given (single-id
        form only), else a default-constructed instance of the live
        participant's type — a replica type whose construction needs
        more than the schema (e.g. a file-backed ``SqliteInstance``
        path) must be supplied explicitly.
        """
        self._ensure_open()
        if participant_id is not None:
            return self._restore_one(participant_id, instance)
        if instance is not None:
            raise ConfigError(
                "pass instance= only when restoring a single participant"
            )
        return {pid: self._restore_one(pid) for pid in sorted(self._participants)}

    def _restore_one(
        self, participant_id: int, instance: Optional[Instance] = None
    ) -> Participant:
        current = self.participant(participant_id)
        if instance is None:
            # A fresh, empty replica of the same type the live
            # participant used — an explicitly supplied SqliteInstance
            # must not silently downgrade to the config's default
            # backend.
            try:
                instance = type(current.instance)(self.store.schema)
            except TypeError as exc:
                raise ConfigError(
                    f"cannot default-construct a {type(current.instance).__name__} "
                    f"replica for participant {participant_id}; pass one via "
                    f"restore(participant_id, instance=...)"
                ) from exc
        rebuilt = Participant.rebuild(
            participant_id,
            self.store,
            current.policy,
            instance,
            network_centric=self.config.network_centric_store,
            engine_caching=self.config.engine_caching,
            hooks=self.hooks,
        )
        self._participants[participant_id] = rebuilt
        return rebuilt

    # ------------------------------------------------------------------
    # Metrics

    def state_ratio(self, relation: Optional[str] = None) -> float:
        """The evaluation's state ratio across all participants."""
        return state_ratio(
            {p.id: p.instance for p in self.participants}, relation=relation
        )

    def report(self, relation: Optional[str] = "F") -> ConfederationReport:
        """Metrics of the run so far, gathered from the hook bus."""
        self._ensure_open()
        timings = self._timing.timings
        network = getattr(self.store, "network", None)
        return ConfederationReport(
            config=self.config,
            state_ratio=self.state_ratio(relation=relation),
            timings={
                p.id: aggregate_timings(timings.get(p.id, []))
                for p in self.participants
            },
            transactions_published=self._transactions_published,
            store_messages=self.store.perf.messages,
            scheduler=self.config.schedule_mode,
            # A snapshot, not the live collector: a report's counters
            # must not mutate when the confederation keeps running.
            cache_stats=self._cache_stats.total.snapshot(),
            faults=self._fault_collector.snapshot(),
            kind_counts=dict(
                getattr(network, "kind_counts", None) or {}
            ),
            kind_bytes=dict(getattr(network, "kind_bytes", None) or {}),
        )

    # ------------------------------------------------------------------
    # The evaluation schedule (Section 6)

    @property
    def generator(self) -> WorkloadGenerator:
        """The workload generator driving :meth:`run` (lazily built)."""
        if self._generator is None:
            self._generator = WorkloadGenerator(
                self.config.workload or WorkloadConfig()
            )
        return self._generator

    def run(self, relation: Optional[str] = "F") -> ConfederationReport:
        """Execute the configured schedule and return the report.

        The schedule itself is a pluggable strategy
        (:mod:`repro.confed.scheduler`, selected by
        ``config.schedule_mode``): the default ``"serial"`` mode is the
        paper's strict round-robin — every ``reconciliation_interval``
        transactions each participant publishes and reconciles, for
        ``rounds`` cycles — and ``"threaded"`` runs independent
        participants' edit/reconcile phases concurrently between
        deterministic publish-order barriers.  ``final_reconcile`` adds
        one reconcile-only pass so every published transaction reaches
        every peer.
        """
        self._ensure_open()
        create_scheduler(self.config).run(self)
        return self.report(relation=relation)

    def finish_scheduled_epoch(
        self, participant: Participant, round_index: int, published: int
    ) -> None:
        """Record one completed schedule step and announce it.

        Called by the epoch scheduler after ``participant`` finished its
        publish-and-reconcile step of round ``round_index``; ``published``
        is the number of transactions the step published.  Emits the
        ``epoch_end`` event so subscribers can observe schedule progress,
        then fires any fault-plan actions whose epoch has been reached —
        crashes, recoveries, and restarts land at step boundaries, never
        inside a reconciliation (see :mod:`repro.confed.faults`).
        """
        self._transactions_published += published
        self.hooks.emit(
            "epoch_end",
            participant=participant.id,
            round=round_index,
            published=published,
            total_published=self._transactions_published,
        )
        if self._fault_controller is not None:
            self._fault_controller.tick(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("open" if self._opened else "new")
        return (
            f"Confederation({self.config.store!r}, peers={len(self._participants)}, "
            f"{state})"
        )
