"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render rows as an aligned plain-text table with a title."""
    rendered_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        """One table row, right-justified to the column widths."""
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = [title, line(headers), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
