"""Ablation implementations: the design choices DESIGN.md calls out.

These deliberately *worse* variants quantify why the system is built the
way it is:

* :func:`naive_find_conflicts` — all-pairs conflict detection with no key
  index, the quadratic baseline the paper's "hash table-based conflict
  detection" improves on;
* :func:`raw_update_extension` — extensions built *without* flattening,
  so intermediate states of update chains are visible to conflict
  detection (ablating the paper's least-interaction principle).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.conflicts import directly_conflict
from repro.core.extensions import (
    RelevantTransaction,
    TransactionGraph,
    UpdateExtension,
    update_footprint,
)
from repro.model.flatten import keys_touched
from repro.model.schema import Schema
from repro.model.transactions import TransactionId
from repro.model.updates import updates_conflict


def naive_find_conflicts(
    schema: Schema,
    graph: TransactionGraph,
    extensions: Dict[TransactionId, UpdateExtension],
) -> Dict[TransactionId, Set[TransactionId]]:
    """All-pairs direct-conflict detection without the key index.

    Observationally identical to
    :func:`repro.core.conflicts.find_conflicts`; only the candidate
    generation differs (every pair is compared).
    """
    conflicts: Dict[TransactionId, Set[TransactionId]] = {
        tid: set() for tid in extensions
    }
    tids = sorted(extensions)
    for i, left_tid in enumerate(tids):
        for right_tid in tids[i + 1 :]:
            left, right = extensions[left_tid], extensions[right_tid]
            if left.subsumes(right) or right.subsumes(left):
                continue
            if _pairwise_conflict_no_index(schema, graph, left, right):
                conflicts[left_tid].add(right_tid)
                conflicts[right_tid].add(left_tid)
    return conflicts


def _pairwise_conflict_no_index(schema, graph, left, right) -> bool:
    shared = left.member_set() & right.member_set()
    if shared:
        # Fall back to the shared-aware path; the ablation targets the
        # common no-shared-members case.
        return directly_conflict(schema, graph, left, right)
    for left_update in left.operations:
        for right_update in right.operations:
            if updates_conflict(schema, left_update, right_update):
                return True
    return False


def raw_update_extension(
    schema: Schema,
    graph: TransactionGraph,
    root: RelevantTransaction,
    applied: Set[TransactionId],
) -> UpdateExtension:
    """An update extension whose operations are the *unflattened* footprint.

    With flattening ablated, revised-away intermediate values still
    participate in conflict detection — exactly what the paper's least
    interaction principle forbids.
    """
    members = graph.extension(root.tid, applied)
    footprint = update_footprint(graph, members)
    return UpdateExtension(
        root=root.tid,
        members=tuple(members),
        operations=tuple(footprint),
        touched=frozenset(keys_touched(schema, footprint)),
        priority=root.priority,
    )


def count_conflict_pairs(conflicts: Dict[TransactionId, Set[TransactionId]]) -> int:
    """Number of unordered conflicting pairs in an adjacency map."""
    return sum(len(neighbours) for neighbours in conflicts.values()) // 2
