"""Experiment definitions: one function per figure of Section 6.

Every function runs scaled-down but shape-preserving versions of the
paper's experiments (the paper's runs used a dual-Xeon server and tens of
minutes; ours target seconds on a laptop).  The parameters default to the
paper's x-axis values wherever feasible; ``rounds`` and domain sizes are
the scaled knobs, and every function accepts overrides so EXPERIMENTS.md
can record both quick and full configurations.

All experiments use the paper's setting: every participant trusts every
other at the same priority, so conflicting updates can only be deferred,
never auto-resolved.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.confed import Confederation, ConfederationConfig
from repro.store.base import UpdateStore
from repro.store.central import CentralUpdateStore
from repro.store.dht import DhtUpdateStore
from repro.workload.generator import WorkloadConfig, curated_schema

#: Store factories for the timing experiments, keyed by the paper's names.
STORE_FACTORIES: Dict[str, Callable[[int], UpdateStore]] = {
    "central": lambda peers: CentralUpdateStore(curated_schema()),
    "distributed": lambda peers: DhtUpdateStore(
        curated_schema(), hosts=max(2, peers)
    ),
}


def _run(
    participants: int,
    interval: int,
    rounds: int,
    transaction_size: int = 1,
    seed: int = 42,
    store: Optional[UpdateStore] = None,
    final_reconcile: bool = False,
):
    config = ConfederationConfig(
        peers=tuple(range(1, participants + 1)),
        workload=WorkloadConfig(transaction_size=transaction_size, seed=seed),
        reconciliation_interval=interval,
        rounds=rounds,
        final_reconcile=final_reconcile,
    )
    with Confederation(config, store=store) as confederation:
        return confederation.run()


# ----------------------------------------------------------------------
# Figure 8: transaction size vs. state ratio


def fig8_rows(
    sizes: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 10),
    updates_between_recons: int = 8,
    participants: int = 10,
    rounds: int = 5,
    seed: int = 42,
) -> List[Tuple[int, float]]:
    """State ratio as transaction size grows, holding the number of
    updates between reconciliations constant (the paper holds it fixed
    while varying size, so larger transactions mean fewer of them)."""
    rows: List[Tuple[int, float]] = []
    for size in sizes:
        interval = max(1, updates_between_recons // size)
        report = _run(
            participants, interval, rounds, transaction_size=size, seed=seed
        )
        rows.append((size, report.state_ratio))
    return rows


# ----------------------------------------------------------------------
# Figure 9: reconciliation interval vs. state ratio


def fig9_rows(
    intervals: Sequence[int] = (1, 2, 4, 8, 12, 16, 20),
    participants: int = 10,
    transactions_per_peer: int = 40,
    seed: int = 42,
) -> List[Tuple[int, float]]:
    """State ratio as reconciliation gets less frequent (size-1 txns).

    The total number of transactions per peer is held near-constant so
    only the interval varies, as in the paper's Figure 9.
    """
    rows: List[Tuple[int, float]] = []
    for interval in intervals:
        rounds = max(1, transactions_per_peer // interval)
        report = _run(participants, interval, rounds, seed=seed)
        rows.append((interval, report.state_ratio))
    return rows


# ----------------------------------------------------------------------
# Figure 10: reconciliation interval vs. total reconciliation time
# per participant, split into store and local time, for both stores.


def fig10_rows(
    intervals: Sequence[int] = (4, 20, 50),
    stores: Sequence[str] = ("central", "distributed"),
    participants: int = 10,
    transactions_per_peer: int = 100,
    seed: int = 42,
) -> List[Tuple[int, str, float, float, float]]:
    """Rows of ``(interval, store, store_s, local_s, total_s)``.

    Total reconciliation time per participant (summed over the run, as in
    the paper's Figure 10), with the per-peer transaction budget held
    constant so smaller intervals mean more reconciliations.
    """
    rows: List[Tuple[int, str, float, float, float]] = []
    for interval in intervals:
        rounds = max(1, transactions_per_peer // interval)
        for store_name in stores:
            store = STORE_FACTORIES[store_name](participants)
            report = _run(
                participants,
                interval,
                rounds,
                seed=seed,
                store=store,
                final_reconcile=True,
            )
            rows.append(
                (
                    interval,
                    store_name,
                    report.mean_store_seconds_per_participant,
                    report.mean_local_seconds_per_participant,
                    report.mean_total_seconds_per_participant,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 11: number of participants vs. state ratio


def fig11_rows(
    peer_counts: Sequence[int] = (5, 10, 20, 35, 50),
    interval: int = 4,
    rounds: int = 2,
    seed: int = 42,
) -> List[Tuple[int, float]]:
    """State ratio as the confederation grows."""
    rows: List[Tuple[int, float]] = []
    for peers in peer_counts:
        report = _run(peers, interval, rounds, seed=seed)
        rows.append((peers, report.state_ratio))
    return rows


# ----------------------------------------------------------------------
# Figure 12: number of participants vs. average time per reconciliation


def fig12_rows(
    peer_counts: Sequence[int] = (10, 25, 50),
    stores: Sequence[str] = ("central", "distributed"),
    interval: int = 4,
    rounds: int = 2,
    seed: int = 42,
) -> List[Tuple[int, str, float, float, float]]:
    """Rows of ``(peers, store, store_s, local_s, total_s)`` — the average
    cost of a single reconciliation as the confederation grows."""
    rows: List[Tuple[int, str, float, float, float]] = []
    for peers in peer_counts:
        for store_name in stores:
            store = STORE_FACTORIES[store_name](peers)
            report = _run(
                peers, interval, rounds, seed=seed, store=store,
                final_reconcile=True,
            )
            rows.append(
                (
                    peers,
                    store_name,
                    report.mean_store_seconds_per_reconciliation,
                    report.mean_local_seconds_per_reconciliation,
                    report.mean_seconds_per_reconciliation,
                )
            )
    return rows
