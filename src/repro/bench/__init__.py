"""The benchmark harness behind ``benchmarks/``.

One function per figure of the paper's evaluation section, each returning
the rows of that figure (x-value plus measured series), plus table
formatting shared by the benchmark scripts and EXPERIMENTS.md generation.
"""

from repro.bench.figures import (
    fig8_rows,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
)
from repro.bench.tables import format_table

__all__ = [
    "fig10_rows",
    "fig11_rows",
    "fig12_rows",
    "fig8_rows",
    "fig9_rows",
    "format_table",
]
