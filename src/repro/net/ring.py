"""Consistent hashing: the identifier ring of a Pastry-style DHT.

Each physical node takes a position on a circular id space (the SHA-1 hash
of its name); a key is owned by the first node clockwise from the key's
hash.  This is the standard Chord/Pastry ownership rule, which the paper's
FreePastry deployment relies on to place the epoch allocator, epoch
controllers, and transaction controllers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from repro.errors import NetworkError


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode()).digest()[:8], "big")


class HashRing:
    """Maps keys to owning nodes by consistent hashing."""

    def __init__(self, node_names: Iterable[str]) -> None:
        names = list(node_names)
        if not names:
            raise NetworkError("a hash ring needs at least one node")
        if len(set(names)) != len(names):
            raise NetworkError("duplicate node names on the ring")
        self._points: List[Tuple[int, str]] = sorted(
            (_hash(name), name) for name in names
        )
        self._hashes = [point for point, _name in self._points]

    def owner(self, key: str) -> str:
        """The node owning ``key``: first node clockwise of hash(key)."""
        position = bisect.bisect_left(self._hashes, _hash(key))
        if position == len(self._points):
            position = 0
        return self._points[position][1]

    def owner_excluding(self, key: str, excluded: Iterable[str]) -> str:
        """The owner of ``key`` among nodes not in ``excluded``.

        Used when the primary owner has failed and responsibility passes
        to the next live node clockwise.
        """
        banned = set(excluded)
        live = [(h, n) for h, n in self._points if n not in banned]
        if not live:
            raise NetworkError("no live nodes remain on the ring")
        hashes = [h for h, _n in live]
        position = bisect.bisect_left(hashes, _hash(key))
        if position == len(live):
            position = 0
        return live[position][1]

    def successors(
        self, key: str, count: int, excluded: Iterable[str] = ()
    ) -> List[str]:
        """The first ``count`` distinct live nodes clockwise of hash(key).

        The first entry is the key's owner; the rest are the successor
        nodes that hold its replicas under successor replication (a
        Pastry/Chord leaf-set style placement).  Fewer than ``count``
        names are returned when the live ring is smaller.
        """
        banned = set(excluded)
        live = [(h, n) for h, n in self._points if n not in banned]
        if not live:
            raise NetworkError("no live nodes remain on the ring")
        hashes = [h for h, _n in live]
        position = bisect.bisect_left(hashes, _hash(key))
        result: List[str] = []
        for offset in range(min(count, len(live))):
            result.append(live[(position + offset) % len(live)][1])
        return result

    def nodes(self) -> List[str]:
        """Node names in ring order."""
        return [name for _point, name in self._points]

    def __len__(self) -> int:
        return len(self._points)
