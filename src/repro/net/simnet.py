"""Synchronous simulated network with latency, message, and byte accounting.

Delivery model: :meth:`Network.post` enqueues a message; :meth:`Network.run`
drains the queue in FIFO order, invoking each recipient's handler, which
may post further messages.  Each delivered message advances the simulated
clock by the per-message latency and increments the message counter —
messages are accounted *serially*, matching the paper's single-machine
deployment where every hop paid its injected delay.

Payload size is accounted two ways: ``fragments`` (size-bounded DHT
messages — a large payload travels as several fragments, each paying the
per-message latency) and ``size_bytes`` (an estimated wire size, summed
into :attr:`Network.bytes_delivered` so protocols that ship derived data
— e.g. store-computed update extensions — expose their bandwidth cost,
not just their round-trip count).

Failure injection: a node can be taken down; messages to a down node raise
:class:`~repro.errors.NetworkError` by default, or are silently dropped
when the network is created with ``drop_to_failed=True`` (useful for
testing recovery protocols such as epoch-allocator reconstruction).
Dropped messages are *not* accounted: the clock, the message counter,
``bytes_delivered``, and ``kind_counts`` only ever reflect deliveries
that happened.

Deterministic fault injection (PR 6): an *injector* — any object with an
``intercept(message)`` method, e.g.
:class:`repro.net.faults.FaultInjector` — can be attached via
:attr:`Network.injector`.  It is consulted once per dequeued message and
returns an action: ``"deliver"`` (the default path), ``"drop"`` (the
message vanishes, unaccounted, like a drop to a failed node),
``"duplicate"`` (a marked copy is re-enqueued and delivered — and
accounted — a second time; copies are never re-intercepted), or
``"delay"`` with extra seconds added to the simulated clock.
"""

from __future__ import annotations

import abc
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import NetworkError

#: Default per-message latency, seconds (the paper's 500 microseconds).
DEFAULT_LATENCY = 500e-6

#: Estimated wire size of one fragment when the sender does not supply an
#: explicit ``size_bytes`` (header + one bounded payload unit).
DEFAULT_FRAGMENT_BYTES = 256


@dataclass
class Message:
    """One network message: sender, recipient, a kind tag, and a payload.

    ``fragments`` models payload size: DHT messages have bounded size, so
    a large payload (e.g. a transaction body with many updates) travels as
    several fragments, each paying the per-message latency.  Delivery to
    the handler still happens once, after the last fragment.

    ``size_bytes`` is the estimated wire size of the whole message; 0
    (the default) means "unspecified" and is accounted as
    ``fragments * DEFAULT_FRAGMENT_BYTES``.
    """

    sender: str
    recipient: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    fragments: int = 1
    size_bytes: int = 0
    #: True on copies created by an injected "duplicate" fault; such
    #: copies are delivered but never intercepted again (no fault
    #: cascades off an injected fault).
    injected: bool = False

    def wire_bytes(self) -> int:
        """The bytes this message is accounted at."""
        return self.size_bytes or self.fragments * DEFAULT_FRAGMENT_BYTES

    def __str__(self) -> str:
        return f"{self.sender} -> {self.recipient}: {self.kind}"


class Node(abc.ABC):
    """A protocol participant addressable by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def handle(self, network: "Network", message: Message) -> None:
        """Process ``message``; may post further messages on ``network``."""


class Network:
    """Deterministic FIFO message bus with latency accounting."""

    def __init__(
        self,
        latency: float = DEFAULT_LATENCY,
        drop_to_failed: bool = False,
    ) -> None:
        self._nodes: Dict[str, Node] = {}
        self._queue: Deque[Message] = deque()
        self._failed: set = set()
        self._latency = latency
        self._drop_to_failed = drop_to_failed
        #: Optional fault injector consulted per dequeued message (see
        #: the module docstring and :mod:`repro.net.faults`).
        self.injector: Optional[Any] = None
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.simulated_seconds = 0.0
        #: Fragments delivered per message kind — the protocol mix.
        #: Tests and benchmarks read this to show *where* a mode's
        #: traffic goes (e.g. the fully network-centric batch trades
        #: ``txn_data`` deliveries for ``nc_fetch_batch`` verdict
        #: chatter) without parsing transcripts.
        self.kind_counts: Dict[str, int] = {}
        #: Wire bytes delivered per message kind, next to
        #: :attr:`kind_counts`: the per-kind share of
        #: :attr:`bytes_delivered`, so each protocol layer's byte cost
        #: (and saving) is pinned independently.
        self.kind_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Topology

    def add_node(self, node: Node) -> None:
        """Register a node; its name must be unique."""
        if node.name in self._nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def node_names(self) -> List[str]:
        """All registered node names."""
        return list(self._nodes)

    def fail_node(self, name: str) -> None:
        """Take a node down: it no longer receives messages."""
        self.node(name)  # validate
        self._failed.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a failed node back."""
        self._failed.discard(name)

    def is_failed(self, name: str) -> bool:
        """True if the node is currently down."""
        return name in self._failed

    # ------------------------------------------------------------------
    # Messaging

    def post(self, message: Message) -> None:
        """Enqueue a message for delivery on the next :meth:`run` drain."""
        self._queue.append(message)

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        fragments: int = 1,
        size_bytes: int = 0,
        **payload: Any,
    ) -> None:
        """Convenience wrapper around :meth:`post`.

        ``fragments`` and ``size_bytes`` are the public sizing contract
        (see :class:`Message`).  The historical underscore-prefixed
        spellings ``_fragments``/``_size_bytes`` are still accepted as
        deprecated aliases; protocol payload keys must not collide with
        either spelling.
        """
        if "_fragments" in payload:
            warnings.warn(
                "Network.send(_fragments=...) is deprecated; "
                "use fragments=...",
                DeprecationWarning,
                stacklevel=2,
            )
            fragments = payload.pop("_fragments")
        if "_size_bytes" in payload:
            warnings.warn(
                "Network.send(_size_bytes=...) is deprecated; "
                "use size_bytes=...",
                DeprecationWarning,
                stacklevel=2,
            )
            size_bytes = payload.pop("_size_bytes")
        self.post(
            Message(sender, recipient, kind, payload, fragments, size_bytes)
        )

    def run(self, max_messages: int = 1_000_000) -> int:
        """Drain the queue; returns the number of *attempted* deliveries.

        ``max_messages`` bounds runaway protocols (a protocol bug would
        otherwise loop forever); exceeding it raises
        :class:`~repro.errors.NetworkError`.

        A message dropped in flight — addressed to a failed node under
        ``drop_to_failed``, or dropped by the injector — counts toward
        the return value (the sender attempted it) but leaves the
        accounting counters untouched: the clock, message counter,
        byte total, and kind counts only reflect actual deliveries.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_messages:
                raise NetworkError(
                    f"message budget exceeded ({max_messages}); "
                    "protocol is likely looping"
                )
            message = self._queue.popleft()
            delivered += 1
            extra_latency = 0.0
            if self.injector is not None and not message.injected:
                action, extra_latency = self.injector.intercept(message)
                if action == "drop":
                    continue
                if action == "duplicate":
                    copy = Message(
                        message.sender,
                        message.recipient,
                        message.kind,
                        message.payload,
                        message.fragments,
                        message.size_bytes,
                        injected=True,
                    )
                    self._queue.append(copy)
            if message.recipient in self._failed:
                if self._drop_to_failed:
                    continue
                raise NetworkError(
                    f"message {message} addressed to failed node"
                )
            self.messages_delivered += message.fragments
            self.bytes_delivered += message.wire_bytes()
            self.simulated_seconds += (
                self._latency * message.fragments + extra_latency
            )
            self.kind_counts[message.kind] = (
                self.kind_counts.get(message.kind, 0) + message.fragments
            )
            self.kind_bytes[message.kind] = (
                self.kind_bytes.get(message.kind, 0) + message.wire_bytes()
            )
            self.node(message.recipient).handle(self, message)
        return delivered
