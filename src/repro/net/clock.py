"""Latency clocks: the seam between simulated latency and wall time.

Stores *charge* injected per-message latency to their
:class:`~repro.store.base.PerfCounters` — that ledger is always
simulated time.  Whether the charge is also *paid* in wall time (the
paper's experiments injected the delays for real) is a separate
decision, and this module owns it: every payment in the tree goes
through a :class:`LatencyClock`, never through an inline ``time.sleep``
(rule RPR010 pins this — a stray blocking sleep on the async schedule
would stall the whole event loop).

Two implementations:

* :class:`BlockingLatencyClock` — the default on every store: pay by
  blocking the calling thread.  Under the threaded epoch scheduler,
  concurrent workers block *in parallel*, exactly like clients of a
  real networked store.
* :class:`AsyncLatencyClock` — installed by the asyncio epoch scheduler
  for the duration of a run: a payment made inside a task *accrues* to
  that task's debt instead of blocking, and the scheduler awaits
  :meth:`AsyncLatencyClock.drain` between a participant's synchronous
  segments.  Coalescing a segment's payments into one
  ``asyncio.sleep`` is wall-time equivalent (nothing yields between
  them anyway) and is what lets participant *i+1* allocate its epoch
  under the store lock while participant *i*'s latency awaits.

The store-side entry point is
:meth:`repro.store.base.UpdateStore.pay_latency`, which consults the
store's ``real_latency`` flag and delegates the actual wait to the
store's ``clock`` attribute.
"""

from __future__ import annotations

import abc
import asyncio
import time
from typing import Dict


class LatencyClock(abc.ABC):
    """How charged simulated latency is converted into wall time."""

    @abc.abstractmethod
    def pay(self, seconds: float) -> None:
        """Pay ``seconds`` of injected latency (caller gates ``> 0``)."""


class BlockingLatencyClock(LatencyClock):
    """Pay latency by blocking the calling thread (the default)."""

    def pay(self, seconds: float) -> None:
        """Block for ``seconds``.

        This is the one sanctioned blocking sleep in the tree: every
        other module pays latency through a :class:`LatencyClock`, and
        rule RPR010 flags any direct ``time.sleep`` elsewhere.
        """
        time.sleep(seconds)


class AsyncLatencyClock(LatencyClock):
    """Accrue latency per task; an async scheduler awaits the debt.

    :meth:`pay` never blocks when called from inside a running asyncio
    task: the seconds are added to that task's outstanding debt, and
    the scheduler awaits :meth:`drain` once the task's synchronous
    segment is over — turning the wait into an ``asyncio.sleep`` that
    yields the event loop to other participants.  Called with no
    running task (a store used standalone while this clock happens to
    be installed), it degrades to the blocking behaviour so latency is
    never silently dropped.
    """

    def __init__(self) -> None:
        """Start with no outstanding debt and nothing paid."""
        self._debts: Dict["asyncio.Task", float] = {}
        #: Total seconds actually awaited through :meth:`drain`.
        self.total_paid = 0.0

    def pay(self, seconds: float) -> None:
        """Accrue ``seconds`` to the current task's outstanding debt."""
        try:
            task = asyncio.current_task()
        except RuntimeError:
            task = None
        if task is None:
            time.sleep(seconds)
            return
        self._debts[task] = self._debts.get(task, 0.0) + seconds

    @property
    def outstanding(self) -> float:
        """Accrued seconds not yet drained, across all tasks."""
        return sum(self._debts.values())

    async def drain(self) -> None:
        """Await the calling task's accrued debt (no-op when zero)."""
        task = asyncio.current_task()
        debt = self._debts.pop(task, 0.0)
        if debt > 0:
            self.total_paid += debt
            await asyncio.sleep(debt)
