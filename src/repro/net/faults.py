"""Declarative, seeded fault plans and their deterministic executor.

The paper's Section 5.2.2 sketches failure handling; reproducing the
claim that a confederation *survives* faults needs a way to schedule
them deterministically.  This module provides both halves:

* :class:`FaultPlan` — a declarative description of every fault a run
  should suffer: host crashes (and recoveries) pinned to epochs,
  message drops / duplicates / latency spikes by message kind with a
  seeded probability, and mid-run participant crash-restarts.  Like the
  rest of :class:`~repro.confed.config.ConfederationConfig` it
  round-trips exactly through plain JSON-safe dicts, so chaos schedules
  live in files and version control.
* :class:`FaultInjector` — the simnet-side executor: attached to
  :attr:`repro.net.simnet.Network.injector`, it is consulted once per
  dequeued message and decides — from one seeded
  :class:`random.Random` stream, so a (plan, seed) pair always injects
  the same faults at the same points — whether that message is
  delivered, dropped, duplicated, or delayed.

Host crashes and participant restarts are *scheduled* here but
*executed* by the confederation's fault controller
(:mod:`repro.confed.faults`), which owns the store and participant
lifecycles; the injector only handles the message-level faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

#: Message-fault actions a :class:`MessageFault` can request.
MESSAGE_FAULT_ACTIONS: Tuple[str, ...] = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class HostCrash:
    """Crash one store host at an epoch, optionally recovering later.

    ``at_epoch``/``recover_at_epoch`` are store epochs: the crash fires
    at the first schedule step where the store's current epoch has
    reached ``at_epoch``; recovery (when configured) fires the same way.
    """

    host: str
    at_epoch: int
    recover_at_epoch: Optional[int] = None


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate, or delay messages of one kind.

    Each matching message triggers the fault with ``probability``
    (drawn from the plan's seeded stream); ``times`` bounds the total
    number of injections (``None`` = unlimited, which makes a
    probability-1.0 drop an *unmaskable* black hole).  ``delay_factor``
    scales the network's base latency into the extra delay a
    ``"delay"`` fault charges.
    """

    kind: str
    action: str = "drop"
    probability: float = 1.0
    times: Optional[int] = None
    delay_factor: float = 4.0


@dataclass(frozen=True)
class ParticipantRestart:
    """Crash-restart one participant at an epoch.

    Executed through the confederation's ``snapshot()``/``restore()``
    path: the participant object is discarded and rebuilt entirely from
    the update store — the paper's soft-state claim, exercised mid-run.
    """

    participant: int
    at_epoch: int


@dataclass
class FaultPlan:
    """Every fault one run should deterministically suffer."""

    seed: int = 0
    crashes: Tuple[HostCrash, ...] = ()
    messages: Tuple[MessageFault, ...] = ()
    restarts: Tuple[ParticipantRestart, ...] = ()

    def __post_init__(self) -> None:
        self.crashes = tuple(self.crashes)
        self.messages = tuple(self.messages)
        self.restarts = tuple(self.restarts)

    # ------------------------------------------------------------------
    # Validation

    def validate(self) -> "FaultPlan":
        """Check internal consistency; returns self."""
        for crash in self.crashes:
            if crash.at_epoch < 1:
                raise ConfigError(
                    f"crash of {crash.host!r}: at_epoch must be >= 1"
                )
            if (
                crash.recover_at_epoch is not None
                and crash.recover_at_epoch <= crash.at_epoch
            ):
                raise ConfigError(
                    f"crash of {crash.host!r}: recover_at_epoch must be "
                    f"after at_epoch"
                )
        for fault in self.messages:
            if fault.action not in MESSAGE_FAULT_ACTIONS:
                raise ConfigError(
                    f"unknown message-fault action {fault.action!r}; "
                    f"accepted: {', '.join(MESSAGE_FAULT_ACTIONS)}"
                )
            if not 0.0 <= fault.probability <= 1.0:
                raise ConfigError(
                    f"message fault on {fault.kind!r}: probability must "
                    f"be within [0, 1]"
                )
            if fault.times is not None and fault.times < 1:
                raise ConfigError(
                    f"message fault on {fault.kind!r}: times must be "
                    f">= 1 (or None for unlimited)"
                )
            if fault.delay_factor < 0:
                raise ConfigError(
                    f"message fault on {fault.kind!r}: delay_factor must "
                    f"be non-negative"
                )
        for restart in self.restarts:
            if restart.at_epoch < 1:
                raise ConfigError(
                    f"restart of participant {restart.participant}: "
                    f"at_epoch must be >= 1"
                )
        return self

    # ------------------------------------------------------------------
    # Dict round-trip (the ConfederationConfig idiom)

    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-safe dict representation (lists, not tuples,
        so a ``json.dumps``/``loads`` detour is exact)."""
        return {
            "seed": self.seed,
            "crashes": [
                {
                    "host": c.host,
                    "at_epoch": c.at_epoch,
                    "recover_at_epoch": c.recover_at_epoch,
                }
                for c in self.crashes
            ],
            "messages": [
                {
                    "kind": m.kind,
                    "action": m.action,
                    "probability": m.probability,
                    "times": m.times,
                    "delay_factor": m.delay_factor,
                }
                for m in self.messages
            ],
            "restarts": [
                {"participant": r.participant, "at_epoch": r.at_epoch}
                for r in self.restarts
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output; unknown keys
        raise :class:`~repro.errors.ConfigError`."""

        def build(entry, entry_cls, what):
            """One fault entry of ``entry_cls``, rejecting unknown keys."""
            from dataclasses import fields as dc_fields

            known = {f.name for f in dc_fields(entry_cls)}
            unknown = set(entry) - known
            if unknown:
                raise ConfigError(
                    f"unknown {what} keys {sorted(unknown)}; "
                    f"known: {sorted(known)}"
                )
            return entry_cls(**entry)

        known = {"seed", "crashes", "messages", "restarts"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            crashes=tuple(
                build(entry, HostCrash, "host-crash")
                for entry in data.get("crashes", ())
            ),
            messages=tuple(
                build(entry, MessageFault, "message-fault")
                for entry in data.get("messages", ())
            ),
            restarts=tuple(
                build(entry, ParticipantRestart, "participant-restart")
                for entry in data.get("restarts", ())
            ),
        )

    def is_empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not (self.crashes or self.messages or self.restarts)


@dataclass
class _Rule:
    """One message fault with its remaining injection budget."""

    fault: MessageFault
    remaining: Optional[int] = None

    def __post_init__(self) -> None:
        self.remaining = self.fault.times


class FaultInjector:
    """Executes a plan's message faults on the simulated network.

    One seeded RNG stream drives every probability draw, in delivery
    order — the simnet drains FIFO and consults the injector once per
    message, so a given (plan, protocol trace) pair injects identically
    on every run.  ``emit`` (when given) is called with the payload of
    a ``fault`` hook event for each injection.
    """

    def __init__(
        self,
        plan: FaultPlan,
        latency: float,
        emit: Optional[Callable[..., None]] = None,
    ) -> None:
        self._rng = random.Random(plan.seed)
        self._latency = latency
        self._emit = emit
        self._rules: Dict[str, List[_Rule]] = {}
        for fault in plan.messages:
            self._rules.setdefault(fault.kind, []).append(_Rule(fault))
        #: Injections performed so far, by action.
        self.counts: Dict[str, int] = {}

    def intercept(self, message) -> Tuple[str, float]:
        """The simnet hook: ``(action, extra_latency_seconds)``.

        The first matching rule with budget left and a winning draw
        fires; at most one fault per message.
        """
        for rule in self._rules.get(message.kind, ()):
            if rule.remaining is not None and rule.remaining <= 0:
                continue
            if self._rng.random() >= rule.fault.probability:
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            action = rule.fault.action
            self.counts[action] = self.counts.get(action, 0) + 1
            extra = (
                self._latency * rule.fault.delay_factor
                if action == "delay"
                else 0.0
            )
            if self._emit is not None:
                self._emit(
                    action=action,
                    kind=message.kind,
                    sender=message.sender,
                    recipient=message.recipient,
                )
            return action, extra
        return "deliver", 0.0


__all__ = [
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "MessageFault",
    "ParticipantRestart",
    "MESSAGE_FAULT_ACTIONS",
]
