"""A deterministic message-level network simulator.

The paper's distributed experiments ran every FreePastry node on a single
server and injected "a delay of at least 500 microseconds ... to every
message (and reply) transmission"; cost there was dominated by message
count.  This package reproduces that regime deterministically:

* :class:`repro.net.simnet.Network` — synchronous FIFO message delivery
  between named nodes, charging a configurable latency per message and
  counting every message sent;
* :class:`repro.net.simnet.Node` — base class for protocol participants;
* :class:`repro.net.ring.HashRing` — consistent hashing used by the DHT
  store to map logical roles (epoch allocator, epoch controllers,
  transaction controllers, ...) onto physical peers;
* :class:`repro.net.faults.FaultPlan` /
  :class:`repro.net.faults.FaultInjector` — declarative, seeded fault
  schedules (message drops, duplicates, latency spikes, host crashes,
  participant restarts) and the deterministic simnet-side executor;
* :class:`repro.net.clock.LatencyClock` — the seam between charged
  (simulated) latency and wall time:
  :class:`~repro.net.clock.BlockingLatencyClock` blocks the calling
  thread, :class:`~repro.net.clock.AsyncLatencyClock` accrues debt per
  asyncio task for the pipelined epoch scheduler to await.
"""

from repro.net.clock import (
    AsyncLatencyClock,
    BlockingLatencyClock,
    LatencyClock,
)
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    HostCrash,
    MessageFault,
    ParticipantRestart,
)
from repro.net.ring import HashRing
from repro.net.simnet import Message, Network, Node

__all__ = [
    "AsyncLatencyClock",
    "BlockingLatencyClock",
    "FaultInjector",
    "FaultPlan",
    "HashRing",
    "HostCrash",
    "LatencyClock",
    "Message",
    "MessageFault",
    "Network",
    "Node",
    "ParticipantRestart",
]
