"""repro — a reproduction of Taylor & Ives, "Reconciling while Tolerating
Disagreement in Collaborative Data Sharing" (SIGMOD 2006).

The package implements the Orchestra collaborative data sharing system
(CDSS) described in the paper: keyed relational instances, value-based
updates grouped into transactions, trust policies, the client-centric
reconciliation algorithm with deferral and conflict resolution, a central
(sqlite-backed) update store, a simulated DHT-based distributed update
store, the paper's synthetic SWISS-PROT workload generator, and the state
ratio / timing metrics of the evaluation section.

The public API is the **unified confederation layer** (:mod:`repro.confed`):

* :class:`ConfederationConfig` — declarative, dict-round-trippable
  configuration naming the store backend, instance backend, peers,
  trust policies, workload, and engine knobs in one place;
* :class:`Confederation` — the facade built from it: participant
  lifecycle (``open``/``close``, context-manager support),
  ``snapshot``/``restore`` soft-state reconstruction, the evaluation
  schedule, and metric reports;
* the **store driver registry** (:mod:`repro.store.registry`) —
  backends selected by name (``memory``, ``central``, ``durable``,
  ``dht``) with
  honest :class:`StoreCapabilities` flags the engine consults instead
  of type checks; :func:`register_store` adds new backends without
  engine changes;
* the **event hook bus** (:class:`HookBus`) — ``on_publish``,
  ``on_epoch_start``, ``on_decision``, ``on_conflict``,
  ``on_cache_stats``, ``on_reconcile``; the timing and cache metrics
  are ordinary subscribers (:mod:`repro.metrics.subscribers`).

The legacy ``CDSS`` / ``Simulation`` entry points remain as thin
deprecation shims delegating to :class:`Confederation`.

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from repro.errors import (
    ConfigError,
    ConstraintViolation,
    FaultError,
    FlattenError,
    NetworkError,
    PolicyError,
    PublicationError,
    ReconciliationError,
    ReproError,
    ResolutionError,
    RetryExhaustedError,
    SchedulerError,
    SchemaError,
    StoreError,
    UnknownTransactionError,
    UpdateError,
    WorkloadError,
)
from repro.model import (
    AttributeDef,
    Delete,
    ForeignKey,
    Insert,
    Modify,
    RelationSchema,
    Schema,
    Transaction,
    TransactionId,
    Update,
    flatten,
    flatten_transactions,
    make_transaction,
    updates_conflict,
)

from repro.cdss import (
    CDSS,
    Participant,
    Simulation,
    SimulationConfig,
)
from repro.confed import (
    Confederation,
    ConfederationConfig,
    ConfederationReport,
    FaultController,
    HookBus,
    ParticipantSnapshot,
    SerialScheduler,
    ThreadedScheduler,
)
from repro.core import (
    Decision,
    ParticipantState,
    ReconcileResult,
    ReconcileSession,
    Reconciler,
    Resolution,
    resolve_conflicts,
)
from repro.instance import Instance, MemoryInstance, SqliteInstance
from repro.metrics import state_ratio
from repro.net import FaultPlan, HostCrash, MessageFault, ParticipantRestart
from repro.policy import (
    AcceptanceRule,
    TrustPolicy,
    always,
    attribute_equals,
    origin_is,
    policy_from_priorities,
)
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    DurableUpdateStore,
    MemoryUpdateStore,
    StoreCapabilities,
    UpdateStore,
    available_stores,
    create_store,
    register_store,
    store_capabilities,
)
from repro.workload import (
    WorkloadConfig,
    WorkloadGenerator,
    curated_schema,
)

__version__ = "2.0.0"

__all__ = [
    "AcceptanceRule",
    "CDSS",
    "CentralUpdateStore",
    "Confederation",
    "ConfederationConfig",
    "ConfederationReport",
    "Decision",
    "DhtUpdateStore",
    "DurableUpdateStore",
    "FaultController",
    "FaultPlan",
    "HookBus",
    "HostCrash",
    "Instance",
    "MemoryInstance",
    "MemoryUpdateStore",
    "MessageFault",
    "Participant",
    "ParticipantRestart",
    "ParticipantSnapshot",
    "ParticipantState",
    "ReconcileResult",
    "ReconcileSession",
    "Reconciler",
    "Resolution",
    "SerialScheduler",
    "Simulation",
    "SimulationConfig",
    "SqliteInstance",
    "StoreCapabilities",
    "ThreadedScheduler",
    "TrustPolicy",
    "UpdateStore",
    "WorkloadConfig",
    "WorkloadGenerator",
    "always",
    "attribute_equals",
    "available_stores",
    "create_store",
    "curated_schema",
    "origin_is",
    "policy_from_priorities",
    "register_store",
    "resolve_conflicts",
    "state_ratio",
    "store_capabilities",
    "AttributeDef",
    "ConfigError",
    "ConstraintViolation",
    "Delete",
    "FaultError",
    "FlattenError",
    "ForeignKey",
    "Insert",
    "Modify",
    "NetworkError",
    "PolicyError",
    "PublicationError",
    "ReconciliationError",
    "RelationSchema",
    "ReproError",
    "ResolutionError",
    "RetryExhaustedError",
    "Schema",
    "SchedulerError",
    "SchemaError",
    "StoreError",
    "Transaction",
    "TransactionId",
    "UnknownTransactionError",
    "Update",
    "UpdateError",
    "WorkloadError",
    "flatten",
    "flatten_transactions",
    "make_transaction",
    "updates_conflict",
]
