"""repro — a reproduction of Taylor & Ives, "Reconciling while Tolerating
Disagreement in Collaborative Data Sharing" (SIGMOD 2006).

The package implements the Orchestra collaborative data sharing system
(CDSS) described in the paper: keyed relational instances, value-based
updates grouped into transactions, trust policies, the client-centric
reconciliation algorithm with deferral and conflict resolution, a central
(sqlite-backed) update store, a simulated DHT-based distributed update
store, the paper's synthetic SWISS-PROT workload generator, and the state
ratio / timing metrics of the evaluation section.

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from repro.errors import (
    ConstraintViolation,
    FlattenError,
    NetworkError,
    PolicyError,
    PublicationError,
    ReconciliationError,
    ReproError,
    ResolutionError,
    SchemaError,
    StoreError,
    UnknownTransactionError,
    UpdateError,
    WorkloadError,
)
from repro.model import (
    AttributeDef,
    Delete,
    ForeignKey,
    Insert,
    Modify,
    RelationSchema,
    Schema,
    Transaction,
    TransactionId,
    Update,
    flatten,
    flatten_transactions,
    make_transaction,
    updates_conflict,
)

from repro.cdss import (
    CDSS,
    Participant,
    Simulation,
    SimulationConfig,
)
from repro.core import (
    Decision,
    ParticipantState,
    ReconcileResult,
    Reconciler,
    Resolution,
    resolve_conflicts,
)
from repro.instance import Instance, MemoryInstance, SqliteInstance
from repro.metrics import state_ratio
from repro.policy import (
    AcceptanceRule,
    TrustPolicy,
    always,
    attribute_equals,
    origin_is,
    policy_from_priorities,
)
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    MemoryUpdateStore,
    UpdateStore,
)
from repro.workload import (
    WorkloadConfig,
    WorkloadGenerator,
    curated_schema,
)

__version__ = "1.0.0"

__all__ = [
    "AcceptanceRule",
    "CDSS",
    "CentralUpdateStore",
    "Decision",
    "DhtUpdateStore",
    "Instance",
    "MemoryInstance",
    "MemoryUpdateStore",
    "Participant",
    "ParticipantState",
    "ReconcileResult",
    "Reconciler",
    "Resolution",
    "Simulation",
    "SimulationConfig",
    "SqliteInstance",
    "TrustPolicy",
    "UpdateStore",
    "WorkloadConfig",
    "WorkloadGenerator",
    "always",
    "attribute_equals",
    "curated_schema",
    "origin_is",
    "policy_from_priorities",
    "resolve_conflicts",
    "state_ratio",
    "AttributeDef",
    "ConstraintViolation",
    "Delete",
    "FlattenError",
    "ForeignKey",
    "Insert",
    "Modify",
    "NetworkError",
    "PolicyError",
    "PublicationError",
    "ReconciliationError",
    "RelationSchema",
    "ReproError",
    "ResolutionError",
    "Schema",
    "SchemaError",
    "StoreError",
    "Transaction",
    "TransactionId",
    "UnknownTransactionError",
    "Update",
    "UpdateError",
    "WorkloadError",
    "flatten",
    "flatten_transactions",
    "make_transaction",
    "updates_conflict",
]
