"""Trust policies: predicates over updates and acceptance rules.

Definition 1 of the paper gives each participant a set of *acceptance
rules* ``(theta, v)`` where ``theta`` is a predicate on updates and ``v``
an integer priority.  A transaction's priority relative to participant
``i`` — ``pri_i(X)`` — is 0 if any update in it is untrusted, otherwise the
maximum priority of any matching rule (Section 4).

:mod:`repro.policy.predicates` provides composable predicate builders
(origin, relation, attribute value, boolean combinators);
:mod:`repro.policy.acceptance` provides :class:`AcceptanceRule` and
:class:`TrustPolicy`.
"""

from repro.policy.acceptance import (
    AcceptanceRule,
    TrustPolicy,
    policy_from_priorities,
)
from repro.policy.predicates import (
    always,
    attribute_equals,
    attribute_in,
    attribute_satisfies,
    both,
    either,
    negate,
    on_relation,
    origin_in,
    origin_is,
)

__all__ = [
    "AcceptanceRule",
    "TrustPolicy",
    "always",
    "attribute_equals",
    "attribute_in",
    "attribute_satisfies",
    "both",
    "either",
    "negate",
    "on_relation",
    "origin_in",
    "origin_is",
    "policy_from_priorities",
]
