"""Composable predicates over updates, the ``theta`` of acceptance rules.

The paper allows acceptance predicates "over the content as well as the
origin" of updates (Section 3.1).  A predicate here is any callable taking
``(schema, update)`` and returning a bool; this module provides named
builders for the common cases plus boolean combinators, all of which
produce picklable, reprable objects (useful when policies are logged or
shipped to an update store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Tuple

from repro.model.schema import Schema
from repro.model.updates import Update

#: The predicate signature: theta(schema, update) -> bool.
Predicate = Callable[[Schema, Update], bool]


@dataclass(frozen=True)
class always:
    """Matches every update.  ``always()`` is the catch-all theta."""

    def __call__(self, schema: Schema, update: Update) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class origin_is:
    """Matches updates originated by one specific participant."""

    participant: int

    def __call__(self, schema: Schema, update: Update) -> bool:
        return update.origin == self.participant

    def __str__(self) -> str:
        return f"origin = p{self.participant}"


class origin_in:
    """Matches updates originated by any of a set of participants."""

    def __init__(self, participants: Iterable[int]) -> None:
        self.participants: FrozenSet[int] = frozenset(participants)

    def __call__(self, schema: Schema, update: Update) -> bool:
        return update.origin in self.participants

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, origin_in):
            return NotImplemented
        return self.participants == other.participants

    def __hash__(self) -> int:
        return hash(("origin_in", self.participants))

    def __str__(self) -> str:
        members = ", ".join(f"p{p}" for p in sorted(self.participants))
        return f"origin in {{{members}}}"


@dataclass(frozen=True)
class on_relation:
    """Matches updates that touch one specific relation."""

    relation: str

    def __call__(self, schema: Schema, update: Update) -> bool:
        return update.relation == self.relation

    def __str__(self) -> str:
        return f"relation = {self.relation}"


@dataclass(frozen=True)
class attribute_equals:
    """Matches updates whose written (or, for deletes, read) row has
    ``value`` in ``attribute``."""

    relation: str
    attribute: str
    value: object

    def _row(self, update: Update):
        row = update.written_row()
        if row is None:
            row = update.read_row()
        return row

    def __call__(self, schema: Schema, update: Update) -> bool:
        if update.relation != self.relation:
            return False
        row = self._row(update)
        if row is None:  # pragma: no cover - an update always has a row
            return False
        rel = schema.relation(self.relation)
        return rel.value_of(row, self.attribute) == self.value

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute} = {self.value!r}"


class attribute_in:
    """Matches updates whose row value for ``attribute`` is in a set."""

    def __init__(self, relation: str, attribute: str, values: Iterable) -> None:
        self.relation = relation
        self.attribute = attribute
        self.values: FrozenSet = frozenset(values)

    def __call__(self, schema: Schema, update: Update) -> bool:
        if update.relation != self.relation:
            return False
        row = update.written_row()
        if row is None:
            row = update.read_row()
        rel = schema.relation(self.relation)
        return rel.value_of(row, self.attribute) in self.values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, attribute_in):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.attribute == other.attribute
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash(("attribute_in", self.relation, self.attribute, self.values))

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute} in {set(self.values)!r}"


@dataclass(frozen=True)
class attribute_satisfies:
    """Matches updates whose row value for ``attribute`` satisfies a test.

    ``test`` must be a named function (not a lambda) if the policy needs to
    be pickled or given a meaningful repr.
    """

    relation: str
    attribute: str
    test: Callable[[object], bool]

    def __call__(self, schema: Schema, update: Update) -> bool:
        if update.relation != self.relation:
            return False
        row = update.written_row()
        if row is None:
            row = update.read_row()
        rel = schema.relation(self.relation)
        return bool(self.test(rel.value_of(row, self.attribute)))

    def __str__(self) -> str:
        name = getattr(self.test, "__name__", repr(self.test))
        return f"{name}({self.relation}.{self.attribute})"


class both:
    """Conjunction of predicates: matches when all components match."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)

    def __call__(self, schema: Schema, update: Update) -> bool:
        return all(pred(schema, update) for pred in self.predicates)

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.predicates) + ")"


class either:
    """Disjunction of predicates: matches when any component matches."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)

    def __call__(self, schema: Schema, update: Update) -> bool:
        return any(pred(schema, update) for pred in self.predicates)

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.predicates) + ")"


@dataclass(frozen=True)
class negate:
    """Negation of a predicate."""

    predicate: Predicate

    def __call__(self, schema: Schema, update: Update) -> bool:
        return not self.predicate(schema, update)

    def __str__(self) -> str:
        return f"not {self.predicate}"
