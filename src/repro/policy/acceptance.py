"""Acceptance rules and trust policies (Definition 1 and Section 4).

A :class:`TrustPolicy` is participant ``i``'s mapping ``A(p_i)``: a list of
:class:`AcceptanceRule` pairs ``(theta, v)``.  Its central operation is
:meth:`TrustPolicy.priority_of`, the paper's ``pri_i(X)``:

* 0 if any update in the transaction is untrusted — i.e. no rule with
  positive priority matches it;
* otherwise the maximum priority of any rule matching any update in the
  transaction.

Priorities must be positive integers; priority 0 means "untrusted" and is
expressed by *not* matching, or by an explicit rule with priority 0 which
acts as a veto for matching updates (they are then trusted only if some
other rule matches them — the definition takes a max, so a 0-rule alone
never trusts anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import PolicyError
from repro.model.schema import Schema
from repro.model.transactions import Transaction
from repro.model.updates import Update
from repro.policy.predicates import Predicate, always, origin_is


@dataclass(frozen=True)
class AcceptanceRule:
    """One ``(theta, v)`` pair: updates matching ``predicate`` get
    priority ``priority``."""

    predicate: Predicate
    priority: int

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise PolicyError(
                f"acceptance priority must be non-negative, got {self.priority}"
            )

    def matches(self, schema: Schema, update: Update) -> bool:
        """True if this rule's predicate matches ``update``."""
        return bool(self.predicate(schema, update))

    def __str__(self) -> str:
        return f"({self.predicate}, {self.priority})"


class TrustPolicy:
    """The full acceptance-rule set ``A(p_i)`` of one participant."""

    def __init__(self, rules: Iterable[AcceptanceRule] = ()) -> None:
        self._rules: List[AcceptanceRule] = list(rules)

    @property
    def rules(self) -> Tuple[AcceptanceRule, ...]:
        """The rules of this policy, in declaration order."""
        return tuple(self._rules)

    def add_rule(self, rule: AcceptanceRule) -> "TrustPolicy":
        """Append a rule; returns self for chaining."""
        self._rules.append(rule)
        return self

    def trust(self, predicate: Predicate, priority: int) -> "TrustPolicy":
        """Shorthand for ``add_rule(AcceptanceRule(predicate, priority))``."""
        return self.add_rule(AcceptanceRule(predicate, priority))

    def trust_participant(self, participant: int, priority: int) -> "TrustPolicy":
        """Trust all updates originated by ``participant`` at ``priority``.

        This is the arc-label form used in the paper's Figure 1
        ("updates from p2 get priority 1").
        """
        return self.trust(origin_is(participant), priority)

    def trust_all(self, priority: int) -> "TrustPolicy":
        """Trust every update at ``priority`` (the evaluation's setting)."""
        return self.trust(always(), priority)

    # ------------------------------------------------------------------
    # The paper's pri_i

    def priority_of_update(self, schema: Schema, update: Update) -> int:
        """Max priority of any matching rule; 0 if none match positively."""
        best = 0
        for rule in self._rules:
            if rule.priority > best and rule.matches(schema, update):
                best = rule.priority
        return best

    def priority_of(self, schema: Schema, transaction: Transaction) -> int:
        """The paper's ``pri_i(X)``.

        Returns 0 if *any* update in the transaction is untrusted,
        otherwise the maximum priority any rule assigns to any update.
        """
        priorities = [
            self.priority_of_update(schema, update) for update in transaction
        ]
        if not priorities or min(priorities) == 0:
            return 0
        return max(priorities)

    def trusts(self, schema: Schema, transaction: Transaction) -> bool:
        """True if the transaction is fully trusted (priority > 0)."""
        return self.priority_of(schema, transaction) > 0

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "{" + "; ".join(str(r) for r in self._rules) + "}"


def policy_from_priorities(priorities: Sequence[Tuple[int, int]]) -> TrustPolicy:
    """Build a policy from ``(participant, priority)`` pairs.

    Convenience used throughout the examples to transcribe figures like
    Figure 1, where each arc is "updates from p_j get priority v".
    """
    policy = TrustPolicy()
    for participant, priority in priorities:
        policy.trust_participant(participant, priority)
    return policy
