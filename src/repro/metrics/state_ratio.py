"""The paper's *state ratio* metric (Section 6).

"The average number of values in all participants' states for a key
(including lack of a value).  This measure ranges from one (all the peers
have exactly the same state) to the number of peers (there is no overlap
at all between the peers' states).  Since a lower ratio indicates more
shared data, we consider a smaller value ... to indicate higher quality
sharing."

For every qualified key held by at least one participant, we count the
number of distinct states across participants, where "no value" is itself
a state, and average over keys.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.instance.base import Instance
from repro.model.tuples import QualifiedKey


def state_ratio(
    instances: Dict[int, Instance], relation: Optional[str] = None
) -> float:
    """Average number of distinct per-key states across participants.

    ``relation`` restricts the metric to one relation (the paper computes
    it over the primary Function relation of its workload); by default all
    relations contribute.  Returns 1.0 for an empty system (perfect,
    vacuous agreement).
    """
    if not instances:
        return 1.0

    keys: Set[QualifiedKey] = set()
    for instance in instances.values():
        for key in instance.all_keys():
            if relation is None or key[0] == relation:
                keys.add(key)
    if not keys:
        return 1.0

    total_states = 0
    for rel_name, key in keys:
        states = {
            instance.get(rel_name, key) for instance in instances.values()
        }
        total_states += len(states)
    return total_states / len(keys)


def divergence_by_key(
    instances: Dict[int, Instance], relation: Optional[str] = None
) -> Dict[QualifiedKey, int]:
    """Per-key distinct-state counts (the distribution behind the ratio)."""
    keys: Set[QualifiedKey] = set()
    for instance in instances.values():
        for key in instance.all_keys():
            if relation is None or key[0] == relation:
                keys.add(key)
    result: Dict[QualifiedKey, int] = {}
    for rel_name, key in keys:
        states = {
            instance.get(rel_name, key) for instance in instances.values()
        }
        result[(rel_name, key)] = len(states)
    return result
