"""Metrics of the evaluation section: state ratio and timing breakdowns."""

from repro.metrics.state_ratio import divergence_by_key, state_ratio
from repro.metrics.timing import TimingAggregate, aggregate_timings

__all__ = [
    "TimingAggregate",
    "aggregate_timings",
    "divergence_by_key",
    "state_ratio",
]
