"""Metrics of the evaluation section: state ratio and timing breakdowns.

The collectors in :mod:`repro.metrics.subscribers` gather these same
metrics as hook-bus subscribers — the confederation's reports are built
from them rather than from participant internals.
"""

from repro.metrics.state_ratio import divergence_by_key, state_ratio
from repro.metrics.subscribers import (
    CacheStatsCollector,
    FaultCollector,
    FaultSummary,
    StateRatioProbe,
    TimingCollector,
)
from repro.metrics.timing import TimingAggregate, aggregate_timings

__all__ = [
    "CacheStatsCollector",
    "FaultCollector",
    "FaultSummary",
    "StateRatioProbe",
    "TimingAggregate",
    "TimingCollector",
    "aggregate_timings",
    "divergence_by_key",
    "state_ratio",
]
