"""Aggregation of per-reconciliation timing records (Figures 10 and 12)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.cdss.participant import ReconcileTiming


@dataclass
class TimingAggregate:
    """Summed / averaged reconciliation costs over a set of timings."""

    reconciliations: int
    total_store_seconds: float
    total_local_seconds: float
    total_messages: int

    @property
    def total_seconds(self) -> float:
        """Store plus local time."""
        return self.total_store_seconds + self.total_local_seconds

    @property
    def mean_store_seconds(self) -> float:
        """Average store time per reconciliation."""
        if self.reconciliations == 0:
            return 0.0
        return self.total_store_seconds / self.reconciliations

    @property
    def mean_local_seconds(self) -> float:
        """Average local time per reconciliation."""
        if self.reconciliations == 0:
            return 0.0
        return self.total_local_seconds / self.reconciliations

    @property
    def mean_total_seconds(self) -> float:
        """Average total time per reconciliation."""
        if self.reconciliations == 0:
            return 0.0
        return self.total_seconds / self.reconciliations


def aggregate_timings(timings: Iterable[ReconcileTiming]) -> TimingAggregate:
    """Fold timing records into a :class:`TimingAggregate`."""
    records: List[ReconcileTiming] = list(timings)
    return TimingAggregate(
        reconciliations=len(records),
        total_store_seconds=sum(t.store_seconds for t in records),
        total_local_seconds=sum(t.local_seconds for t in records),
        total_messages=sum(t.store_messages for t in records),
    )
