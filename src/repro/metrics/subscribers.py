"""Metric collectors as hook-bus subscribers.

The evaluation metrics used to be gathered by reaching into participant
internals (``participant.timings``, ``participant.reconciler.cache``).
These collectors gather the same data by subscribing to the
confederation's event bus (:class:`repro.confed.hooks.HookBus`) — the
one observability surface — so adding a metric never means threading a
new counter through the engine.

Each collector's ``attach(bus)`` subscribes it and returns it, so wiring
reads as one expression::

    timing = TimingCollector().attach(confederation.hooks)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.cache import CacheStats
from repro.metrics.state_ratio import state_ratio
from repro.metrics.timing import TimingAggregate, aggregate_timings


class TimingCollector:
    """Collects every :class:`~repro.cdss.participant.ReconcileTiming`.

    Subscribes to ``reconcile`` events; one record per reconciliation
    per participant, exactly what ``participant.timings`` accumulates —
    but gathered at the bus, so it works across any set of participants
    sharing one confederation.
    """

    def __init__(self) -> None:
        self.timings: Dict[int, List] = {}

    def attach(self, bus) -> "TimingCollector":
        """Subscribe to ``bus`` and return self."""
        bus.on_reconcile(self)
        return self

    def __call__(self, *, participant: int, timing, **_ignored) -> None:
        self.timings.setdefault(participant, []).append(timing)

    def aggregate(self) -> Dict[int, TimingAggregate]:
        """Per-participant timing aggregates."""
        return {
            participant: aggregate_timings(records)
            for participant, records in self.timings.items()
        }


class CacheStatsCollector:
    """Sums the engine's per-run cache counter deltas.

    Subscribes to ``cache_stats`` events; the sum over a run equals the
    participants' cumulative counters because the engine emits exactly
    one delta per reconciliation.
    """

    def __init__(self) -> None:
        self.total = CacheStats()

    def attach(self, bus) -> "CacheStatsCollector":
        """Subscribe to ``bus`` and return self."""
        bus.on_cache_stats(self)
        return self

    def __call__(self, *, stats: Optional[CacheStats], **_ignored) -> None:
        if stats is not None:
            self.total.add(stats)


@dataclass
class FaultSummary:
    """Counters of one run's fault activity (see :class:`FaultCollector`).

    ``injected`` counts fired faults by action (``drop`` / ``duplicate``
    / ``delay`` from the message injector, ``crash`` from host
    failures); the rest count resilience responses: store-request
    retries, degraded fallbacks, and component recoveries.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    degraded: int = 0
    recoveries: int = 0

    @property
    def total_injected(self) -> int:
        """Every fault that fired, across actions."""
        return sum(self.injected.values())


class FaultCollector:
    """Counts ``fault`` / ``retry`` / ``degraded`` / ``recovery`` events.

    An ordinary bus subscriber, like the timing and cache collectors:
    the store surface and the fault injector emit, the collector counts,
    and ``Confederation.report()`` snapshots the summary.  The raw event
    payloads are kept (in emission order) so chaos tests can assert on
    the exact fault trace, not just the totals.
    """

    def __init__(self) -> None:
        self.summary = FaultSummary()
        #: ``(event, payload)`` pairs in emission order.
        self.events: List[tuple] = []

    def attach(self, bus) -> "FaultCollector":
        """Subscribe to ``bus`` and return self."""
        bus.on_fault(self._on_fault)
        bus.on_retry(self._on_retry)
        bus.on_degraded(self._on_degraded)
        bus.on_recovery(self._on_recovery)
        return self

    def _on_fault(self, *, action: str, **payload) -> None:
        self.summary.injected[action] = (
            self.summary.injected.get(action, 0) + 1
        )
        self.events.append(("fault", dict(payload, action=action)))

    def _on_retry(self, **payload) -> None:
        self.summary.retries += 1
        self.events.append(("retry", payload))

    def _on_degraded(self, **payload) -> None:
        self.summary.degraded += 1
        self.events.append(("degraded", payload))

    def _on_recovery(self, **payload) -> None:
        self.summary.recoveries += 1
        self.events.append(("recovery", payload))

    def snapshot(self) -> FaultSummary:
        """An independent copy of the summary (reports must not mutate
        when the confederation keeps running)."""
        return FaultSummary(
            injected=dict(self.summary.injected),
            retries=self.summary.retries,
            degraded=self.summary.degraded,
            recoveries=self.summary.recoveries,
        )


class StateRatioProbe:
    """Samples the state ratio after every reconciliation.

    ``instances`` is a zero-argument callable returning the live
    ``{participant_id: Instance}`` mapping (a callable, not a snapshot,
    so the probe always sees the current replicas).  The sample series
    is the state-ratio trajectory of the run — Figure 9/11 material —
    where the old API only exposed the final value.
    """

    def __init__(
        self,
        instances: Callable[[], Mapping[int, object]],
        relation: Optional[str] = None,
    ) -> None:
        self._instances = instances
        self.relation = relation
        #: ``(recno, state_ratio)`` samples in emission order.
        self.samples: List[tuple] = []

    def attach(self, bus) -> "StateRatioProbe":
        """Subscribe to ``bus`` and return self."""
        bus.on_reconcile(self)
        return self

    def __call__(self, *, recno: int, **_ignored) -> None:
        self.samples.append(
            (recno, state_ratio(self._instances(), relation=self.relation))
        )

    @property
    def latest(self) -> Optional[float]:
        """The most recent sample, or None before any reconciliation."""
        return self.samples[-1][1] if self.samples else None
