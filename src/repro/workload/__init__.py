"""The evaluation section's synthetic SWISS-PROT workload (Section 6).

"Given that no comprehensive workload already exists for bioinformatics
data sharing, we developed a synthetic workload generator based on the
SWISS-PROT bioinformatics database, which contains organisms, proteins,
and protein functions."

* :mod:`repro.workload.zipf` — the heavy-tailed Zipfian sampler
  (characteristic ``s = 1.5``) used to pick protein-function values;
* :mod:`repro.workload.vocabulary` — a deterministic synthetic
  organism / protein / function vocabulary standing in for SWISS-PROT
  contents (which we cannot redistribute);
* :mod:`repro.workload.generator` — per-participant transaction streams:
  insertions and replacements over the Function relation, plus the
  secondary cross-reference table averaging 7.3 tuples per new key.
"""

from repro.workload.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    curated_schema,
)
from repro.workload.vocabulary import Vocabulary
from repro.workload.zipf import ZipfSampler

__all__ = [
    "Vocabulary",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ZipfSampler",
    "curated_schema",
]
