"""A deterministic synthetic SWISS-PROT-like vocabulary.

We cannot ship SWISS-PROT itself; what the workload actually needs from it
is three value domains with realistic cardinalities: organisms, protein
identifiers, and protein-function terms.  The function terms are generated
combinatorially from biological-process fragments so the domain is large
enough for a heavy-tailed popularity distribution to matter.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import WorkloadError

_ORGANISMS = (
    "human", "mouse", "rat", "zebrafish", "fruitfly", "nematode",
    "yeast", "arabidopsis", "ecoli", "bsubtilis", "chicken", "bovine",
    "pig", "frog", "rice", "maize",
)

_PROCESS = (
    "metabolism", "biosynthesis", "catabolism", "transport", "signaling",
    "regulation", "repair", "replication", "transcription", "translation",
    "folding", "degradation", "adhesion", "motility", "secretion",
    "respiration", "photosynthesis", "homeostasis", "apoptosis", "defense",
)

_TARGET = (
    "glucose", "lipid", "amino-acid", "nucleotide", "ion", "protein",
    "rna", "dna", "atp", "calcium", "iron", "membrane", "cytoskeleton",
    "chromatin", "ribosome", "vesicle", "cell-wall", "redox", "sterol",
    "glycogen",
)

_DATABASES = (
    "EMBL", "PDB", "PROSITE", "Pfam", "InterPro", "GO", "KEGG", "OMIM",
)


class Vocabulary:
    """Fixed value domains for the synthetic workload."""

    def __init__(
        self,
        organisms: int = 12,
        proteins_per_organism: int = 400,
        functions: int = 400,
    ) -> None:
        if organisms < 1 or organisms > len(_ORGANISMS):
            raise WorkloadError(
                f"organisms must be in 1..{len(_ORGANISMS)}, got {organisms}"
            )
        max_functions = len(_PROCESS) * len(_TARGET)
        if functions < 1 or functions > max_functions:
            raise WorkloadError(
                f"functions must be in 1..{max_functions}, got {functions}"
            )
        if proteins_per_organism < 1:
            raise WorkloadError("proteins_per_organism must be positive")
        self.organisms: Tuple[str, ...] = _ORGANISMS[:organisms]
        self.proteins_per_organism = proteins_per_organism
        self.functions: Tuple[str, ...] = tuple(
            f"{target} {process}"
            for process in _PROCESS
            for target in _TARGET
        )[:functions]
        self.databases: Tuple[str, ...] = _DATABASES

    def protein(self, index: int) -> str:
        """The ``index``-th protein identifier (SWISS-PROT-style)."""
        return f"P{index:05d}"

    def key_count(self) -> int:
        """Size of the (organism, protein) key pool."""
        return len(self.organisms) * self.proteins_per_organism

    def key(self, index: int) -> Tuple[str, str]:
        """The ``index``-th (organism, protein) key of the pool."""
        if not 0 <= index < self.key_count():
            raise WorkloadError(
                f"key index {index} out of range 0..{self.key_count() - 1}"
            )
        organism = self.organisms[index % len(self.organisms)]
        protein = self.protein(index // len(self.organisms))
        return organism, protein
