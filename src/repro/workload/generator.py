"""Per-participant transaction streams for the evaluation workload.

The paper: "each transaction consists of a series of insertions or
replacements over the Function relation, where update values are chosen
according to a heavy-tailed Zipfian distribution with characteristic
s = 1.5 ...  When a new key is inserted, a secondary table of database
cross-references is updated to include a reference for the new key; on
average, 7.3 such tuples are inserted into the secondary table."

Conflicts arise because different participants insert the same
(organism, protein) key with different Zipf-sampled function values, or
replace the value of a key they share.  The key to insert is drawn from a
shared pool with its own Zipfian popularity, which is what makes overlap
(and therefore disagreement) common, as in real curated databases where
everyone works on the same popular proteins.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.instance.base import Instance
from repro.model.schema import AttributeDef, ForeignKey, RelationSchema, Schema
from repro.model.updates import Insert, Modify, Update
from repro.workload.vocabulary import Vocabulary
from repro.workload.zipf import ZipfSampler


def curated_schema() -> Schema:
    """The evaluation schema: F(organism, protein, function) plus Xref.

    F's key is (organism, protein); Xref references it and adds a database
    name and accession number, keyed by all four columns.
    """
    function = RelationSchema(
        "F",
        [
            AttributeDef("organism", str),
            AttributeDef("protein", str),
            AttributeDef("function", str),
        ],
        key=("organism", "protein"),
    )
    xref = RelationSchema(
        "Xref",
        [
            AttributeDef("organism", str),
            AttributeDef("protein", str),
            AttributeDef("db", str),
            AttributeDef("accession", str),
        ],
        key=("organism", "protein", "db", "accession"),
    )
    return Schema(
        [function, xref],
        foreign_keys=[
            ForeignKey(
                "Xref", ("organism", "protein"), "F", ("organism", "protein")
            )
        ],
    )


@dataclass
class WorkloadConfig:
    """Tunable parameters of the synthetic workload.

    * ``transaction_size`` — number of Function-relation updates per
      transaction (the x-axis of Figure 8);
    * ``insert_fraction`` — probability that an update inserts a new key
      rather than replacing an existing one's function value;
    * ``xref_mean`` — mean cross-reference tuples per new key (paper: 7.3);
    * ``zipf_s`` — Zipf characteristic for value *and* key popularity;
    * ``key_pool`` / ``functions`` — domain sizes (smaller pools mean more
      collisions between participants).
    """

    transaction_size: int = 1
    insert_fraction: float = 0.6
    xref_mean: float = 7.3
    zipf_s: float = 1.5
    organisms: int = 12
    proteins_per_organism: int = 400
    functions: int = 400
    seed: int = 42

    def __post_init__(self) -> None:
        if self.transaction_size < 1:
            raise WorkloadError("transaction_size must be >= 1")
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise WorkloadError("insert_fraction must be within [0, 1]")
        if self.xref_mean < 0:
            raise WorkloadError("xref_mean must be non-negative")


class WorkloadGenerator:
    """Generates update sequences for one participant at a time.

    The generator is deterministic given its config seed and the sequence
    of calls; each participant gets an independent substream so adding a
    participant does not perturb the others' workloads.  The substream
    independence is also what makes the threaded epoch scheduler
    deterministic: concurrent edit phases draw from disjoint RNGs, so
    worker interleaving cannot change any participant's stream (only the
    lazily-created registry itself needs a lock).
    """

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()
        self.vocabulary = Vocabulary(
            organisms=self.config.organisms,
            proteins_per_organism=self.config.proteins_per_organism,
            functions=self.config.functions,
        )
        self._rngs: dict = {}
        self._rng_lock = threading.Lock()

    def _rng(self, participant: int) -> random.Random:
        if participant not in self._rngs:
            with self._rng_lock:
                self._rngs.setdefault(
                    participant,
                    random.Random((self.config.seed, participant).__hash__()),
                )
        return self._rngs[participant]

    def _samplers(self, participant: int) -> Tuple[ZipfSampler, ZipfSampler]:
        rng = self._rng(participant)
        key_sampler = ZipfSampler(
            self.vocabulary.key_count(), self.config.zipf_s, rng
        )
        value_sampler = ZipfSampler(
            len(self.vocabulary.functions), self.config.zipf_s, rng
        )
        return key_sampler, value_sampler

    # ------------------------------------------------------------------

    def transaction_updates(
        self, participant: int, instance: Instance
    ) -> List[Update]:
        """One transaction's update list for ``participant``.

        Reads ``instance`` (the participant's current local state) to
        decide whether a sampled key is an insertion (key absent locally)
        or a replacement (key present), and to replace from the row value
        actually held — updates must apply cleanly to the local instance.
        """
        rng = self._rng(participant)
        key_sampler, value_sampler = self._samplers(participant)
        updates: List[Update] = []
        touched: set = set()

        for _ in range(self.config.transaction_size):
            update = self._one_function_update(
                participant, instance, rng, key_sampler, value_sampler,
                updates, touched,
            )
            if update is None:
                continue
            updates.append(update)
            if isinstance(update, Insert):
                updates.extend(
                    self._xrefs_for(participant, update.row, rng)
                )
        return updates

    def _one_function_update(
        self,
        participant: int,
        instance: Instance,
        rng: random.Random,
        key_sampler: ZipfSampler,
        value_sampler: ZipfSampler,
        pending: Sequence[Update],
        touched: set,
    ) -> Optional[Update]:
        """Sample one insert-or-replace over F, avoiding intra-transaction
        key collisions (each transaction touches each key at most once)."""
        function = self.vocabulary.functions[value_sampler.sample()]
        want_insert = rng.random() < self.config.insert_fraction

        for _attempt in range(32):
            organism, protein = self.vocabulary.key((key_sampler.sample()))
            key = (organism, protein)
            if key in touched:
                continue
            current = instance.get("F", key)
            if want_insert and current is None:
                touched.add(key)
                return Insert("F", (organism, protein, function), participant)
            if not want_insert and current is not None:
                if current[2] == function:
                    continue  # replacement must change the value
                touched.add(key)
                return Modify(
                    "F",
                    current,
                    (organism, protein, function),
                    participant,
                )
        # Fall back to whatever operation the last sampled key admits.
        for _attempt in range(32):
            organism, protein = self.vocabulary.key(key_sampler.sample())
            key = (organism, protein)
            if key in touched:
                continue
            current = instance.get("F", key)
            touched.add(key)
            if current is None:
                return Insert("F", (organism, protein, function), participant)
            if current[2] != function:
                return Modify(
                    "F", current, (organism, protein, function), participant
                )
        return None  # pathologically saturated domain; skip this update

    def _xrefs_for(
        self, participant: int, function_row: Tuple, rng: random.Random
    ) -> List[Update]:
        """Cross-reference inserts for a newly inserted key.

        The count is sampled so its mean is ``xref_mean`` (paper: 7.3):
        a base of ``floor(mean)`` plus one with the fractional probability.
        """
        organism, protein, _function = function_row
        base = int(self.config.xref_mean)
        count = base + (1 if rng.random() < self.config.xref_mean - base else 0)
        xrefs: List[Update] = []
        for index in range(count):
            database = self.vocabulary.databases[
                rng.randrange(len(self.vocabulary.databases))
            ]
            accession = f"{database[:2].upper()}{rng.randrange(10**6):06d}-{index}"
            xrefs.append(
                Insert(
                    "Xref", (organism, protein, database, accession), participant
                )
            )
        return xrefs
