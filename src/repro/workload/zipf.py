"""A Zipfian sampler over ranked items.

The paper samples protein-function values "according to a heavy-tailed
Zipfian distribution with characteristic s = 1.5".  Rank ``k`` (1-based)
has probability proportional to ``k ** -s``.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples 0-based indices with Zipfian rank probabilities."""

    def __init__(self, n: int, s: float = 1.5, rng: Optional[random.Random] = None):
        if n < 1:
            raise WorkloadError(f"Zipf sampler needs n >= 1, got {n}")
        if s <= 0:
            raise WorkloadError(f"Zipf characteristic must be positive, got {s}")
        self.n = n
        self.s = s
        # Deterministic by default: an OS-seeded fallback RNG would make
        # two identically configured samplers diverge run to run.
        self._rng = rng if rng is not None else random.Random(0)
        weights = [rank ** -s for rank in range(1, n + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one 0-based index (0 is the most popular rank)."""
        point = self._rng.random()
        return bisect.bisect_left(self._cumulative, point)

    def probability(self, index: int) -> float:
        """The probability mass of a 0-based index."""
        if not 0 <= index < self.n:
            raise WorkloadError(f"index {index} out of range for n={self.n}")
        lower = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - lower
