"""Exception hierarchy shared by every subpackage of :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subsystem raises the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A schema definition is invalid, or data does not match its schema."""


class ConstraintViolation(ReproError):
    """Applying an update would violate an integrity constraint."""


class UpdateError(ReproError):
    """An update or transaction is malformed or cannot be applied."""


class FlattenError(UpdateError):
    """An update sequence is internally inconsistent and cannot be flattened."""


class PolicyError(ReproError):
    """A trust policy or acceptance rule is malformed."""


class ConfigError(ReproError):
    """A confederation, registry, or participant configuration is invalid.

    Raised for *caller* mistakes — an unknown store backend name, a
    duplicate participant id, a malformed :class:`ConfederationConfig` —
    as opposed to :class:`StoreError`, which signals store I/O and
    protocol faults.
    """


class StoreError(ReproError):
    """The update store rejected or could not complete an operation."""


class UnknownTransactionError(StoreError):
    """A transaction id was requested that the store has never seen."""


class FaultError(StoreError):
    """A store operation failed because of an injected or real fault.

    Base class for failures the fault-tolerance layer (PR 6) can
    surface past its own masking: lost state a replica could not cover,
    or a retry budget running out.
    """


class RetryExhaustedError(FaultError):
    """A request/reply exchange failed every configured retry attempt.

    The message names the recipient, message kind, and attempt count —
    everything needed to diagnose which reply kept getting lost.
    """


class PublicationError(StoreError):
    """A publication violated the store's protocol (e.g. reused epoch)."""


class ReconciliationError(ReproError):
    """The reconciliation engine detected an inconsistent internal state."""


class ResolutionError(ReconciliationError):
    """A conflict-resolution request referenced an unknown group or option."""


class NetworkError(ReproError):
    """The simulated network could not deliver a message."""


class SchedulerError(ReproError):
    """An epoch scheduler's phase failed.

    Raised by the threaded scheduler when a worker's edit or reconcile
    phase raises: the round is aborted *before* the publish barrier (a
    half-edited round must never publish), and the message names the
    failing participant.  The original exception rides on ``__cause__``.
    """


class WorkloadError(ReproError):
    """The synthetic workload generator was configured incorrectly."""
