"""A whole CDSS: participants sharing one schema and one update store."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cdss.participant import Participant
from repro.errors import StoreError
from repro.instance.base import Instance
from repro.metrics.state_ratio import state_ratio
from repro.policy.acceptance import TrustPolicy
from repro.store.base import UpdateStore


class CDSS:
    """A confederation of participants over one update store.

    Convenience wrapper: creates participants, tracks them by id, and
    exposes system-wide metrics (the evaluation section's *state ratio*).
    """

    def __init__(
        self, store: UpdateStore, engine_caching: bool = True
    ) -> None:
        """``engine_caching=False`` builds participants whose engines
        recompute everything per epoch (benchmark baseline)."""
        self.store = store
        self.engine_caching = engine_caching
        self._participants: Dict[int, Participant] = {}

    @property
    def schema(self):
        """The shared schema."""
        return self.store.schema

    def add_participant(
        self,
        participant_id: int,
        policy: TrustPolicy,
        instance: Optional[Instance] = None,
    ) -> Participant:
        """Create and register a participant."""
        if participant_id in self._participants:
            raise StoreError(
                f"participant {participant_id} already exists in this CDSS"
            )
        participant = Participant(
            participant_id,
            self.store,
            policy,
            instance,
            engine_caching=self.engine_caching,
        )
        self._participants[participant_id] = participant
        return participant

    def add_mutually_trusting_participants(
        self, ids: Sequence[int], priority: int = 1
    ) -> List[Participant]:
        """The evaluation-section setup: everyone trusts everyone equally.

        Equal priorities mean conflicts "must be manually rather than
        automatically resolved" — the configuration all the paper's
        experiments use.
        """
        participants = []
        for pid in ids:
            policy = TrustPolicy()
            for other in ids:
                if other != pid:
                    policy.trust_participant(other, priority)
            participants.append(self.add_participant(pid, policy))
        return participants

    def participant(self, participant_id: int) -> Participant:
        """Look up a participant by id."""
        try:
            return self._participants[participant_id]
        except KeyError:
            raise StoreError(
                f"no participant {participant_id} in this CDSS"
            ) from None

    @property
    def participants(self) -> List[Participant]:
        """All participants, ordered by id."""
        return [self._participants[pid] for pid in sorted(self._participants)]

    def state_ratio(self, relation: Optional[str] = None) -> float:
        """The evaluation's state ratio across all participants."""
        return state_ratio(
            {p.id: p.instance for p in self.participants}, relation=relation
        )

    def __len__(self) -> int:
        return len(self._participants)
