"""Deprecated: the legacy ``CDSS`` wrapper.

``CDSS`` predates the unified confederation API and remains as a thin
shim delegating to :class:`repro.confed.Confederation`.  New code should
build a :class:`~repro.confed.config.ConfederationConfig` and use the
facade directly — it adds by-name store selection, lifecycle
(``open``/``close``), ``snapshot``/``restore``, and the event hook bus.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

from repro.cdss.participant import Participant
from repro.instance.base import Instance
from repro.policy.acceptance import TrustPolicy
from repro.store.base import UpdateStore

_DEPRECATION = (
    "CDSS is deprecated; use repro.confed.Confederation with a "
    "ConfederationConfig instead"
)


class CDSS:
    """Deprecated shim over :class:`repro.confed.Confederation`.

    Accepts a pre-built store exactly as before; every method delegates
    to the facade.  One deliberate behaviour change from pre-2.0: a
    duplicate or unknown participant id now raises
    :class:`~repro.errors.ConfigError` (a caller error) instead of
    :class:`~repro.errors.StoreError` — catch
    :class:`~repro.errors.ReproError` to span both eras.
    """

    def __init__(
        self,
        store: Optional[UpdateStore] = None,
        engine_caching: bool = True,
        _confederation=None,
    ) -> None:
        """``engine_caching=False`` builds participants whose engines
        recompute everything per epoch (benchmark baseline).
        ``_confederation`` is internal: wrap an existing facade without
        re-warning (used by the ``Simulation`` shim)."""
        if _confederation is None:
            warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
            from repro.confed.confederation import Confederation
            from repro.confed.config import ConfederationConfig

            _confederation = Confederation(
                ConfederationConfig(engine_caching=engine_caching),
                store=store,
            ).open()
        self._confed = _confederation

    @property
    def confederation(self):
        """The underlying :class:`repro.confed.Confederation`."""
        return self._confed

    @property
    def store(self) -> UpdateStore:
        """The shared update store."""
        return self._confed.store

    @property
    def engine_caching(self) -> bool:
        """Whether participants are built with the incremental caches."""
        return self._confed.config.engine_caching

    @property
    def schema(self):
        """The shared schema."""
        return self._confed.schema

    def add_participant(
        self,
        participant_id: int,
        policy: TrustPolicy,
        instance: Optional[Instance] = None,
    ) -> Participant:
        """Create and register a participant.

        A duplicate id raises :class:`~repro.errors.ConfigError` — it is
        a caller error, not a store fault.
        """
        return self._confed.add_participant(participant_id, policy, instance)

    def add_mutually_trusting_participants(
        self, ids: Sequence[int], priority: int = 1
    ) -> List[Participant]:
        """The evaluation-section setup: everyone trusts everyone equally."""
        return self._confed.add_mutually_trusting_participants(ids, priority)

    def participant(self, participant_id: int) -> Participant:
        """Look up a participant by id."""
        return self._confed.participant(participant_id)

    @property
    def participants(self) -> List[Participant]:
        """All participants, ordered by id."""
        return self._confed.participants

    def state_ratio(self, relation: Optional[str] = None) -> float:
        """The evaluation's state ratio across all participants."""
        return self._confed.state_ratio(relation=relation)

    def __len__(self) -> int:
        return len(self._confed)
