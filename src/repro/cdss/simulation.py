"""Deprecated: the legacy ``Simulation`` driver.

``Simulation`` predates the unified confederation API and remains as a
thin shim: a :class:`SimulationConfig` maps onto a
:class:`~repro.confed.config.ConfederationConfig` and the schedule runs
through :meth:`repro.confed.Confederation.run`.  New code should use the
facade directly; the experimental procedure itself (Section 6 — ``n``
mutually trusting participants, round-robin publish-and-reconcile
epochs, state-ratio and timing metrics) is documented there.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.confed.config import ConfederationConfig
from repro.confed.report import ConfederationReport
from repro.store.base import UpdateStore
from repro.workload.generator import WorkloadConfig

#: The legacy report name: the facade's report, unchanged.
SimulationReport = ConfederationReport

_DEPRECATION = (
    "Simulation is deprecated; use repro.confed.Confederation.from_config "
    "with a ConfederationConfig and run() instead"
)


@dataclass
class SimulationConfig:
    """Parameters of one simulated experiment run (legacy shape).

    ``final_reconcile`` adds one reconcile-only pass (no publishing) at the
    end of the schedule.  The timing experiments (Figures 10 and 12) enable
    it so every published transaction is considered by every peer no matter
    the reconciliation interval — otherwise configurations with few rounds
    would simply deliver less data and report artificially low times.
    """

    participants: int = 10
    reconciliation_interval: int = 4  # transactions between reconciliations
    rounds: int = 4  # publish+reconcile cycles per participant
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    final_reconcile: bool = False
    #: False runs every engine with caching disabled (perf baseline).
    engine_caching: bool = True

    def to_confederation_config(
        self, store: str = "memory"
    ) -> ConfederationConfig:
        """The equivalent declarative config: peers ``1..n``, mutual
        trust, and this schedule."""
        return ConfederationConfig(
            store=store,
            peers=tuple(range(1, self.participants + 1)),
            workload=self.workload,
            reconciliation_interval=self.reconciliation_interval,
            rounds=self.rounds,
            final_reconcile=self.final_reconcile,
            engine_caching=self.engine_caching,
        )


class Simulation:
    """Deprecated shim: one runnable experiment over a confederation."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        store: Optional[UpdateStore] = None,
        store_factory: Optional[Callable[[], UpdateStore]] = None,
    ) -> None:
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        from repro.cdss.system import CDSS
        from repro.confed.confederation import Confederation

        self.config = config or SimulationConfig()
        if store is not None and store_factory is not None:
            raise ValueError("pass either a store or a store_factory, not both")
        if store is None and store_factory is not None:
            store = store_factory()
        self.confederation = Confederation(
            self.config.to_confederation_config(), store=store
        ).open()
        self.cdss = CDSS(_confederation=self.confederation)

    @property
    def generator(self):
        """The workload generator driving the schedule."""
        return self.confederation.generator

    def run(self) -> SimulationReport:
        """Execute the full schedule and return the report."""
        report = self.confederation.run()
        return replace(report, config=self.config)

    def report(self) -> SimulationReport:
        """Metrics of the run so far."""
        return replace(self.confederation.report(), config=self.config)
