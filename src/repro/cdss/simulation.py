"""The evaluation-section driver: seeded multi-peer simulations.

Reproduces the experimental procedure of Section 6: ``n`` participants who
all trust each other at equal priority edit their local curated databases
(the synthetic SWISS-PROT workload), and every ``reconciliation_interval``
transactions each publishes and reconciles.  Participants take turns in a
fixed order, which matches the paper's global epoch ordering.

The report collects the two metrics of the paper: the *state ratio* over
the Function relation and per-participant reconciliation times split into
store and local components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cdss.system import CDSS
from repro.core.cache import CacheStats
from repro.metrics.timing import TimingAggregate, aggregate_timings
from repro.store.base import UpdateStore
from repro.store.memory import MemoryUpdateStore
from repro.workload.generator import (
    WorkloadConfig,
    WorkloadGenerator,
    curated_schema,
)


@dataclass
class SimulationConfig:
    """Parameters of one simulated experiment run.

    ``final_reconcile`` adds one reconcile-only pass (no publishing) at the
    end of the schedule.  The timing experiments (Figures 10 and 12) enable
    it so every published transaction is considered by every peer no matter
    the reconciliation interval — otherwise configurations with few rounds
    would simply deliver less data and report artificially low times.
    """

    participants: int = 10
    reconciliation_interval: int = 4  # transactions between reconciliations
    rounds: int = 4  # publish+reconcile cycles per participant
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    final_reconcile: bool = False
    #: False runs every engine with caching disabled (perf baseline).
    engine_caching: bool = True


@dataclass
class SimulationReport:
    """Everything a benchmark needs from one simulation run."""

    config: SimulationConfig
    state_ratio: float
    timings: Dict[int, TimingAggregate]
    transactions_published: int
    store_messages: int
    #: Engine cache counters summed over all participants.
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def mean_total_seconds_per_participant(self) -> float:
        """Average, over participants, of their total reconciliation time."""
        if not self.timings:
            return 0.0
        totals = [agg.total_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_store_seconds_per_participant(self) -> float:
        """Average total store time per participant."""
        if not self.timings:
            return 0.0
        totals = [agg.total_store_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_local_seconds_per_participant(self) -> float:
        """Average total local time per participant."""
        if not self.timings:
            return 0.0
        totals = [agg.total_local_seconds for agg in self.timings.values()]
        return sum(totals) / len(totals)

    @property
    def mean_seconds_per_reconciliation(self) -> float:
        """Average time of a single reconciliation across all peers."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_seconds for agg in self.timings.values())
        return total / count

    @property
    def mean_store_seconds_per_reconciliation(self) -> float:
        """Average store time of a single reconciliation."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_store_seconds for agg in self.timings.values())
        return total / count

    @property
    def mean_local_seconds_per_reconciliation(self) -> float:
        """Average local time of a single reconciliation."""
        count = sum(agg.reconciliations for agg in self.timings.values())
        if count == 0:
            return 0.0
        total = sum(agg.total_local_seconds for agg in self.timings.values())
        return total / count


class Simulation:
    """One runnable experiment: a CDSS, a workload, and a schedule."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        store: Optional[UpdateStore] = None,
        store_factory: Optional[Callable[[], UpdateStore]] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if store is not None and store_factory is not None:
            raise ValueError("pass either a store or a store_factory, not both")
        if store is None:
            factory = store_factory or (
                lambda: MemoryUpdateStore(curated_schema())
            )
            store = factory()
        self.cdss = CDSS(store, engine_caching=self.config.engine_caching)
        self.generator = WorkloadGenerator(self.config.workload)
        self.cdss.add_mutually_trusting_participants(
            list(range(1, self.config.participants + 1))
        )
        self._transactions_published = 0

    def run(self) -> SimulationReport:
        """Execute the full schedule and return the report."""
        for _round in range(self.config.rounds):
            for participant in self.cdss.participants:
                self._edit_and_sync(participant)
        if self.config.final_reconcile:
            for participant in self.cdss.participants:
                participant.reconcile()
        return self.report()

    def _edit_and_sync(self, participant) -> None:
        for _ in range(self.config.reconciliation_interval):
            updates = self.generator.transaction_updates(
                participant.id, participant.instance
            )
            if updates:
                participant.execute(updates)
                self._transactions_published += 1
        participant.publish_and_reconcile()

    def report(self) -> SimulationReport:
        """Metrics of the run so far."""
        cache_stats = CacheStats()
        for participant in self.cdss.participants:
            cache_stats.add(participant.reconciler.cache.stats)
        return SimulationReport(
            config=self.config,
            state_ratio=self.cdss.state_ratio(relation="F"),
            timings={
                p.id: aggregate_timings(p.timings)
                for p in self.cdss.participants
            },
            transactions_published=self._transactions_published,
            store_messages=self.cdss.store.perf.messages,
            cache_stats=cache_stats,
        )
