"""CDSS orchestration: participants and whole-system drivers.

* :class:`repro.cdss.participant.Participant` — one autonomous peer: a
  local instance, a trust policy, a reconciler, and the publish /
  reconcile / resolve lifecycle of Definition 1;
* :class:`repro.cdss.system.CDSS` — a confederation of participants over
  one update store;
* :class:`repro.cdss.simulation.Simulation` — the evaluation-section
  driver: seeded workload, round-robin publish-and-reconcile epochs,
  metric collection.
"""

from repro.cdss.participant import Participant, ReconcileTiming
from repro.cdss.simulation import Simulation, SimulationConfig, SimulationReport
from repro.cdss.system import CDSS

__all__ = [
    "CDSS",
    "Participant",
    "ReconcileTiming",
    "Simulation",
    "SimulationConfig",
    "SimulationReport",
]
