"""CDSS orchestration: participants and whole-system drivers.

* :class:`repro.cdss.participant.Participant` — one autonomous peer: a
  local instance, a trust policy, a reconciler, and the publish /
  reconcile / resolve lifecycle of Definition 1;
* :class:`repro.cdss.system.CDSS` — **deprecated** shim over
  :class:`repro.confed.Confederation`;
* :class:`repro.cdss.simulation.Simulation` — **deprecated** shim over
  :meth:`repro.confed.Confederation.run`.

New code should use :mod:`repro.confed`: a declarative
:class:`~repro.confed.config.ConfederationConfig` plus the
:class:`~repro.confed.confederation.Confederation` facade.
"""

from repro.cdss.participant import Participant, ReconcileTiming
from repro.cdss.simulation import Simulation, SimulationConfig, SimulationReport
from repro.cdss.system import CDSS

__all__ = [
    "CDSS",
    "Participant",
    "ReconcileTiming",
    "Simulation",
    "SimulationConfig",
    "SimulationReport",
]
