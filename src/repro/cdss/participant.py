"""One CDSS participant: local instance + policy + reconciliation lifecycle.

A participant edits its local instance through :meth:`Participant.execute`
(each call is one transaction), occasionally :meth:`Participant.publish`\\ es
the accumulated transactions, and :meth:`Participant.reconcile`\\ s to import
other peers' updates.  Publishing and reconciling are usually performed
together (:meth:`Participant.publish_and_reconcile`), as the paper assumes.

The participant is the **transport layer** of the PR 3 session split: it
is the only layer that talks to the update store.  Every store call goes
through :meth:`Participant._store_call`, which holds the store's lock
(so the threaded epoch scheduler can run many participants against one
store), measures the call, and pays any configured real latency *after*
releasing the lock.  The decisions themselves are produced by the
transport-free :class:`~repro.core.session.ReconcileSession`.

Every reconciliation records a :class:`ReconcileTiming` splitting the cost
into *store* time (wall-clock spent inside update-store calls plus the
simulated network latency those calls charged) and *local* time (the
reconciliation algorithm itself) — the two bars of the paper's Figures 10
and 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cache import ExtensionCache
from repro.core.decisions import ReconcileResult
from repro.core.engine import Reconciler
from repro.core.resolution import Resolution, resolve_conflicts
from repro.core.session import ReconcileSession
from repro.core.state import ParticipantState
from repro.instance.base import Instance
from repro.instance.memory import MemoryInstance
from repro.model.transactions import Transaction, TransactionId
from repro.model.updates import Update
from repro.policy.acceptance import TrustPolicy
from repro.store.base import PerfCounters, UpdateStore


@dataclass
class ReconcileTiming:
    """Cost breakdown of one reconciliation (or resolution re-run)."""

    recno: int
    store_seconds: float  # wall time inside store calls + simulated latency
    local_seconds: float  # reconciliation algorithm time
    store_messages: int  # messages the store exchanged on our behalf

    @property
    def total_seconds(self) -> float:
        """Store plus local time."""
        return self.store_seconds + self.local_seconds


class Participant:
    """One autonomous peer of the CDSS."""

    def __init__(
        self,
        participant_id: int,
        store: UpdateStore,
        policy: TrustPolicy,
        instance: Optional[Instance] = None,
        network_centric: bool = False,
        register: bool = True,
        engine_caching: bool = True,
        hooks: Optional[object] = None,
    ) -> None:
        """``network_centric=True`` delegates extension computation and
        conflict detection to the store (Figure 3's network-centric mode);
        requires a store that implements ``begin_network_reconciliation``.
        ``register=False`` re-attaches to an existing registration (used by
        :meth:`rebuild`).  ``engine_caching=False`` disables the engine's
        extension/conflict caches (every epoch recomputes from scratch —
        the perf benchmark's baseline).  ``hooks`` is an optional event
        bus (:class:`repro.confed.hooks.HookBus`, duck-typed to keep this
        module free of upward imports); publication and reconciliation
        emit lifecycle events into it."""
        self.id = participant_id
        self.store = store
        self.policy = policy
        self.network_centric = network_centric
        self.hooks = hooks
        self.instance = instance or MemoryInstance(store.schema)
        self.state = ParticipantState(participant_id)
        self.reconciler = Reconciler(
            store.schema,
            self.instance,
            self.state,
            cache=ExtensionCache(enabled=engine_caching),
            hooks=hooks,
        )
        self.session = ReconcileSession(self.reconciler, hooks=hooks)
        self.timings: List[ReconcileTiming] = []
        self._sequence = 0
        self._unpublished: List[Transaction] = []
        self._own_delta: List[Update] = []
        if register:
            # Registration is a store call like any other: through the
            # transport discipline, under the store lock.
            self._store_call(store.register_participant, participant_id, policy)

    @classmethod
    def rebuild(
        cls,
        participant_id: int,
        store: UpdateStore,
        policy: TrustPolicy,
        instance: Optional[Instance] = None,
        network_centric: bool = False,
        engine_caching: bool = True,
        hooks: Optional[object] = None,
    ) -> "Participant":
        """Reconstruct a participant entirely from the update store.

        Section 5.2: "each client contains only soft state; it is possible
        to reconstruct the entire state of the participant, up to his or
        her last reconciliation, from the update store."  The applied
        transactions are replayed in publish order into a fresh instance;
        rejected and deferred sets are restored; deferred transactions'
        bodies and antecedent graphs are refetched so their conflict
        groups can be rebuilt by a follow-up reconciliation pass.

        Replay mirrors the engine's application semantics (flattened
        footprints via ``apply_set``, never raw update sequences): an
        accepted antecedent chain may span several epochs, and its
        *intermediate* states can collide with rows applied from other
        origins even though its net effect fits.  Transactions whose raw
        updates do not fit yet are therefore buffered and flattened
        together with their successors until the combined footprint
        applies — exactly the net effect the live engine installed.
        """
        from repro.core.extensions import RelevantTransaction
        from repro.errors import ConstraintViolation, FlattenError
        from repro.model.flatten import flatten
        from repro.store.logic import antecedent_closure

        participant = cls(
            participant_id,
            store,
            policy,
            instance,
            network_centric=network_centric,
            register=False,
            engine_caching=engine_caching,
            hooks=hooks,
        )
        (applied, rejected, deferred), _, _ = participant._store_call(
            store.decided_transactions, participant_id
        )
        buffered: List[Update] = []
        for transaction in applied:
            buffered.extend(transaction.updates)
            participant.state.record_applied([transaction.tid])
            if transaction.origin == participant_id:
                participant._sequence = max(
                    participant._sequence, transaction.tid.sequence + 1
                )
            try:
                operations = flatten(store.schema, buffered)
                participant.instance.apply_set(operations)
            except (ConstraintViolation, FlattenError):
                continue  # a chain is still mid-flight; keep buffering
            buffered = []
        if buffered:
            # The applied set is store-verified consistent; a leftover
            # buffer that still does not fit is a real reconstruction
            # failure and must surface, not be dropped.
            participant.instance.apply_set(flatten(store.schema, buffered))
        participant.state.record_rejected(rejected)

        def fetch_closure_locked(roots, applied_set):
            """Graph entries of the antecedent closure of ``roots``.

            The ``*_locked`` suffix is the transport convention: this
            helper is only ever executed *through* ``_store_call``, so
            its store lookups run under the store lock.
            """
            closure = antecedent_closure(
                lambda t: store._nc_lookup(t)[1], roots, stop=applied_set
            )
            return [store._nc_lookup(member) for member in closure]

        if rejected:
            # Future roots may name rejected transactions as antecedents;
            # the engine then needs their bodies and publish orders from
            # the local graph (the store ships only undecided members).
            applied_set = set(participant.state.applied)
            entries, _, _ = participant._store_call(
                fetch_closure_locked, rejected, applied_set
            )
            for body, antes, member_order in entries:
                participant.state.graph.add(body, antes, member_order)

        if deferred:
            applied_set = set(participant.state.applied)

            def fetch_deferred_locked(tids):
                """Each deferred root with its closure's graph entries
                (executed through ``_store_call``, see above)."""
                fetched = []
                for tid in tids:
                    transaction, _antes, order = store._nc_lookup(tid)
                    fetched.append(
                        (transaction, order, fetch_closure_locked([tid], applied_set))
                    )
                return fetched

            fetched, _, _ = participant._store_call(fetch_deferred_locked, deferred)
            for transaction, order, entries in fetched:
                if transaction.origin == participant_id:  # pragma: no cover
                    participant._sequence = max(
                        participant._sequence, transaction.tid.sequence + 1
                    )
                for body, antes, member_order in entries:
                    participant.state.graph.add(body, antes, member_order)
                participant.state.record_deferred(
                    RelevantTransaction(
                        transaction=transaction,
                        priority=policy.priority_of(store.schema, transaction),
                        order=order,
                    ),
                    recno=0,
                )
            # Rebuild soft state (dirty keys, conflict groups) from the
            # deferred set without re-deciding anything — re-evaluation
            # belongs to the next real reconciliation.
            participant.reconciler.rebuild_soft_state()
        participant.state.last_recno, _, _ = participant._store_call(
            store.last_reconciliation_epoch, participant_id
        )
        return participant

    # ------------------------------------------------------------------
    # Local editing

    def execute(self, updates: Sequence[Update]) -> Transaction:
        """Run one local transaction: apply to the instance and queue it
        for the next publication.  Raises
        :class:`~repro.errors.ConstraintViolation` (and applies nothing)
        if the updates do not fit the local instance.
        """
        updates = list(updates)
        self.instance.apply_all(updates)
        transaction = Transaction(
            self._next_tid(), tuple(updates)
        )
        self._unpublished.append(transaction)
        self._own_delta.extend(updates)
        return transaction

    def _next_tid(self) -> TransactionId:
        tid = TransactionId(self.id, self._sequence)
        self._sequence += 1
        return tid

    @property
    def unpublished(self) -> Tuple[Transaction, ...]:
        """Locally executed transactions not yet published."""
        return tuple(self._unpublished)

    # ------------------------------------------------------------------
    # Publication and reconciliation

    def _store_call(self, method, *args) -> Tuple[object, PerfCounters, float]:
        """Run one store call: a lock-held store phase, then a
        clock-paid latency phase; returns ``(result, perf delta, wall
        seconds inside the call)``.

        The two phases are deliberately split.  The **store phase**
        (:meth:`_store_phase`) holds the store lock and snapshots the
        perf delta.  The **latency phase** pays that delta through
        ``store.pay_latency`` *after* the lock is released, so
        concurrent sessions wait in parallel — and, because the payment
        goes through the store's :class:`~repro.net.clock.LatencyClock`
        rather than an inline sleep, the asyncio epoch scheduler can
        turn the wait into an awaited ``asyncio.sleep`` without ever
        holding ``store.lock`` across an await.  ``pay_latency`` is
        part of the :class:`~repro.store.base.UpdateStore` contract (it
        used to be reached through ``getattr``, which let a third-party
        driver missing the method skip latency payment silently).
        Stores without the ``lock`` attribute (minimal test doubles
        that are not real :class:`UpdateStore`\\ s) are called directly
        and charge nothing, so there is nothing to pay.
        """
        store = self.store
        if getattr(store, "lock", None) is None:
            started = time.perf_counter()
            result = method(*args)
            return result, PerfCounters(), time.perf_counter() - started
        result, delta, elapsed = self._store_phase(method, *args)
        store.pay_latency(delta.simulated_seconds)
        return result, delta, elapsed

    def _store_phase(self, method, *args) -> Tuple[object, PerfCounters, float]:
        """The lock-held half of :meth:`_store_call`.

        Serializes store access when a concurrent epoch scheduler
        drives several participants at once (stores are not internally
        thread-safe); the perf snapshot/delta must happen inside the
        lock so concurrent callers cannot misattribute each other's
        charges.  The wall clock starts *after* the lock is acquired —
        contention wait is scheduling, not store cost, and counting it
        would inflate every participant's store bars under a concurrent
        schedule.  No latency is paid here: that is the caller's
        latency phase, outside the lock.
        """
        store = self.store
        with store.lock:
            started = time.perf_counter()
            before = store.perf.snapshot()
            result = method(*args)
            delta = store.perf.minus(before)
        return result, delta, time.perf_counter() - started

    def publish(self) -> int:
        """Publish all unpublished transactions; returns the epoch."""
        transactions = self._unpublished
        self._unpublished = []
        epoch, _delta, _elapsed = self._store_call(
            self.store.publish, self.id, transactions
        )
        self.state.record_applied([t.tid for t in transactions])
        if self.hooks is not None:
            self.hooks.emit(
                "publish",
                participant=self.id,
                epoch=epoch,
                transactions=tuple(transactions),
            )
        return epoch

    def reconcile(self) -> ReconcileResult:
        """Import other peers' updates (one ``ReconcileUpdates`` run).

        Transport only: fetch the batch through the single store
        contract, hand it to the session (the transport-free decision
        layer), and report the upstream result back to the store.
        """
        batch, fetch_delta, fetch_elapsed = self._store_call(
            self.store.reconciliation_batch, self.id, self.network_centric
        )
        outcome = self.session.run(batch, own_updates=self._own_delta)
        _, complete_delta, complete_elapsed = self._store_call(
            self.store.complete_reconciliation, self.id, outcome.upstream
        )

        result = outcome.result
        timing = ReconcileTiming(
            recno=result.recno,
            store_seconds=fetch_elapsed
            + complete_elapsed
            + fetch_delta.simulated_seconds
            + complete_delta.simulated_seconds,
            local_seconds=outcome.local_seconds,
            store_messages=fetch_delta.messages + complete_delta.messages,
        )
        self.timings.append(timing)
        self._own_delta = []
        if self.hooks is not None:
            self.hooks.emit(
                "reconcile",
                participant=self.id,
                recno=result.recno,
                result=result,
                timing=timing,
            )
        return result

    def publish_and_reconcile(self) -> ReconcileResult:
        """The paper's combined step: publish, then reconcile."""
        self.publish()
        return self.reconcile()

    # ------------------------------------------------------------------
    # Conflict resolution

    def open_conflicts(self):
        """The participant's unresolved conflict groups."""
        return self.state.open_conflicts()

    def resolve(self, resolutions: Sequence[Resolution]) -> ReconcileResult:
        """Resolve conflicts, re-reconcile, and report decisions upstream."""
        result = resolve_conflicts(self.reconciler, list(resolutions))
        self._store_call(self.store.complete_reconciliation, self.id, result)
        return result

    # ------------------------------------------------------------------

    def total_store_seconds(self) -> float:
        """Sum of store time across all reconciliations."""
        return sum(t.store_seconds for t in self.timings)

    def total_local_seconds(self) -> float:
        """Sum of local reconciliation time across all reconciliations."""
        return sum(t.local_seconds for t in self.timings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Participant(p{self.id}, {self.state!r})"
