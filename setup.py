"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (setuptools ``develop`` mode), which
does not require building a wheel.
"""

from setuptools import setup

setup()
