#!/usr/bin/env python3
"""Documentation gate: docstring coverage, link integrity, honest snippets.

Three checks, all stdlib-only so the gate runs anywhere the tests run
(CI additionally runs ``ruff check`` with the D100-D103 rules — this
tool mirrors that docstring contract for environments without ruff):

1. **Docstring coverage** — every public module, class, method, and
   function under ``src/repro`` carries a docstring.  A def-line
   ``# noqa: D10x`` waives one definition (matching the ruff gate's
   waiver syntax); private names (leading underscore) and dunders are
   out of scope.

2. **Markdown link integrity** — every relative link in the checked
   markdown files resolves to a file that exists.  External links
   (``http``/``https``/``mailto``) are not fetched.

3. **Honest CLI snippets** — every ``python -m repro.analysis``
   invocation quoted in the docs names only flags the real parser
   accepts, and every rule code passed to ``--select`` is a registered
   rule.  Docs that drift from the CLI fail the build.

Usage:
    PYTHONPATH=src python tools/check_docs.py

Exit status 0 when clean, 1 with findings (one per line, file:line).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DOCSTRING_ROOT = REPO / "src" / "repro"
MARKDOWN_FILES = (
    "README.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKS.md",
)

_NOQA = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_ANALYSIS_CLI = re.compile(r"python -m repro\.analysis[^\n`]*")


def _waived(source_lines, node) -> bool:
    """True when the def/class line carries a ``# noqa: D...`` waiver."""
    line = source_lines[node.lineno - 1]
    match = _NOQA.search(line)
    return bool(match) and any(
        code.strip().startswith("D") for code in match.group(1).split(",")
    )


def check_docstrings() -> list:
    """Public definitions under src/repro missing a docstring."""
    problems = []
    for path in sorted(DOCSTRING_ROOT.rglob("*.py")):
        source = path.read_text()
        lines = source.splitlines()
        tree = ast.parse(source)
        rel = path.relative_to(REPO)
        if not ast.get_docstring(tree):
            problems.append(f"{rel}:1: missing module docstring")
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) or _waived(lines, node):
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            problems.append(
                f"{rel}:{node.lineno}: missing docstring on public "
                f"{kind} {node.name!r}"
            )
    return problems


def check_links() -> list:
    """Relative markdown links that do not resolve to a file."""
    problems = []
    for name in MARKDOWN_FILES:
        path = REPO / name
        if not path.exists():
            problems.append(f"{name}:1: checked markdown file is missing")
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not (path.parent / relative).exists():
                    problems.append(
                        f"{name}:{lineno}: broken relative link {target!r}"
                    )
    return problems


def check_cli_snippets() -> list:
    """Quoted ``python -m repro.analysis`` calls using unreal flags."""
    from repro.analysis.__main__ import build_parser
    from repro.analysis.rules import default_rules

    known_flags = set()
    for action in build_parser()._actions:
        known_flags.update(action.option_strings)
    known_codes = {rule.code for rule in default_rules()}

    problems = []
    for name in MARKDOWN_FILES:
        path = REPO / name
        if not path.exists():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for snippet in _ANALYSIS_CLI.findall(line):
                tokens = snippet.split()
                for index, token in enumerate(tokens):
                    flag, _, inline_value = token.partition("=")
                    if not flag.startswith("--"):
                        continue
                    if flag not in known_flags:
                        problems.append(
                            f"{name}:{lineno}: snippet names unknown "
                            f"flag {flag!r} (known: {sorted(known_flags)})"
                        )
                        continue
                    if flag == "--select":
                        value = inline_value or (
                            tokens[index + 1]
                            if index + 1 < len(tokens)
                            else ""
                        )
                        unknown = sorted(
                            set(value.split(",")) - known_codes - {""}
                        )
                        if unknown:
                            problems.append(
                                f"{name}:{lineno}: --select names unknown "
                                f"rule codes {unknown}"
                            )
    return problems


def main() -> int:
    """Run all three checks; print findings; exit non-zero on any."""
    problems = check_docstrings() + check_links() + check_cli_snippets()
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print("check_docs: docstrings, links, and CLI snippets all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
