#!/usr/bin/env python3
"""The distributed (DHT-based) update store, end to end.

Runs the same small confederation against the simulated Pastry-style
store of Section 5.2.2 and shows what the paper's Figures 6 and 7 look
like operationally: epochs allocated through the epoch allocator,
transactions scattered across controllers by consistent hashing, and
reconciliation traffic — messages and simulated latency — accounted
per peer.

Run with:  python examples/distributed_store.py
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig
from repro.model import Insert, Modify
from repro.store import store_capabilities


def main() -> None:
    # The DHT backend by registry name.  Since PR 3 its capability flags
    # advertise context-free shipping and the shared pair memo —
    # extension derivation happens in the network (see
    # examples/dht_network_centric.py for that quadrant in depth).
    print(f"dht capabilities: {store_capabilities('dht').as_dict()}")
    config = ConfederationConfig(
        store="dht", store_options={"hosts": 6}, peers=(1, 2, 3)
    )
    confed = Confederation.from_config(config)
    store = confed.store
    p1, p2, p3 = confed.participants

    # p1 curates a protein with a follow-up correction.
    p1.execute([Insert("F", ("rat", "prot1", "glucose metabolism"), 1)])
    p1.execute(
        [
            Modify(
                "F",
                ("rat", "prot1", "glucose metabolism"),
                ("rat", "prot1", "glycogen biosynthesis"),
                1,
            )
        ]
    )
    epoch = p1.publish()
    print(f"p1 published epoch {epoch} through the epoch allocator")
    p1.reconcile()

    # Where did everything land on the ring?
    print("\nRing placement:")
    for host_name, host in sorted(store._hosts.items()):
        roles = []
        if host.epoch_counter:
            roles.append(f"epoch allocator (counter={host.epoch_counter})")
        if host.epochs:
            roles.append(f"epoch controller for {sorted(host.epochs)}")
        if host.txns:
            ids = ", ".join(str(t) for t in sorted(host.txns))
            roles.append(f"transaction controller for {ids}")
        if roles:
            print(f"  {host_name}: " + "; ".join(roles))

    # p2 reconciles: watch the retrieval protocol's cost.
    before = store.perf.snapshot()
    result = p2.publish_and_reconcile()
    delta = store.perf.minus(before)
    print(f"\np2 reconciled: {result.summary()}")
    print(
        f"  messages: {delta.messages}, simulated network time: "
        f"{delta.simulated_seconds * 1000:.2f} ms"
    )
    assert p2.instance.contains_row("F", ("rat", "prot1", "glycogen biosynthesis"))

    # p3 modifies p2's imported copy; p1 then imports a chain that
    # crosses three peers, fetched by antecedent-forwarding (Figure 7).
    p3.publish_and_reconcile()
    p3.execute(
        [
            Modify(
                "F",
                ("rat", "prot1", "glycogen biosynthesis"),
                ("rat", "prot1", "glycogen catabolism"),
                3,
            )
        ]
    )
    p3.publish_and_reconcile()

    before = store.perf.snapshot()
    result = p1.publish_and_reconcile()
    delta = store.perf.minus(before)
    print(f"\np1 imported the cross-peer chain: {result.summary()}")
    print(
        f"  messages: {delta.messages}, simulated network time: "
        f"{delta.simulated_seconds * 1000:.2f} ms"
    )
    print(f"  p1's row: {p1.instance.get('F', ('rat', 'prot1'))}")
    assert p1.instance.contains_row("F", ("rat", "prot1", "glycogen catabolism"))

    # p2 catches up on p3's revision; now everyone agrees.
    p2.publish_and_reconcile()
    print(f"\nAfter p2 catches up, state ratio = {confed.state_ratio():.2f}")
    assert confed.state_ratio() == 1.0


if __name__ == "__main__":
    main()
