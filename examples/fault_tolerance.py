#!/usr/bin/env python3
"""Fault-tolerant confederations: crashes, lossy links, and restarts.

The paper's Section 5.2 argues a CDSS keeps *all* durable state in the
update store, so everything else may fail: hosts crash, messages get
lost, participants restart from nothing.  This example demonstrates the
PR 6 robustness surface end to end:

1. a declarative, seeded :class:`FaultPlan` attached to the config —
   a controller-host crash that later recovers, lossy protocol links,
   and a mid-run participant crash-restart;
2. successor replication (``replication_factor=2``) masking the crash;
3. the proof that faults changed *nothing*: the decision stream is
   byte-identical to a fault-free run of the same seeded workload;
4. what an **unmaskable** fault looks like: a black-holed protocol
   message exhausts the bounded retry budget and raises
   :class:`RetryExhaustedError` instead of hanging or corrupting.

Run with:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro import (
    Confederation,
    ConfederationConfig,
    FaultPlan,
    HostCrash,
    MessageFault,
    ParticipantRestart,
    RetryExhaustedError,
    WorkloadConfig,
)


def run(config: ConfederationConfig):
    """Run the seeded schedule, returning (decision log, report)."""
    decisions = []
    with Confederation(config) as confed:
        confed.hooks.on_decision(
            lambda participant, tid, decision, **_: decisions.append(
                (participant, str(tid), str(decision))
            )
        )
        report = confed.run()
    return decisions, report


def config_with(faults=None, **store_options):
    return ConfederationConfig(
        store="dht",
        store_options={"hosts": 5, "replication_factor": 2, **store_options},
        peers=(1, 2, 3, 4, 5),
        reconciliation_interval=3,
        rounds=3,
        final_reconcile=True,
        workload=WorkloadConfig(transaction_size=2, seed=11),
        faults=faults,
    )


def main() -> None:
    # 1. The fault plan is declarative data — it round-trips through
    #    plain dicts/JSON like the rest of the config, so chaos
    #    schedules live in files and version control.
    plan = FaultPlan(
        seed=6,
        crashes=(HostCrash("host:2", at_epoch=5, recover_at_epoch=10),),
        messages=(
            MessageFault("txn_stored", "drop", probability=0.2, times=4),
            MessageFault("txn_data", "delay", probability=0.1, times=5),
        ),
        restarts=(ParticipantRestart(participant=3, at_epoch=8),),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    print("Fault plan:")
    print("  crash    host:2 at epoch 5, recovery at epoch 10")
    print("  drop     up to 4 txn_stored acks (p=0.2, seeded)")
    print("  delay    up to 5 txn_data fetches (p=0.1, seeded)")
    print("  restart  participant 3 at epoch 8 (rebuilt from the store)")

    # 2+3. Same seeded workload, with and without the plan.  Successor
    #    replication and bounded retries mask every fault above, so the
    #    decision streams must match byte for byte.
    clean_decisions, _ = run(config_with())
    chaos_decisions, report = run(config_with(faults=plan))
    assert chaos_decisions == clean_decisions
    print(f"\nChaos run made {len(chaos_decisions)} decisions — "
          f"byte-identical to the fault-free run.")

    # 4. The report prices what happened on the way.
    faults = report.faults
    print("What the run survived:")
    print(f"  injected  : {dict(sorted(faults.injected.items()))}")
    print(f"  retries   : {faults.retries} protocol messages re-sent")
    print(f"  recoveries: {faults.recoveries} "
          f"(host rejoin + participant restart)")

    # 5. Unmaskable faults fail loudly, not silently: black-holing every
    #    epoch_contents reply starves reconciliation past the retry
    #    budget.
    black_hole = FaultPlan(
        seed=1,
        messages=(MessageFault("epoch_contents", "drop", probability=1.0),),
    )
    try:
        run(config_with(faults=black_hole, max_retries=2))
    except RetryExhaustedError as exc:
        print(f"\nBlack hole surfaced as RetryExhaustedError:\n  {exc}")
    else:
        raise AssertionError("the black hole should have been fatal")


if __name__ == "__main__":
    main()
