#!/usr/bin/env python3
"""A curated-warehouse simulation: the paper's evaluation workload.

Runs a ten-peer confederation on the synthetic SWISS-PROT workload
(Zipfian function values with s = 1.5, cross-reference fan-out of 7.3),
prints per-epoch progress, the final state ratio, the divergence
distribution, and the reconciliation-time breakdown — a miniature of the
evaluation section you can tweak from the command line.

Run with:  python examples/curated_warehouse.py [peers] [interval] [rounds]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.confed import Confederation, ConfederationConfig
from repro.metrics import StateRatioProbe, divergence_by_key
from repro.workload import WorkloadConfig


def main() -> None:
    peers = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    interval = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rounds = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    config = ConfederationConfig(
        store="memory",
        peers=tuple(range(1, peers + 1)),
        reconciliation_interval=interval,
        rounds=rounds,
        workload=WorkloadConfig(transaction_size=2, seed=7),
    )
    print(
        f"Simulating {peers} curators, reconciling every {interval} "
        f"transactions, for {rounds} rounds..."
    )
    confederation = Confederation.from_config(config)
    # The state-ratio metric as a hook subscriber: one sample per
    # reconciliation gives the convergence trajectory for free.
    probe = StateRatioProbe(
        lambda: {p.id: p.instance for p in confederation.participants},
        relation="F",
    ).attach(confederation.hooks)
    report = confederation.run()

    print(f"\nTransactions published : {report.transactions_published}")
    print(f"Store messages         : {report.store_messages}")
    print(f"State ratio (F)        : {report.state_ratio:.3f}")

    # The probe sampled after every reconciliation: show how agreement
    # evolved over the run (first, middle, and final samples).
    samples = probe.samples
    if len(samples) >= 3:
        picks = [samples[0], samples[len(samples) // 2], samples[-1]]
        trail = " -> ".join(f"{ratio:.2f}" for _recno, ratio in picks)
        print(f"State-ratio trajectory : {trail}")

    # How divergent is each protein?  (1 = everyone agrees.)
    instances = {p.id: p.instance for p in confederation.participants}
    distribution = Counter(
        divergence_by_key(instances, relation="F").values()
    )
    print("\nDivergence distribution over keys:")
    for states in sorted(distribution):
        count = distribution[states]
        print(f"  {states} distinct state(s): {count} key(s)")

    print("\nPer-participant reconciliation cost:")
    for pid, agg in sorted(report.timings.items()):
        print(
            f"  p{pid}: {agg.reconciliations} reconciliations, "
            f"store {agg.total_store_seconds * 1000:.1f} ms, "
            f"local {agg.total_local_seconds * 1000:.1f} ms"
        )

    # Every participant's conflicts are visible for resolution:
    open_groups = sum(
        len(p.open_conflicts()) for p in confederation.participants
    )
    print(f"\nOpen conflict groups across all peers: {open_groups}")


if __name__ == "__main__":
    main()
