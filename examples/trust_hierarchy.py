#!/usr/bin/env python3
"""Trust policies in action: SWISS-PROT outranks GenBank.

The paper motivates priorities with data authority: "SWISS-PROT is
generally more reliable than NCBI GenBank because it is human-curated."
This example builds a lab that imports from both archives, trusting the
curated one at a higher priority, so conflicts between them resolve
automatically — and shows a content-based acceptance rule (the lab audits
anything touching its organism of interest at top priority from either
source).

Run with:  python examples/trust_hierarchy.py
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig
from repro.model import AttributeDef, Insert, RelationSchema, Schema
from repro.policy import TrustPolicy, attribute_equals, origin_is, both

SWISSPROT, GENBANK, LAB = 1, 2, 3


def main() -> None:
    schema = Schema(
        [
            RelationSchema(
                "F",
                [
                    AttributeDef("organism", str),
                    AttributeDef("protein", str),
                    AttributeDef("function", str),
                ],
                key=("organism", "protein"),
            )
        ]
    )
    # Content-based rules go beyond the declarative ``trust`` mapping, so
    # this confederation starts with no configured peers and registers
    # each participant with an explicit policy.
    confed = Confederation(ConfederationConfig(store="memory"), schema=schema)
    confed.open()

    # The archives don't import from anyone in this scenario.
    swissprot = confed.add_participant(SWISSPROT, TrustPolicy())
    genbank = confed.add_participant(GENBANK, TrustPolicy())

    # The lab: SWISS-PROT at priority 3, GenBank at priority 1 — except
    # that the lab collaborates directly with GenBank's zebrafish curators
    # and audits those imports itself, so GenBank's zebrafish data gets
    # top priority (a content-and-origin acceptance rule).
    lab_policy = (
        TrustPolicy()
        .trust_participant(SWISSPROT, 3)
        .trust_participant(GENBANK, 1)
        .trust(
            both(
                origin_is(GENBANK),
                attribute_equals("F", "organism", "zebrafish"),
            ),
            5,
        )
    )
    lab = confed.add_participant(LAB, lab_policy)

    # Both archives publish conflicting curation for the same protein.
    genbank.execute([Insert("F", ("rat", "prot7", "transport"), GENBANK)])
    genbank.execute([Insert("F", ("human", "protX", "signaling"), GENBANK)])
    genbank.publish_and_reconcile()
    swissprot.execute([Insert("F", ("rat", "prot7", "ion-transport"), SWISSPROT)])
    swissprot.publish_and_reconcile()

    # The lab reconciles: SWISS-PROT's higher priority wins the rat
    # conflict automatically; GenBank's unopposed human tuple is accepted.
    result = lab.publish_and_reconcile()
    print("Lab reconciles conflicting archives:")
    print(f"  accepted: {sorted(map(str, result.accepted))}")
    print(f"  rejected: {sorted(map(str, result.rejected))}")
    print(f"  instance: {sorted(lab.instance.rows('F'))}")
    assert lab.instance.contains_row("F", ("rat", "prot7", "ion-transport"))
    assert lab.instance.contains_row("F", ("human", "protX", "signaling"))
    assert not lab.open_conflicts(), "priorities resolved everything"

    # GenBank later revises a zebrafish entry.  Despite GenBank's low
    # default standing, the content rule boosts it to priority 5 — it even
    # outranks a conflicting SWISS-PROT zebrafish tuple.
    swissprot.execute(
        [Insert("F", ("zebrafish", "protZ", "fin-development"), SWISSPROT)]
    )
    swissprot.publish_and_reconcile()
    genbank.execute(
        [Insert("F", ("zebrafish", "protZ", "heart-development"), GENBANK)]
    )
    genbank.publish_and_reconcile()

    result = lab.publish_and_reconcile()
    print("\nLab reconciles the zebrafish dispute (content rule wins):")
    print(f"  accepted: {sorted(map(str, result.accepted))}")
    print(f"  rejected: {sorted(map(str, result.rejected))}")
    row = lab.instance.get("F", ("zebrafish", "protZ"))
    print(f"  zebrafish row: {row}")
    assert row == ("zebrafish", "protZ", "heart-development")

    print("\nTrust hierarchy behaved as configured.")


if __name__ == "__main__":
    main()
