#!/usr/bin/env python3
"""The durable store: a confederation that survives losing everything.

The paper's Section 5.2 keeps *all* durable state in the update store;
PR 9's ``durable`` backend takes that literally — the central append-only
schema on a real database file (WAL), transaction bodies paged through a
bounded LRU, retired shared-memo entries spilled to disk.  This example
walks the claim end to end:

1. a seeded confederation runs on a database file with a deliberately
   tiny body cache, so history pages from disk while RAM stays bounded;
2. participant 3 crash-restarts mid-run (a declarative
   :class:`ParticipantRestart`) and rebuilds its replica *from the
   file* — the decision stream stays byte-identical to a fault-free
   in-memory run of the same workload;
3. the report prices the run: state ratio, recoveries, cache traffic,
   spilled memo entries, bytes on disk;
4. the process "dies" (everything closed), and reopening the same path
   adopts the registered participants and restores a replica from
   persisted counters — O(delta), never a history replay.

Run with:  python examples/durable_store.py
"""

from __future__ import annotations

import pathlib
import tempfile

from repro import (
    Confederation,
    ConfederationConfig,
    FaultPlan,
    ParticipantRestart,
    WorkloadConfig,
)


def build_config(store, store_options, faults=None):
    """The shared seeded schedule: 4 peers, 3 rounds, interval 3."""
    return ConfederationConfig(
        store=store,
        store_options=store_options,
        peers=(1, 2, 3, 4),
        reconciliation_interval=3,
        rounds=3,
        workload=WorkloadConfig(transaction_size=2, seed=23),
        faults=faults,
    )


def run(config):
    """Run the schedule; return (decision log, report, snapshots, store)."""
    decisions = []
    with Confederation(config) as confed:
        confed.hooks.on_decision(
            lambda participant, tid, decision, **_: decisions.append(
                (participant, str(tid), str(decision))
            )
        )
        report = confed.run()
        snapshots = {
            p.id: p.instance.snapshot() for p in confed.participants
        }
        stats = (
            confed.store.page_cache_stats()
            if hasattr(confed.store, "page_cache_stats")
            else None
        )
    return decisions, report, snapshots, stats


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        db_path = pathlib.Path(scratch) / "confed.db"

        # 1+2. The same seeded workload twice: in-memory and durable,
        #    the durable run with a crash-restart of participant 3 at
        #    epoch 8 and a body cache of only 8 entries.  Restart
        #    recovery reads the database file; if the file were wrong,
        #    the decision streams would diverge.
        plan = FaultPlan(
            seed=23,
            restarts=(ParticipantRestart(participant=3, at_epoch=8),),
        )
        baseline, _, base_snapshots, _ = run(build_config("memory", {}))
        decisions, report, snapshots, stats = run(
            build_config(
                "durable",
                {"path": str(db_path), "cache_size": 8},
                faults=plan,
            )
        )
        assert decisions == baseline
        assert snapshots == base_snapshots
        print(
            f"durable run: {len(decisions)} decisions, byte-identical to "
            "the in-memory run — including participant 3, which "
            "crash-restarted at epoch 8 and rebuilt from the file."
        )

        # 3. What it cost and what is where.  `resident` is bounded by
        #    the cache; everything else is on disk.
        print("report:")
        print(f"  state ratio    : {report.state_ratio:.2f}")
        print(f"  recoveries     : {report.faults.recoveries}")
        print(
            f"  body cache     : {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['evictions']} evictions, "
            f"peak {stats['peak_resident']}/{stats['capacity']} resident"
        )
        print(f"  bytes on disk  : {db_path.stat().st_size}")

        # 4. Process death: both runs above are fully closed.  Reopen
        #    the same path — crash recovery finishes any dangling
        #    publication epoch, adopts the four registered participants,
        #    and a restored replica matches the pre-crash snapshot.
        reopened_config = build_config(
            "durable", {"path": str(db_path), "cache_size": 8}
        )
        with Confederation(reopened_config) as revived:
            participant = revived.participants[2]
            restored = revived.restore(participant.id)
            assert restored.instance.snapshot() == snapshots[participant.id]
            print(
                f"reopened {db_path.name}: adopted "
                f"{len(revived.participants)} participants, restored "
                f"p{participant.id}'s replica from disk — it matches the "
                "pre-crash snapshot exactly."
            )


if __name__ == "__main__":
    main()
