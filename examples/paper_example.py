#!/usr/bin/env python3
"""The paper's running example: Figures 1 and 2, faithfully replayed.

Three bioinformatics warehouses share F(organism, protein, function) with
the trust topology of Figure 1:

* p1 accepts updates from p2 and p3 at priority 1 (equal trust);
* p2 accepts updates from p1 at priority 2 and from p3 at priority 1;
* p3 accepts updates from p2 at priority 1.

The script replays the four epochs of Figure 2 and prints each instance
after every epoch, ending with p1's deferred transaction set — exactly the
outcomes in the paper.

Run with:  python examples/paper_example.py
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig
from repro.model import (
    AttributeDef,
    Insert,
    Modify,
    RelationSchema,
    Schema,
)


def show(label: str, participant) -> None:
    rows = sorted(participant.instance.rows("F"))
    print(f"  {label}: {rows if rows else '{}'}")


def main() -> None:
    schema = Schema(
        [
            RelationSchema(
                "F",
                [
                    AttributeDef("organism", str),
                    AttributeDef("protein", str),
                    AttributeDef("function", str),
                ],
                key=("organism", "protein"),
            )
        ]
    )
    # The acceptance rules of Figure 1, written declaratively: the
    # ``trust`` mapping gives each peer its per-origin priorities.
    config = ConfederationConfig(
        store="memory",
        peers=(1, 2, 3),
        trust={
            1: {2: 1, 3: 1},
            2: {1: 2, 3: 1},
            3: {2: 1},
        },
    )
    confed = Confederation.from_config(config, schema=schema)
    p1, p2, p3 = confed.participants

    # Epoch 1: p3 inserts the rat tuple and immediately revises it
    # (X3:0 and X3:1), then publishes and reconciles.
    p3.execute([Insert("F", ("rat", "prot1", "cell-metab"), 3)])
    p3.execute(
        [
            Modify(
                "F",
                ("rat", "prot1", "cell-metab"),
                ("rat", "prot1", "immune"),
                3,
            )
        ]
    )
    p3.publish_and_reconcile()
    print("Epoch 1 (p3 publishes X3:0, X3:1 and reconciles)")
    show("I3(F)|1", p3)

    # Epoch 2: p2 inserts mouse and its own rat value (X2:0, X2:1), then
    # publishes and reconciles.  p3's rat chain conflicts with p2's own
    # insert, so p2 rejects it.
    p2.execute([Insert("F", ("mouse", "prot2", "immune"), 2)])
    p2.execute([Insert("F", ("rat", "prot1", "cell-resp"), 2)])
    result = p2.publish_and_reconcile()
    print("\nEpoch 2 (p2 publishes X2:0, X2:1 and reconciles)")
    show("I2(F)|2", p2)
    print(f"  p2 rejected: {sorted(map(str, result.rejected))}")

    # Epoch 3: p3 reconciles again.  It accepts p2's mouse tuple but
    # rejects the rat tuple that is incompatible with its own state.
    result = p3.publish_and_reconcile()
    print("\nEpoch 3 (p3 reconciles)")
    show("I3(F)|3", p3)
    print(f"  p3 accepted: {sorted(map(str, result.accepted))}")
    print(f"  p3 rejected: {sorted(map(str, result.rejected))}")

    # Epoch 4: p1 reconciles, trusting p2 and p3 equally.  The mouse
    # update is accepted; the three rat transactions all conflict at the
    # same priority, so they are deferred for manual resolution.
    result = p1.publish_and_reconcile()
    print("\nEpoch 4 (p1 reconciles)")
    show("I1(F)|4", p1)
    print(f"  p1 accepted: {sorted(map(str, result.accepted))}")
    print(f"  p1 deferred: {sorted(map(str, result.deferred))}")
    for group in p1.open_conflicts():
        print("  p1's conflict group:")
        for line in group.describe().splitlines():
            print(f"    {line}")

    # These are exactly the outcomes of Figure 2.
    assert sorted(p1.instance.rows("F")) == [("mouse", "prot2", "immune")]
    assert sorted(map(str, result.deferred)) == ["X2:1", "X3:0", "X3:1"]
    print("\nAll Figure 2 outcomes verified.")


if __name__ == "__main__":
    main()
