#!/usr/bin/env python3
"""Quickstart: a three-peer collaborative data sharing system.

Builds the smallest interesting CDSS — three bioinformatics curators
sharing a protein-function table — and walks through local edits,
publication, reconciliation, tolerated disagreement, and conflict
resolution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cdss import CDSS
from repro.core import Resolution
from repro.model import (
    AttributeDef,
    Insert,
    Modify,
    RelationSchema,
    Schema,
)
from repro.store import MemoryUpdateStore


def main() -> None:
    # 1. A shared schema: protein functions, keyed by (organism, protein).
    schema = Schema(
        [
            RelationSchema(
                "F",
                [
                    AttributeDef("organism", str),
                    AttributeDef("protein", str),
                    AttributeDef("function", str),
                ],
                key=("organism", "protein"),
            )
        ]
    )

    # 2. An update store plus three participants who trust each other
    #    equally (priority 1) — conflicts will need manual resolution.
    cdss = CDSS(MemoryUpdateStore(schema))
    alice, bob, carol = cdss.add_mutually_trusting_participants([1, 2, 3])

    # 3. Alice curates a protein and shares her work.
    alice.execute([Insert("F", ("rat", "prot1", "cell-metabolism"), alice.id)])
    alice.execute(
        [
            Modify(
                "F",
                ("rat", "prot1", "cell-metabolism"),
                ("rat", "prot1", "immune-response"),
                alice.id,
            )
        ]
    )
    alice.publish_and_reconcile()
    print("Alice's instance:", sorted(alice.instance.rows("F")))

    # 4. Bob, who had independently curated the same protein differently,
    #    publishes his version and reconciles.  He keeps his own value —
    #    Alice's conflicting chain is rejected for *him*, but both
    #    versions coexist in the system: this is tolerated disagreement.
    bob.execute([Insert("F", ("rat", "prot1", "cell-respiration"), bob.id)])
    result = bob.publish_and_reconcile()
    print(f"Bob reconciled: {result.summary()}")
    print("Bob's instance:  ", sorted(bob.instance.rows("F")))
    print(f"State ratio across peers: {cdss.state_ratio():.2f}")

    # 5. Carol trusts both equally, so she cannot pick a winner: the
    #    conflicting transactions are deferred into a conflict group.
    result = carol.publish_and_reconcile()
    print(f"Carol reconciled: {result.summary()}")
    for group in carol.open_conflicts():
        print("Carol's open conflict:")
        print(group.describe())

    # 6. Carol resolves the conflict by hand, picking Alice's version.
    [group] = carol.open_conflicts()
    chosen = next(
        index
        for index, option in enumerate(group.options)
        if option.effect == ("rat", "prot1", "immune-response")
    )
    result = carol.resolve([Resolution(group.group_id, chosen)])
    print(f"Carol resolved:  {result.summary()}")
    print("Carol's instance:", sorted(carol.instance.rows("F")))
    print(f"Final state ratio: {cdss.state_ratio():.2f}")


if __name__ == "__main__":
    main()
