#!/usr/bin/env python3
"""Quickstart: a three-peer collaborative data sharing system.

Builds the smallest interesting CDSS — three bioinformatics curators
sharing a protein-function table — with the unified confederation API:
a declarative :class:`ConfederationConfig` (store backend by registry
name, peers, trust), the :class:`Confederation` facade as a context
manager, and the event hook bus observing every decision.  Then walks
through local edits, publication, reconciliation, tolerated
disagreement, and conflict resolution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import pathlib
import tempfile

from repro import (
    AttributeDef,
    Confederation,
    ConfederationConfig,
    FaultPlan,
    HookBus,
    Insert,
    MessageFault,
    Modify,
    RelationSchema,
    Resolution,
    Schema,
    WorkloadConfig,
    available_stores,
)


def main() -> None:
    # 1. A shared schema: protein functions, keyed by (organism, protein).
    schema = Schema(
        [
            RelationSchema(
                "F",
                [
                    AttributeDef("organism", str),
                    AttributeDef("protein", str),
                    AttributeDef("function", str),
                ],
                key=("organism", "protein"),
            )
        ]
    )

    # 2. One declarative config: the store backend is picked by name from
    #    the driver registry, and three peers trust each other equally
    #    (priority 1) — conflicts will need manual resolution.
    print(f"Registered store backends: {', '.join(available_stores())}")
    config = ConfederationConfig(store="memory", peers=(1, 2, 3))

    with Confederation.from_config(config, schema=schema) as confed:
        alice, bob, carol = confed.participants

        # 3. Observability is a hook subscription, not engine plumbing:
        #    log every verdict any peer reaches.
        confed.hooks.on_decision(
            lambda participant, tid, decision, **_: print(
                f"    [hook] p{participant} decided {tid}: {decision}"
            )
        )

        # 4. Alice curates a protein and shares her work.
        alice.execute(
            [Insert("F", ("rat", "prot1", "cell-metabolism"), alice.id)]
        )
        alice.execute(
            [
                Modify(
                    "F",
                    ("rat", "prot1", "cell-metabolism"),
                    ("rat", "prot1", "immune-response"),
                    alice.id,
                )
            ]
        )
        alice.publish_and_reconcile()
        print("Alice's instance:", sorted(alice.instance.rows("F")))

        # 5. Bob, who had independently curated the same protein
        #    differently, publishes his version and reconciles.  He keeps
        #    his own value — Alice's conflicting chain is rejected for
        #    *him*, but both versions coexist in the system: this is
        #    tolerated disagreement.
        bob.execute([Insert("F", ("rat", "prot1", "cell-respiration"), bob.id)])
        result = bob.publish_and_reconcile()
        print(f"Bob reconciled: {result.summary()}")
        print("Bob's instance:  ", sorted(bob.instance.rows("F")))
        print(f"State ratio across peers: {confed.state_ratio():.2f}")

        # 6. Carol trusts both equally, so she cannot pick a winner: the
        #    conflicting transactions are deferred into a conflict group.
        result = carol.publish_and_reconcile()
        print(f"Carol reconciled: {result.summary()}")
        for group in carol.open_conflicts():
            print("Carol's open conflict:")
            print(group.describe())

        # 7. Carol resolves the conflict by hand, picking Alice's version.
        [group] = carol.open_conflicts()
        chosen = next(
            index
            for index, option in enumerate(group.options)
            if option.effect == ("rat", "prot1", "immune-response")
        )
        result = carol.resolve([Resolution(group.group_id, chosen)])
        print(f"Carol resolved:  {result.summary()}")
        print("Carol's instance:", sorted(carol.instance.rows("F")))
        print(f"Final state ratio: {confed.state_ratio():.2f}")

        # 8. The store remembers everything: a participant is
        #    reconstructible from its decisions alone (Section 5.2).
        snapshot = confed.snapshot()[carol.id]
        print(
            f"Store knows p{carol.id}: {len(snapshot.applied)} applied, "
            f"{len(snapshot.rejected)} rejected, "
            f"{len(snapshot.deferred)} deferred"
        )
        restored = confed.restore(carol.id)
        assert sorted(restored.instance.rows("F")) == sorted(
            carol.instance.rows("F")
        )
        print("Carol restored from the store: instance matches.")

    # 9. One knob flips Figure 3's reconciliation column: with
    #    network_centric="store" the update store derives each
    #    participant's update extensions and conflict adjacency itself
    #    and ships a fully-assembled batch — the client only checks
    #    state and applies.  Every built-in backend (memory, central,
    #    durable, dht) supports it, and outcomes are identical by
    #    construction.
    nc_config = ConfederationConfig(
        store="memory", peers=(1, 2, 3), network_centric="store"
    )
    with Confederation.from_config(nc_config, schema=schema) as nc_confed:
        publisher, receiver, _ = nc_confed.participants
        publisher.execute(
            [Insert("F", ("rat", "prot9", "signaling"), publisher.id)]
        )
        publisher.publish_and_reconcile()
        receiver.publish_and_reconcile()
        assert receiver.instance.contains_row(
            "F", ("rat", "prot9", "signaling")
        )
        print(
            'network_centric="store": the store assembled the batch, '
            "the client just applied it."
        )

    # 10. Robustness is declarative too: a seeded FaultPlan on the
    #     config schedules host crashes, message drops/duplicates/
    #     delays, and participant restarts — executed deterministically,
    #     and masked by successor replication plus bounded retries.
    #     Here two dropped store acks cost retries, never outcomes.
    chaos_config = ConfederationConfig(
        store="dht",
        store_options={"hosts": 4, "replication_factor": 2},
        peers=(1, 2, 3),
        faults=FaultPlan(
            seed=7,
            messages=(MessageFault("txn_stored", "drop", times=2),),
        ),
    )
    with Confederation.from_config(chaos_config, schema=schema) as chaotic:
        publisher, receiver, _ = chaotic.participants
        publisher.execute(
            [Insert("F", ("rat", "prot2", "transport"), publisher.id)]
        )
        publisher.publish_and_reconcile()
        receiver.publish_and_reconcile()
        assert receiver.instance.contains_row("F", ("rat", "prot2", "transport"))
        faults = chaotic.report().faults
        print(
            f"FaultPlan: {faults.injected.get('drop', 0)} acks dropped, "
            f"{faults.retries} retries, decisions unchanged "
            "(see examples/fault_tolerance.py for the full chaos tour)."
        )

    # 11. The determinism invariants everything above relies on (seeded
    #     RNG substreams, capability routing, store access under the
    #     store lock) are machine-checked.  CI gates on
    #
    #         PYTHONPATH=src python -m repro.analysis src tests benchmarks examples
    #
    #     which runs the repo-specific AST rules (RPR001-RPR010; add
    #     --list-rules for the catalogue) and exits non-zero on any
    #     finding.  A genuinely intended exception is waived in place
    #     with a `# repro: allow[RPRnnn]` comment on the offending line
    #     (or the line above), keeping the justification visible in
    #     review.  The same engine is importable:
    from repro.analysis import run_analysis

    findings = run_analysis([__file__])
    print(f"repro.analysis on this example: {len(findings)} findings")
    assert not findings

    # 12. Reading the wire metrics: on a simulated-network store,
    #     report() carries the protocol mix — `kind_counts` (fragments
    #     delivered per message kind) and `kind_bytes` (that kind's
    #     share of the delivered bytes).  This is how the Figure-3 byte
    #     trade is read: client-centric DHT traffic is dominated by
    #     `txn_data`/`request_txn` (bodies pulled on demand), while the
    #     store-computed path shifts it into coalesced `nc_data`
    #     replies, batched `nc_fetch_batch`/`nc_member_batch` verdict
    #     round-trips, and — across deferral rounds — tiny
    #     `nc_unchanged` digest tokens in place of re-shipped payloads.
    #     The PR 8 wire pass (batching + coalescing + delta-encoded
    #     re-ships) brought that mode from ~2.9x/2.2x down to ≤1.8x
    #     messages and ≤1.5x bytes over client-computed, pinned in
    #     benchmarks/test_perf_dht_nc.py.
    wire_config = ConfederationConfig(
        store="dht",
        store_options={"hosts": 3},
        peers=(1, 2, 3),
        network_centric="store",
    )
    with Confederation.from_config(wire_config, schema=schema) as wired:
        publisher, receiver, _ = wired.participants
        publisher.execute(
            [Insert("F", ("rat", "prot3", "kinase"), publisher.id)]
        )
        publisher.publish_and_reconcile()
        receiver.publish_and_reconcile()
        wire = wired.report()
        top = sorted(
            wire.kind_bytes, key=wire.kind_bytes.get, reverse=True
        )[:3]
        for kind in top:
            print(
                f"wire: {kind:12s} {wire.kind_counts[kind]:4d} fragments"
                f" {wire.kind_bytes[kind]:6d} bytes"
            )
        assert wire.kind_counts.get("nc_data", 0) >= 1

    # 13. Durability: store="durable" keeps the append-only update
    #     store on a real database file (WAL), paging transaction
    #     bodies through a bounded LRU so RAM stays O(open frontier)
    #     while the full history lives on disk.  "Crash" the process by
    #     closing everything, then reopen the same path: registered
    #     participants are adopted and their soft state rebuilt from
    #     persisted counters — O(delta), never a history replay.
    with tempfile.TemporaryDirectory() as scratch:
        db_path = str(pathlib.Path(scratch) / "quickstart.db")
        durable_config = ConfederationConfig(
            store="durable",
            store_options={"path": db_path, "cache_size": 8},
            peers=(1, 2),
        )
        with Confederation.from_config(durable_config, schema=schema) as run1:
            writer, reader = run1.participants
            writer.execute(
                [Insert("F", ("rat", "prot4", "folding"), writer.id)]
            )
            writer.publish_and_reconcile()
            reader.publish_and_reconcile()
            stats = run1.store.page_cache_stats()
            print(
                f"durable: {stats['resident']} bodies resident "
                f"(cache capacity {stats['capacity']}), history on disk"
            )
        # Everything in memory is gone now; only the file survives.
        with Confederation.from_config(durable_config, schema=schema) as run2:
            _, reader2 = run2.participants
            restored = run2.restore(reader2.id)
            assert restored.instance.contains_row(
                "F", ("rat", "prot4", "folding")
            )
            print(
                "durable: reopened the database file, adopted both "
                "participants, restored the reader's replica from disk "
                "(see examples/durable_store.py for the crash-mid-run tour)."
            )

    # 14. Scheduling is a config knob too.  schedule_mode picks the
    #     epoch scheduler: "serial" (the paper's round-robin),
    #     "threaded" (edit/reconcile phases on a thread pool between
    #     deterministic publish barriers), or "async" (PR 10:
    #     participants as asyncio tasks on one event loop — injected
    #     store latency is *awaited* through the store's latency clock,
    #     so one peer's wire wait overlaps another's work and even the
    #     publish barrier pipelines).  The determinism contract is
    #     per participant: threaded and async runs of the same seeded
    #     workload emit byte-identical per-participant decision
    #     streams; the async run's *global* order is deterministic too.
    def seeded_run(mode):
        config = ConfederationConfig(
            store="memory",
            peers=(1, 2, 3, 4),
            reconciliation_interval=2,
            rounds=2,
            final_reconcile=True,
            schedule_mode=mode,
            workload=WorkloadConfig(transaction_size=2, seed=5),
        )
        streams = {}
        hooks = HookBus()
        hooks.on_decision(
            lambda participant, tid, decision, **_: streams.setdefault(
                participant, []
            ).append((str(tid), str(decision)))
        )
        with Confederation(config, hooks=hooks) as confed:
            report = confed.run()
        return streams, report

    threaded_streams, _ = seeded_run("threaded")
    async_streams, async_report = seeded_run("async")
    assert async_report.scheduler == "async"
    assert async_streams == threaded_streams
    print(
        f'schedule_mode="async": {async_report.scheduler} scheduler ran '
        f"{async_report.transactions_published} publishes as pipelined "
        "asyncio tasks; per-participant decisions match the threaded "
        "run byte-for-byte (benchmarks/test_perf_scheduler.py prices "
        "the wall-clock win at 64 peers)."
    )


if __name__ == "__main__":
    main()
