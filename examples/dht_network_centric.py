#!/usr/bin/env python3
"""The newly opened Figure-3 quadrant: distributed store, network-side work.

The paper's Figure 3 crosses two axes — where the update store lives
(central vs. distributed) and where reconciliation work happens
(client-centric vs. network-centric) — and its implementation left the
"distributed store + network-centric" quadrant as future work: the DHT
shipped raw transactions and every client recomputed every update
extension locally.

Since PR 3 the simulated DHT has shipping parity with the central
stores: transaction controllers derive each transaction's *context-free*
update extension once, at publish time, by collecting the antecedent
closure over the ring, and ship it with root deliveries; a
confederation-wide pair memo lets the first peer to compare two shipped
extensions serve all the others.  PR 5 finished the job: with
``network_centric="store"`` the DHT serves *fully-assembled*
per-participant batches — controllers derive each participant's
extensions against that participant's applied set and the conflict
adjacency arrives precomputed, so the client only checks state, groups,
and applies.  This example runs the quadrant end to end in both flavours
and shows the work moving off the clients.

Run with:  python examples/dht_network_centric.py
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.store import store_capabilities
from repro.workload import WorkloadConfig


def run(
    ship_context_free: bool,
    schedule_mode: str = "serial",
    network_centric="client",
):
    """One seeded confederation over the DHT; returns (report, confed stats)."""
    config = ConfederationConfig(
        store="dht",
        store_options={"hosts": 6, "ship_context_free": ship_context_free},
        peers=tuple(range(1, 7)),
        reconciliation_interval=3,
        rounds=3,
        final_reconcile=True,
        schedule_mode=schedule_mode,
        network_centric=network_centric,
        workload=WorkloadConfig(transaction_size=2, seed=31),
    )
    decisions = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: decisions.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        bytes_moved = confed.store.network.bytes_delivered
    return report, sorted(decisions), bytes_moved


def main() -> None:
    print(f"dht capabilities: {store_capabilities('dht').as_dict()}")
    print(
        "The DHT now advertises ships_context_free and shared_pair_memo:\n"
        "extension derivation happens in the network, once per published\n"
        "transaction, instead of at every client.\n"
    )

    shipped, shipped_decisions, shipped_bytes = run(ship_context_free=True)
    local, local_decisions, local_bytes = run(ship_context_free=False)

    s, l = shipped.cache_stats, local.cache_stats
    print("Client-side extension work (6 peers, 3 rounds, seeded):")
    print(
        f"  shipping on : {s.misses:4d} local computations, "
        f"{s.shipped:4d} adopted from the store, "
        f"pair-memo hit rate {s.pair_hit_rate:.0%}"
    )
    print(
        f"  shipping off: {l.misses:4d} local computations, "
        f"{l.shipped:4d} adopted from the store, "
        f"pair-memo hit rate {l.pair_hit_rate:.0%}"
    )
    print(
        f"  network bytes moved: {shipped_bytes} (shipping) vs "
        f"{local_bytes} (client-computed) — derived data travels instead"
    )
    assert s.shipped > 0, "the store should serve derived extensions"
    assert s.misses < l.misses, "shipping must reduce client computations"
    assert shipped_bytes > local_bytes, "shipped extensions cost bandwidth"

    # Byte-identical decisions: adopting a shipped extension is only
    # legal when it provably equals the local computation.
    assert shipped_decisions == local_decisions
    assert shipped.state_ratio == local.state_ratio
    print("\nDecision streams are byte-identical with shipping on and off.")

    # PR 5: the *fully* network-centric batch — the store derives each
    # participant's extensions against its applied set and assembles the
    # conflict adjacency; the client skips its two heaviest phases.
    nc, nc_decisions, nc_bytes = run(
        ship_context_free=True, network_centric="store"
    )
    n = nc.cache_stats
    print(
        f"\nnetwork_centric='store' (fully-assembled batches):\n"
        f"  {n.misses:4d} local computations, "
        f"{n.shipped:4d} adopted pre-assembled, "
        f"network bytes {nc_bytes}"
    )
    assert n.misses < s.misses, "store-computed batches do the least client work"
    assert nc_decisions == local_decisions
    assert nc.state_ratio == local.state_ratio
    print("Decision streams stay byte-identical with store-computed batches.")

    # The same quadrant under the threaded epoch scheduler: independent
    # peers' sessions run concurrently between publish-order barriers,
    # and the run stays reproducible.
    threaded_a = run(ship_context_free=True, schedule_mode="threaded")
    threaded_b = run(ship_context_free=True, schedule_mode="threaded")
    assert threaded_a[1] == threaded_b[1], "threaded runs must be reproducible"
    print(
        f"Threaded schedule: {threaded_a[0].transactions_published} "
        f"transactions published, state ratio "
        f"{threaded_a[0].state_ratio:.2f}, decisions reproducible across runs."
    )


if __name__ == "__main__":
    main()
