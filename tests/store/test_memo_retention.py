"""Reconciliation-aware retention of the shared store-side memos.

The context-free extension memo and the shared pair memo used to be
FIFO-capped; they are now pruned when every registered participant holds
a final verdict for a root — the memo tracks the confederation's open
frontier, not its history.
"""

from __future__ import annotations

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.core.decisions import ReconcileResult
from repro.model import Insert
from repro.model.transactions import Transaction, TransactionId
from repro.policy import TrustPolicy
from repro.store import CentralUpdateStore, MemoryUpdateStore
from repro.workload import WorkloadConfig, curated_schema


def mutual_store(store_cls):
    store = store_cls(curated_schema())
    for pid in (1, 2, 3):
        policy = TrustPolicy()
        for other in (1, 2, 3):
            if other != pid:
                policy.trust_participant(other, 1)
        store.register_participant(pid, policy)
    return store


class TestRetention:
    def _publish_one(self, store):
        txn = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        store.publish(1, [txn])
        return txn

    def test_memory_memo_retired_once_all_participants_decided(self):
        store = mutual_store(MemoryUpdateStore)
        txn = self._publish_one(store)
        # Both receivers fetch (populating the memo), then decide.
        store.begin_reconciliation(2)
        store.begin_reconciliation(3)
        assert txn.tid in store._nc_context_free
        store.complete_reconciliation(
            2, ReconcileResult(recno=1, applied=[txn.tid])
        )
        # Participant 3 is still undecided: the entry must survive.
        assert txn.tid in store._nc_context_free
        store.complete_reconciliation(
            3, ReconcileResult(recno=1, applied=[txn.tid])
        )
        assert txn.tid not in store._nc_context_free

    def test_central_memo_retired_once_all_participants_decided(self):
        store = mutual_store(CentralUpdateStore)
        txn = self._publish_one(store)
        store.begin_reconciliation(2)
        store.begin_reconciliation(3)
        assert txn.tid in store._nc_context_free
        store.complete_reconciliation(
            2, ReconcileResult(recno=1, applied=[txn.tid])
        )
        assert txn.tid in store._nc_context_free
        store.complete_reconciliation(
            3, ReconcileResult(recno=1, rejected=[txn.tid])
        )
        assert txn.tid not in store._nc_context_free

    def test_deferred_roots_are_not_retired(self):
        store = mutual_store(MemoryUpdateStore)
        txn = self._publish_one(store)
        store.begin_reconciliation(2)
        store.complete_reconciliation(
            2, ReconcileResult(recno=1, deferred=[txn.tid])
        )
        store.complete_reconciliation(
            3, ReconcileResult(recno=1, applied=[txn.tid])
        )
        # 2's deferral keeps the root open — it will be reconsidered.
        assert txn.tid in store._nc_context_free

    def test_pair_memo_shrinks_with_retirement(self):
        store = mutual_store(MemoryUpdateStore)
        txn = self._publish_one(store)
        store.begin_reconciliation(2)
        pairs = store.shared_pair_cache()
        # Plant a pair entry involving the root; retirement must drop it.
        other = TransactionId(2, 99)
        extension = store._nc_context_free[txn.tid]
        pairs.store(pairs.pair_key(txn.tid, other), extension, extension, ())
        assert len(pairs) == 1
        for pid in (2, 3):
            store.complete_reconciliation(
                pid, ReconcileResult(recno=1, applied=[txn.tid])
            )
        assert len(pairs) == 0

    def _threaded_retention_run(self, schedule_mode, memo_limit=None):
        """One seeded run; ``memo_limit`` shrinks the shared memos so
        the FIFO backstop evicts *during* the run, concurrently with
        retirement and the threaded reconcile phases."""
        config = ConfederationConfig(
            store="memory",
            peers=(1, 2, 3, 4),
            reconciliation_interval=2,
            rounds=3,
            final_reconcile=True,
            schedule_mode=schedule_mode,
            workload=WorkloadConfig(transaction_size=2, seed=11),
        )
        log = []
        hooks = HookBus()
        hooks.on_decision(
            lambda **kw: log.append(
                (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
            )
        )
        with Confederation(config, hooks=hooks) as confed:
            if memo_limit is not None:
                # Instance attribute shadows the class constant: both
                # the context-free memo's FIFO cap and the shared pair
                # cache (created below with this limit) shrink.
                confed.store.SHARED_MEMO_LIMIT = memo_limit
                confed.store.shared_pair_cache().limit = memo_limit
            confed.run()
            snapshots = {
                p.id: p.instance.snapshot() for p in confed.participants
            }
            open_roots = set()
            for participant in confed.participants:
                open_roots |= set(participant.state.deferred)
            memo = dict(getattr(confed.store, "_nc_context_free", {}) or {})
        return sorted(log), snapshots, memo, open_roots

    def test_threaded_reconcile_safe_under_retirement_and_eviction(self):
        """Concurrent reconciles + retirement + a tiny FIFO backstop:
        a reconciling participant must never be handed a retired or
        evicted entry it cannot recover from — decisions stay
        byte-identical to the serial schedule and to an unbounded memo
        (eviction only ever costs a recomputation on the next miss)."""
        # The serial and threaded schedules interleave differently (two
        # distinct, equally valid schedules), so the pin is per mode:
        # shrinking the memos must change nothing.
        serial_tiny = self._threaded_retention_run("serial", memo_limit=2)
        serial_wide = self._threaded_retention_run("serial")
        threaded_tiny = self._threaded_retention_run("threaded", memo_limit=2)
        threaded_wide = self._threaded_retention_run("threaded")
        assert serial_tiny[0] == serial_wide[0]
        assert serial_tiny[1] == serial_wide[1]
        assert threaded_tiny[0] == threaded_wide[0]
        assert threaded_tiny[1] == threaded_wide[1]
        # Retention kept up even while workers raced the memo: nothing
        # finally decided by everyone lingers.
        assert set(threaded_tiny[2]) <= threaded_tiny[3]

    def test_memo_shrinks_after_a_full_confederation_round(self):
        """End to end: after every peer reconciles everything (a full
        round with a final reconcile pass), the shared memo is empty."""
        config = ConfederationConfig(
            store="memory",
            peers=(1, 2, 3),
            reconciliation_interval=2,
            rounds=2,
            final_reconcile=True,
            workload=WorkloadConfig(transaction_size=1, seed=5),
        )
        with Confederation(config) as confed:
            confed.run()
            store = confed.store
            memo = getattr(store, "_nc_context_free", {}) or {}
            # Only roots some participant still has open may remain.
            open_roots = set()
            for participant in confed.participants:
                open_roots |= set(participant.state.deferred)
            assert set(memo) <= open_roots
