"""Contract tests every update store must satisfy.

The four implementations (memory, sqlite central, durable file-backed,
simulated DHT) must be observationally identical at the
:class:`~repro.store.base.UpdateStore` interface; each test in this
module runs against all four.
"""

from __future__ import annotations

import pytest

from repro.core.decisions import ReconcileResult
from repro.errors import StoreError
from repro.model import Insert, Modify, make_transaction
from repro.policy import TrustPolicy
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    DurableUpdateStore,
    MemoryUpdateStore,
)


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")


@pytest.fixture(params=["memory", "central", "durable", "dht"])
def store(request, schema, tmp_path):
    if request.param == "memory":
        yield MemoryUpdateStore(schema)
    elif request.param == "central":
        with CentralUpdateStore(schema) as central:
            yield central
    elif request.param == "durable":
        with DurableUpdateStore(
            schema, path=str(tmp_path / "contract.db"), cache_size=8
        ) as durable:
            yield durable
    else:
        yield DhtUpdateStore(schema, hosts=4)


def register_trusting_peers(store, peers=(1, 2, 3), priority=1):
    """Register peers that all trust each other at ``priority``."""
    for peer in peers:
        policy = TrustPolicy()
        for other in peers:
            if other != peer:
                policy.trust_participant(other, priority)
        store.register_participant(peer, policy)


class TestRegistration:
    def test_duplicate_registration_rejected(self, store):
        store.register_participant(1, TrustPolicy())
        with pytest.raises(StoreError):
            store.register_participant(1, TrustPolicy())

    def test_unregistered_participant_rejected(self, store):
        with pytest.raises(StoreError):
            store.publish(9, [])
        with pytest.raises(StoreError):
            store.begin_reconciliation(9)
        with pytest.raises(StoreError):
            store.last_reconciliation_epoch(9)


class TestPublication:
    def test_publish_allocates_increasing_epochs(self, store):
        register_trusting_peers(store)
        e1 = store.publish(1, [make_transaction(1, 0, [Insert("F", RAT1, 1)])])
        e2 = store.publish(2, [make_transaction(2, 0, [Insert("F", MOUSE2, 2)])])
        assert e2 > e1
        assert store.current_epoch() == e2
        assert store.transaction_count() == 2

    def test_cannot_publish_others_transactions(self, store):
        register_trusting_peers(store)
        with pytest.raises(StoreError):
            store.publish(1, [make_transaction(2, 0, [Insert("F", RAT1, 2)])])

    def test_empty_publication_advances_epoch(self, store):
        register_trusting_peers(store)
        before = store.current_epoch()
        store.publish(1, [])
        assert store.current_epoch() == before + 1

    def test_antecedents_computed_at_publish(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        x11 = make_transaction(1, 1, [Modify("F", RAT1, RAT1_IMMUNE, 1)])
        store.publish(1, [x10])
        store.publish(1, [x11])
        assert store.antecedents_of(x11.tid) == (x10.tid,)
        assert store.antecedents_of(x10.tid) == ()

    def test_internal_chain_is_not_an_antecedent(self, store):
        register_trusting_peers(store)
        txn = make_transaction(
            1, 0, [Insert("F", RAT1, 1), Modify("F", RAT1, RAT1_IMMUNE, 1)]
        )
        store.publish(1, [txn])
        assert store.antecedents_of(txn.tid) == ()

    def test_cross_participant_antecedent(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        x20 = make_transaction(2, 0, [Modify("F", RAT1, RAT1_IMMUNE, 2)])
        store.publish(2, [x20])
        assert store.antecedents_of(x20.tid) == (x10.tid,)


class TestReconciliationBatches:
    def test_batch_delivers_trusted_roots_with_priorities(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(2)
        assert [r.tid for r in batch.roots] == [x10.tid]
        assert batch.roots[0].priority == 1
        assert x10.tid in batch.graph

    def test_own_transactions_not_delivered(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(1)
        assert batch.roots == []

    def test_untrusted_transactions_not_delivered_as_roots(self, store):
        # Peer 1 trusts only peer 2; peer 3's publication is untrusted.
        policy1 = TrustPolicy().trust_participant(2, 1)
        store.register_participant(1, policy1)
        store.register_participant(3, TrustPolicy())
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        store.publish(3, [x30])
        batch = store.begin_reconciliation(1)
        assert batch.roots == []

    def test_untrusted_antecedent_is_delivered_in_graph(self, store):
        # Peer 1 trusts peer 2 but not peer 3; a trusted transaction from
        # peer 2 depends on peer 3's insert, which must ride along.
        store.register_participant(1, TrustPolicy().trust_participant(2, 1))
        store.register_participant(
            2, TrustPolicy().trust_participant(3, 1)
        )
        store.register_participant(3, TrustPolicy())
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        store.publish(3, [x30])
        x20 = make_transaction(2, 0, [Modify("F", RAT1, RAT1_IMMUNE, 2)])
        store.publish(2, [x20])
        batch = store.begin_reconciliation(1)
        assert [r.tid for r in batch.roots] == [x20.tid]
        assert x30.tid in batch.graph
        assert batch.graph.antecedents_of(x20.tid) == (x30.tid,)

    def test_no_redelivery_after_decision(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(2)
        assert len(batch.roots) == 1
        result = ReconcileResult(recno=batch.recno)
        result.applied = [x10.tid]
        result.accepted = [x10.tid]
        store.complete_reconciliation(2, result)
        # Publish something new so there is a later epoch to scan.
        store.publish(3, [make_transaction(3, 0, [Insert("F", MOUSE2, 3)])])
        batch2 = store.begin_reconciliation(2)
        assert [r.tid for r in batch2.roots] != [x10.tid]
        assert all(r.tid != x10.tid for r in batch2.roots)

    def test_rejected_not_redelivered(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(2)
        result = ReconcileResult(recno=batch.recno)
        result.rejected = [x10.tid]
        store.complete_reconciliation(2, result)
        store.publish(3, [make_transaction(3, 0, [Insert("F", MOUSE2, 3)])])
        batch2 = store.begin_reconciliation(2)
        assert all(r.tid != x10.tid for r in batch2.roots)

    def test_deferred_not_redelivered_as_root(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(2)
        result = ReconcileResult(recno=batch.recno)
        result.deferred = [x10.tid]
        store.complete_reconciliation(2, result)
        store.publish(3, [make_transaction(3, 0, [Insert("F", MOUSE2, 3)])])
        batch2 = store.begin_reconciliation(2)
        assert all(r.tid != x10.tid for r in batch2.roots)

    def test_reconciliation_epoch_advances(self, store):
        register_trusting_peers(store)
        assert store.last_reconciliation_epoch(2) == 0
        store.publish(1, [make_transaction(1, 0, [Insert("F", RAT1, 1)])])
        batch = store.begin_reconciliation(2)
        assert batch.recno == store.current_epoch()
        assert store.last_reconciliation_epoch(2) == batch.recno

    def test_applied_antecedents_pruned_from_closure(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.publish(1, [x10])
        batch = store.begin_reconciliation(2)
        result = ReconcileResult(recno=batch.recno)
        result.applied = [x10.tid]
        result.accepted = [x10.tid]
        store.complete_reconciliation(2, result)

        x11 = make_transaction(1, 1, [Modify("F", RAT1, RAT1_IMMUNE, 1)])
        store.publish(1, [x11])
        batch2 = store.begin_reconciliation(2)
        assert [r.tid for r in batch2.roots] == [x11.tid]
        # x10 already applied by peer 2: the store prunes it from the graph.
        assert x10.tid not in batch2.graph

    def test_multiple_epochs_in_one_batch(self, store):
        register_trusting_peers(store)
        x10 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        x30 = make_transaction(3, 0, [Insert("F", MOUSE2, 3)])
        store.publish(1, [x10])
        store.publish(3, [x30])
        batch = store.begin_reconciliation(2)
        assert [r.tid for r in batch.roots] == [x10.tid, x30.tid]

    def test_roots_ordered_by_publish_order(self, store):
        register_trusting_peers(store)
        txns = []
        for seq in range(3):
            txn = make_transaction(
                1, seq, [Insert("F", ("rat", f"p{seq}", "fn"), 1)]
            )
            txns.append(txn)
            store.publish(1, [txn])
        batch = store.begin_reconciliation(2)
        assert [r.tid for r in batch.roots] == [t.tid for t in txns]
        orders = [r.order for r in batch.roots]
        assert orders == sorted(orders)


class TestPerfAccounting:
    def test_messages_are_counted(self, store):
        register_trusting_peers(store)
        before = store.perf.messages
        store.publish(1, [make_transaction(1, 0, [Insert("F", RAT1, 1)])])
        store.begin_reconciliation(2)
        assert store.perf.messages > before
        assert store.perf.simulated_seconds > 0

    def test_dht_costs_more_messages_than_central(self, schema):
        def run(store):
            register_trusting_peers(store)
            for seq in range(5):
                store.publish(
                    1,
                    [
                        make_transaction(
                            1, seq, [Insert("F", ("rat", f"p{seq}", "fn"), 1)]
                        )
                    ],
                )
            store.begin_reconciliation(2)
            return store.perf.messages

        central_messages = run(MemoryUpdateStore(schema))
        dht_messages = run(DhtUpdateStore(schema, hosts=4))
        assert dht_messages > central_messages
