"""The store driver registry: lookup, capabilities, duplicate rejection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    MemoryUpdateStore,
    StoreCapabilities,
    available_stores,
    create_store,
    register_store,
    store_capabilities,
    store_driver,
    unregister_store,
)
from repro.workload import curated_schema


class TestBuiltinDrivers:
    def test_builtins_registered(self):
        assert {"memory", "central", "dht"} <= set(available_stores())

    def test_create_by_name(self):
        schema = curated_schema()
        assert isinstance(create_store("memory", schema), MemoryUpdateStore)
        assert isinstance(create_store("central", schema), CentralUpdateStore)
        assert isinstance(create_store("dht", schema), DhtUpdateStore)

    def test_factory_options_forwarded(self):
        store = create_store("dht", curated_schema(), hosts=7)
        assert len(store._hosts) == 7

    def test_unknown_backend_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown store backend"):
            store_driver("cassandra")
        with pytest.raises(ConfigError, match="available"):
            create_store("cassandra", curated_schema())


class TestCapabilityFlags:
    def test_network_centric_stores_ship_context_free(self):
        for name in ("memory", "central"):
            caps = store_capabilities(name)
            assert caps.ships_context_free
            assert caps.shared_pair_memo
            assert caps.network_centric

    def test_dht_flags_are_honest(self):
        # Since PR 3 the DHT derives context-free extensions at publish
        # and ships them on fetch, with the shared pair memo; since PR 5
        # it assembles fully network-centric batches over the ring too.
        caps = store_capabilities("dht")
        assert caps.ships_context_free
        assert caps.shared_pair_memo
        assert caps.network_centric_batches
        # The pre-PR 5 flag name keeps reading the same truth.
        assert caps.network_centric

    def test_dht_shipping_opt_out_downgrades_instance_flags(self):
        # ship_context_free=False restores the paper's client-compute-only
        # store; the instance's flags must honestly say so.
        store = create_store(
            "dht", curated_schema(), hosts=2, ship_context_free=False
        )
        assert not store.capabilities.ships_context_free
        assert not store.capabilities.shared_pair_memo

    def test_only_central_is_durable(self):
        assert store_capabilities("central").durable
        assert not store_capabilities("memory").durable
        assert not store_capabilities("dht").durable

    def test_instances_carry_their_flags(self):
        # The registry's flags and the class's flags are the same object
        # of truth — batch.capabilities comes from the instance.
        schema = curated_schema()
        for name in ("memory", "central", "dht"):
            store = create_store(name, schema)
            assert store.capabilities == store_capabilities(name)

    def test_unshipping_dht_batches_ship_nothing(self):
        from repro.policy import TrustPolicy

        store = create_store(
            "dht", curated_schema(), hosts=2, ship_context_free=False
        )
        store.register_participant(1, TrustPolicy().trust_all(1))
        batch = store.begin_reconciliation(1)
        assert batch.extensions is None
        assert batch.pair_cache is None


class TestCapabilityRouting:
    """The engine adopts shipped payloads via flags, not store types."""

    def _one_published_transaction(self, store):
        from repro.model import Insert
        from repro.model.transactions import Transaction, TransactionId
        from repro.policy import TrustPolicy

        store.register_participant(1, TrustPolicy().trust_all(1))
        store.register_participant(2, TrustPolicy().trust_all(1))
        transaction = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "x"), 1),)
        )
        store.publish(1, [transaction])
        return store.begin_reconciliation(2)

    def test_declaring_stores_ship(self):
        batch = self._one_published_transaction(
            create_store("memory", curated_schema())
        )
        assert batch.extensions is not None
        assert batch.pair_cache is not None

    def test_undeclared_capability_stops_store_side_shipping(self):
        class NoShipStore(MemoryUpdateStore):
            capabilities = StoreCapabilities(
                ships_context_free=False,
                shared_pair_memo=False,
                network_centric_batches=True,
            )

        batch = self._one_published_transaction(NoShipStore(curated_schema()))
        assert batch.extensions is None
        assert batch.pair_cache is None

    def test_pair_memo_ships_independently_of_extensions(self):
        class MemoOnlyStore(MemoryUpdateStore):
            capabilities = StoreCapabilities(
                ships_context_free=False,
                shared_pair_memo=True,
                network_centric_batches=True,
            )

        batch = self._one_published_transaction(MemoOnlyStore(curated_schema()))
        assert batch.extensions is None
        assert batch.pair_cache is not None

    def test_engine_ignores_shipped_payloads_without_the_flag(self):
        from repro.core.engine import Reconciler
        from repro.core.state import ParticipantState
        from repro.instance.memory import MemoryInstance

        schema = curated_schema()
        batch = self._one_published_transaction(create_store("memory", schema))
        assert batch.extensions  # the store did ship
        # A dishonest/legacy wire: payloads present but the declared
        # capabilities deny them — the engine must recompute locally.
        batch.capabilities = StoreCapabilities(
            ships_context_free=False, shared_pair_memo=False
        )
        reconciler = Reconciler(
            schema, MemoryInstance(schema), ParticipantState(2)
        )
        result = reconciler.reconcile(batch)
        assert [str(t) for t in result.accepted] == ["X1:0"]
        assert reconciler.cache.stats.shipped == 0


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_store(
                "memory",
                lambda schema, **_: MemoryUpdateStore(schema),
                StoreCapabilities(),
            )

    def test_replace_allows_override_and_unregister_removes(self):
        try:
            register_store(
                "memory-test-double",
                lambda schema, **_: MemoryUpdateStore(schema),
                StoreCapabilities(durable=True),
            )
            assert "memory-test-double" in available_stores()
            register_store(
                "memory-test-double",
                lambda schema, **_: MemoryUpdateStore(schema),
                StoreCapabilities(),
                replace=True,
            )
            assert not store_capabilities("memory-test-double").durable
        finally:
            unregister_store("memory-test-double")
        assert "memory-test-double" not in available_stores()

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty string"):
            register_store(
                "", lambda schema, **_: MemoryUpdateStore(schema), StoreCapabilities()
            )
