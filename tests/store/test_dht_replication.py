"""Successor replication, crash takeover, recovery, and retries (PR 6).

The DHT store with ``replication_factor=k`` writes controller records to
the next ``k-1`` live ring successors at write time; after
``fail_host`` the takeover owner serves from its replica, and
``recover_host`` rejoins the ring and rebalances records back.  The
request transport retries unanswered protocol messages with stable
request ids, so drops and duplicates are masked up to the retry budget.
"""

from __future__ import annotations

import pytest

from repro.core.decisions import ReconcileResult
from repro.errors import RetryExhaustedError, StoreError
from repro.model import Insert, make_transaction
from repro.net import FaultPlan, MessageFault
from repro.net.faults import FaultInjector
from repro.policy import TrustPolicy
from repro.store import DhtUpdateStore


ROW_A = ("rat", "prot1", "immune")
ROW_B = ("mouse", "prot2", "defense")


def register_trusting_peers(store, peers=(1, 2, 3), priority=1):
    for peer in peers:
        policy = TrustPolicy()
        for other in peers:
            if other != peer:
                policy.trust_participant(other, priority)
        store.register_participant(peer, policy)


def replicated_store(schema, hosts=5, k=2, **options):
    store = DhtUpdateStore(
        schema, hosts=hosts, replication_factor=k, **options
    )
    register_trusting_peers(store)
    return store


class TestConfiguration:
    def test_replication_factor_validated(self, schema):
        with pytest.raises(StoreError):
            DhtUpdateStore(schema, hosts=3, replication_factor=0)
        with pytest.raises(StoreError):
            DhtUpdateStore(schema, hosts=3, max_retries=-1)

    def test_replication_factor_exposed(self, schema):
        store = DhtUpdateStore(schema, hosts=4, replication_factor=3)
        assert store.replication_factor == 3

    def test_default_is_unreplicated(self, schema):
        store = DhtUpdateStore(schema, hosts=4)
        register_trusting_peers(store)
        store.publish(1, [make_transaction(1, 0, [Insert("F", ROW_A, 1)])])
        assert all(
            not any(role == "txn" for role, _key in host.replicas)
            for host in store._hosts.values()
        )


class TestSuccessorReplication:
    def test_txn_records_reach_successors(self, schema):
        store = replicated_store(schema)
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        holders = [
            name
            for name, host in store._hosts.items()
            if txn.tid in host.txns or ("txn", txn.tid) in host.replicas
        ]
        assert len(holders) == 2  # primary plus one successor replica

    def test_epoch_records_reach_successors(self, schema):
        store = replicated_store(schema)
        epoch = store.publish(1, [make_transaction(1, 0, [Insert("F", ROW_A, 1)])])
        holders = [
            name
            for name, host in store._hosts.items()
            if epoch in host.epochs or ("epoch", epoch) in host.replicas
        ]
        assert len(holders) == 2

    def test_crash_is_masked_end_to_end(self, schema):
        store = replicated_store(schema)
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        # Crash the transaction controller; the successor's replica must
        # keep the batch protocol whole.
        store.fail_host(store._owner(f"txn:{txn.tid}"))
        batch = store.begin_reconciliation(2)
        assert [r.transaction.tid for r in batch.roots] == [txn.tid]
        store.complete_reconciliation(
            2,
            ReconcileResult(
                recno=batch.recno, accepted=[txn.tid], applied=[txn.tid]
            ),
        )
        applied, _rejected, _deferred = store.decided_transactions(2)
        assert [t.tid for t in applied] == [txn.tid]

    def test_unreplicated_crash_loses_the_record(self, schema):
        store = DhtUpdateStore(schema, hosts=5, replication_factor=1)
        register_trusting_peers(store)
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        store.fail_host(store._owner(f"txn:{txn.tid}"))
        # k=1 has no replica to serve from: the record degrades to
        # "unknown" and the batch arrives without it.
        batch = store.begin_reconciliation(2)
        assert batch.roots == []


class TestRecoverHost:
    def test_recover_requires_a_failed_host(self, schema):
        store = replicated_store(schema)
        with pytest.raises(StoreError):
            store.recover_host("host:99")
        with pytest.raises(StoreError):
            store.recover_host("host:0")  # alive

    def test_ownership_routes_back_after_recovery(self, schema):
        store = replicated_store(schema)
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        primary = store._owner(f"txn:{txn.tid}")
        store.fail_host(primary)
        assert store._owner(f"txn:{txn.tid}") != primary
        store.recover_host(primary)
        assert store._owner(f"txn:{txn.tid}") == primary

    def test_rebalance_reships_records_to_recovered_host(self, schema):
        store = replicated_store(schema)
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        primary = store._owner(f"txn:{txn.tid}")
        store.fail_host(primary)  # wipes the primary's state
        assert txn.tid not in store._hosts[primary].txns
        store.recover_host(primary)
        # The crash wiped the host; rebalance must re-ship the record.
        assert txn.tid in store._hosts[primary].txns
        batch = store.begin_reconciliation(2)
        assert [r.transaction.tid for r in batch.roots] == [txn.tid]

    def test_full_cycle_preserves_reconciliation(self, schema):
        store = replicated_store(schema)
        t1 = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [t1])
        victim = store.allocator_host()
        store.fail_host(victim)
        store.recover_epoch_allocator(1)
        t2 = make_transaction(1, 1, [Insert("F", ROW_B, 1)])
        store.publish(1, [t2])
        store.recover_host(victim)
        batch = store.begin_reconciliation(2)
        assert sorted(str(r.transaction.tid) for r in batch.roots) == [
            str(t1.tid),
            str(t2.tid),
        ]


class TestRetryTransport:
    def plan(self, kind, times=1):
        return FaultPlan(
            seed=5, messages=(MessageFault(kind, "drop", times=times),)
        )

    def test_dropped_reply_is_retried(self, schema):
        store = replicated_store(schema)
        store.network.injector = FaultInjector(
            self.plan("txn_stored", times=2), latency=store.message_latency
        )
        txn = make_transaction(1, 0, [Insert("F", ROW_A, 1)])
        store.publish(1, [txn])
        assert store.retries >= 1
        # The store ends up with exactly one copy per holder despite the
        # duplicate deliveries of store_txn (at-most-once handlers).
        batch = store.begin_reconciliation(2)
        assert [r.transaction.tid for r in batch.roots] == [txn.tid]

    def test_duplicated_replies_are_harmless(self, schema):
        store = replicated_store(schema)
        store.network.injector = FaultInjector(
            FaultPlan(
                seed=5,
                messages=(MessageFault("epoch_is", "duplicate"),),
            ),
            latency=store.message_latency,
        )
        epoch = store.publish(1, [make_transaction(1, 0, [Insert("F", ROW_A, 1)])])
        assert store.publish(1, []) == epoch + 1  # allocator still monotone

    def test_black_hole_exhausts_the_budget(self, schema):
        store = replicated_store(schema, max_retries=2)
        store.network.injector = FaultInjector(
            self.plan("txn_stored", times=None), latency=store.message_latency
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            store.publish(1, [make_transaction(1, 0, [Insert("F", ROW_A, 1)])])
        # Satellite: the error names the pending request precisely.
        message = str(excinfo.value)
        assert "store_txn" in message and "txn_stored" in message

    def test_retry_backoff_charges_latency(self, schema):
        store = replicated_store(schema)
        store.network.injector = FaultInjector(
            self.plan("txn_stored", times=1), latency=store.message_latency
        )
        before = store.perf.simulated_seconds
        store.publish(1, [make_transaction(1, 0, [Insert("F", ROW_A, 1)])])
        assert store.perf.simulated_seconds > before
        assert store.retries == 1
