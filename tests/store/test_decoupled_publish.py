"""The decoupled begin/write/finish publication protocol (Section 5.2.1).

The concurrency property the paper stresses: reconciliation uses "the
latest epoch not preceded by an 'unfinished' epoch", so a slow publisher
never lets a reconciler observe a half-written history — transactions
published *after* an unfinished epoch stay invisible until it finishes.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.model import Insert, make_transaction
from repro.policy import TrustPolicy
from repro.store import CentralUpdateStore, DhtUpdateStore, MemoryUpdateStore


RAT1 = ("rat", "prot1", "immune")
MOUSE2 = ("mouse", "prot2", "immune")


@pytest.fixture(params=["memory", "central", "dht"])
def store(request, schema):
    if request.param == "memory":
        yield MemoryUpdateStore(schema)
    elif request.param == "central":
        with CentralUpdateStore(schema) as central:
            yield central
    else:
        yield DhtUpdateStore(schema, hosts=4)


@pytest.fixture
def peers(store):
    for pid in (1, 2, 3):
        policy = TrustPolicy()
        for other in (1, 2, 3):
            if other != pid:
                policy.trust_participant(other, 1)
        store.register_participant(pid, policy)
    return store


class TestDecoupledPublish:
    def test_three_phase_equals_one_shot(self, peers):
        store = peers
        txn = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        epoch = store.begin_publish(1)
        store.write_transactions(1, epoch, [txn])
        store.finish_publish(1, epoch)
        batch = store.begin_reconciliation(2)
        assert [r.tid for r in batch.roots] == [txn.tid]

    def test_unfinished_epoch_blocks_stability(self, peers):
        store = peers
        # p1 starts publishing but does not finish.
        slow_epoch = store.begin_publish(1)
        slow_txn = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        store.write_transactions(1, slow_epoch, [slow_txn])

        # p3 publishes completely *after* p1 started.
        fast_txn = make_transaction(3, 0, [Insert("F", MOUSE2, 3)])
        store.publish(3, [fast_txn])

        # p2 reconciles: the stable epoch precedes p1's unfinished one, so
        # it must see NEITHER transaction.
        batch = store.begin_reconciliation(2)
        assert batch.recno < slow_epoch
        assert batch.roots == []

        # p1 finishes; now both epochs become visible at once.
        store.finish_publish(1, slow_epoch)
        batch = store.begin_reconciliation(2)
        assert sorted(str(r.tid) for r in batch.roots) == ["X1:0", "X3:0"]

    def test_write_to_foreign_epoch_rejected(self, peers):
        store = peers
        epoch = store.begin_publish(1)
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        with pytest.raises(StoreError):
            store.write_transactions(2, epoch, [txn])
        store.finish_publish(1, epoch)

    def test_write_after_finish_rejected(self, peers):
        store = peers
        epoch = store.begin_publish(1)
        store.finish_publish(1, epoch)
        txn = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        with pytest.raises(StoreError):
            store.write_transactions(1, epoch, [txn])

    def test_double_finish_rejected(self, peers):
        store = peers
        epoch = store.begin_publish(1)
        store.finish_publish(1, epoch)
        with pytest.raises(StoreError):
            store.finish_publish(1, epoch)

    def test_incremental_writes_accumulate(self, peers):
        store = peers
        epoch = store.begin_publish(1)
        first = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        second = make_transaction(1, 1, [Insert("F", MOUSE2, 1)])
        store.write_transactions(1, epoch, [first])
        store.write_transactions(1, epoch, [second])
        store.finish_publish(1, epoch)
        batch = store.begin_reconciliation(2)
        assert [str(r.tid) for r in batch.roots] == ["X1:0", "X1:1"]
        orders = [r.order for r in batch.roots]
        assert orders == sorted(orders)