"""Failure injection for the DHT store: the paper's allocator-recovery
sketch ("its data could be reconstructed by polling for the largest epoch
present in the system")."""

from __future__ import annotations

import pytest

from repro.cdss import CDSS
from repro.errors import StoreError
from repro.model import Insert
from repro.store import DhtUpdateStore


def build_system(schema, hosts=6):
    store = DhtUpdateStore(schema, hosts=hosts)
    cdss = CDSS(store)
    peers = cdss.add_mutually_trusting_participants([1, 2, 3])
    return store, cdss, peers


class TestAllocatorRecovery:
    def test_counter_reconstructed_after_allocator_failure(self, schema):
        store, cdss, (p1, p2, p3) = build_system(schema)
        # Generate some history and let everyone catch up.
        p1.execute([Insert("F", ("rat", "prot1", "immune"), 1)])
        p1.publish_and_reconcile()
        p2.publish_and_reconcile()
        p3.publish_and_reconcile()
        epochs_before = store.current_epoch()
        assert epochs_before >= 3  # one publish per participant

        victim = store.allocator_host()
        store.fail_host(victim)
        assert store.allocator_host() != victim

        recovered = store.recover_epoch_allocator(p1.id)
        assert recovered >= epochs_before
        # The counter keeps strictly increasing from the recovered value.
        p1.execute([Insert("F", ("mouse", "prot9", "defense"), 1)])
        epoch = p1.publish()
        assert epoch == recovered + 1

    def test_publishing_continues_after_recovery(self, schema):
        store, cdss, (p1, p2, p3) = build_system(schema)
        p1.execute([Insert("F", ("rat", "prot1", "immune"), 1)])
        p1.publish_and_reconcile()
        p2.publish_and_reconcile()
        p3.publish_and_reconcile()

        victim = store.allocator_host()
        store.fail_host(victim)
        store.recover_epoch_allocator(p2.id)

        # A peer whose coordinator survived keeps working end to end.
        survivor = next(
            peer
            for peer in (p1, p2, p3)
            if store._owner(f"peer:{peer.id}") != victim
        )
        survivor.execute(
            [Insert("F", ("human", "protN", "transport"), survivor.id)]
        )
        result = survivor.publish_and_reconcile()
        assert result is not None
        assert survivor.instance.contains_row(
            "F", ("human", "protN", "transport")
        )

    def test_cannot_fail_unknown_or_last_host(self, schema):
        store = DhtUpdateStore(schema, hosts=2)
        with pytest.raises(StoreError):
            store.fail_host("host:99")
        store.fail_host("host:0")
        with pytest.raises(StoreError):
            store.fail_host("host:1")

    def test_ownership_routes_around_failed_host(self, schema):
        store = DhtUpdateStore(schema, hosts=4)
        key = "txn:X1:0"
        primary = store._owner(key)
        store.fail_host(primary)
        assert store._owner(key) != primary
