"""DHT context-free shipping: derivation at publish, shipping on fetch,
the shared pair memo, retention, and partial-failure degradation."""

from __future__ import annotations

from repro.model import Insert, Modify
from repro.model.transactions import Transaction, TransactionId
from repro.policy import TrustPolicy
from repro.store import DhtUpdateStore


def mutual_policy(pid, ids, priority=1):
    policy = TrustPolicy()
    for other in ids:
        if other != pid:
            policy.trust_participant(other, priority)
    return policy


def dht_store(schema, hosts=4, **options):
    store = DhtUpdateStore(schema, hosts=hosts, **options)
    for pid in (1, 2, 3):
        store.register_participant(pid, mutual_policy(pid, (1, 2, 3)))
    return store


class TestDerivationAndShipping:
    def test_extension_derived_at_publish(self, schema):
        store = dht_store(schema)
        txn = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        store.publish(1, [txn])
        controller = store._hosts[store._owner(f"txn:{txn.tid}")]
        extension = controller.txns[txn.tid]["context_free"]
        assert extension is not None
        assert extension.members == (txn.tid,)

    def test_derivation_walks_the_antecedent_chain(self, schema):
        store = dht_store(schema)
        a = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        store.publish(1, [a])
        b = Transaction(
            TransactionId(1, 1),
            (Modify("F", ("rat", "p1", "fn-a"), ("rat", "p1", "fn-b"), 1),),
        )
        store.publish(1, [b])
        controller = store._hosts[store._owner(f"txn:{b.tid}")]
        extension = controller.txns[b.tid]["context_free"]
        assert extension is not None
        # Context-free = full closure: both members, flattened to one net op.
        assert set(extension.members) == {a.tid, b.tid}
        assert len(extension.operations) == 1

    def test_batch_ships_extensions_and_pair_memo(self, schema):
        store = dht_store(schema)
        txn = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        store.publish(1, [txn])
        batch2 = store.begin_reconciliation(2)
        batch3 = store.begin_reconciliation(3)
        assert batch2.extensions is not None and txn.tid in batch2.extensions
        assert batch2.pair_cache is store._shared_pairs
        # Same priority => the identical object for every participant —
        # the invariant the pair memo's identity validation relies on.
        assert batch2.extensions[txn.tid] is batch3.extensions[txn.tid]
        assert batch2.extensions[txn.tid].priority == 1

    def test_shipping_charges_messages_and_bytes(self, schema):
        shipping = dht_store(schema)
        plain = dht_store(schema, ship_context_free=False)
        txn = Transaction(
            TransactionId(1, 0),
            (
                Insert("F", ("rat", "p1", "fn-a"), 1),
                Insert("F", ("rat", "p2", "fn-b"), 1),
            ),
        )
        for store in (shipping, plain):
            store.publish(1, [txn])
            store.begin_reconciliation(2)
        # Derivation and shipping are not free: the shipping store moved
        # more messages and more bytes for the same history.
        assert shipping.perf.messages > plain.perf.messages
        assert shipping.network.bytes_delivered > plain.network.bytes_delivered

    def test_engine_adopts_dht_shipped_extension(self, schema):
        from repro.cdss.participant import Participant

        store = DhtUpdateStore(schema, hosts=4)
        store.register_participant(1, mutual_policy(1, (1, 2)))
        publisher = Participant(1, store, mutual_policy(1, (1, 2)), register=False)
        receiver = Participant(2, store, mutual_policy(2, (1, 2)))
        publisher.execute([Insert("F", ("rat", "p1", "fn-a"), 1)])
        publisher.publish()
        result = receiver.reconcile()
        assert len(result.accepted) == 1
        assert receiver.reconciler.cache.stats.shipped == 1


class TestRetention:
    def test_controller_drops_extension_once_everyone_decided(self, schema):
        store = dht_store(schema)
        txn = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        store.publish(1, [txn])
        controller = store._hosts[store._owner(f"txn:{txn.tid}")]

        from repro.core.decisions import ReconcileResult

        result = ReconcileResult(recno=1, applied=[txn.tid])
        store.complete_reconciliation(2, result)
        assert controller.txns[txn.tid]["context_free"] is not None
        store.complete_reconciliation(3, result)
        # Origin applied at publish + 2 and 3 applied: fully decided.
        assert controller.txns[txn.tid]["context_free"] is None


class TestPartialFailure:
    def test_lost_root_degrades_to_partial_batch(self, schema):
        """A failed transaction controller loses body and extension; the
        surviving roots still reconcile, shipped extensions included."""
        store = dht_store(schema, hosts=self._hosts_isolating_first_txn())
        a = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        b = Transaction(
            TransactionId(3, 0), (Insert("F", ("rat", "p2", "fn-b"), 3),)
        )
        store.publish(1, [a])
        store.publish(3, [b])
        victim = store._owner(f"txn:{a.tid}")
        assert store._owner(f"txn:{b.tid}") != victim
        store.fail_host(victim)
        batch = store.begin_reconciliation(2)
        tids = [root.tid for root in batch.roots]
        assert a.tid not in tids  # lost with its controller
        assert b.tid in tids
        assert batch.extensions is not None and b.tid in batch.extensions

    @staticmethod
    def _hosts_isolating_first_txn():
        """A host count whose ring layout gives ``txn:X1:0`` a controller
        that owns none of the other roles this scenario touches — so
        failing it loses exactly one transaction record."""
        from repro.net.ring import HashRing

        other_roles = (
            "epoch-allocator",
            "peer:1",
            "peer:2",
            "peer:3",
            "epoch:1",
            "epoch:2",
            "txn:X3:0",
            "value:F:('rat', 'p1', 'fn-a')",
            "value:F:('rat', 'p1', 'fn-b')",
        )
        for hosts in range(4, 24):
            ring = HashRing([f"host:{i}" for i in range(hosts)])
            victim = ring.owner("txn:X1:0")
            if all(ring.owner(role) != victim for role in other_roles):
                return hosts
        raise AssertionError("no isolating ring layout found")

    def test_failed_antecedent_controller_aborts_derivation(self, schema):
        """cf_fetch hitting a takeover node aborts the derivation; the
        dependent publishes fine and ships no extension, and a client
        that already applied the antecedent still reconciles it."""
        from repro.cdss.participant import Participant

        store = DhtUpdateStore(schema, hosts=self._hosts_isolating_first_txn())
        ids = (1, 2, 3)
        store.register_participant(1, mutual_policy(1, ids))
        p1 = Participant(1, store, mutual_policy(1, ids), register=False)
        p2 = Participant(2, store, mutual_policy(2, ids))
        p3 = Participant(3, store, mutual_policy(3, ids))

        p1.execute([Insert("F", ("rat", "p1", "fn-a"), 1)])
        p1.publish()
        p2.reconcile()  # both peers apply the antecedent
        p3.reconcile()
        a_tid = TransactionId(1, 0)

        store.fail_host(store._owner(f"txn:{a_tid}"))
        p3.execute(
            [Modify("F", ("rat", "p1", "fn-a"), ("rat", "p1", "fn-b"), 3)]
        )
        p3.publish()
        b_tid = TransactionId(3, 0)
        controller = store._hosts[store._owner(f"txn:{b_tid}")]
        assert controller.txns[b_tid]["context_free"] is None

        result = p2.reconcile()
        assert b_tid in result.accepted
        assert p2.instance.contains_row("F", ("rat", "p1", "fn-b"))
