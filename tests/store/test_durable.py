"""Durable-store behaviour: persistence, recovery, bounded paging.

The durable backend's contract beyond the shared store interface:

* the full history (bodies, epochs, verdicts, reconciliation records)
  survives closing the store and reopening the same database file — a
  whole confederation resumes via adopt-on-reopen + ``restore()``;
* an *unclean* close (a publisher that died between ``begin_publish``
  and ``finish_publish``) recovers on reopen: sqlite replays its WAL
  and the dangling epoch is finished so the stable-epoch computation
  is never blocked;
* transaction bodies page through a bounded LRU — a tiny cache limit
  changes residency and cost, never decisions;
* retired shared-memo entries spill to disk and page back in
  value-equal;
* the threaded epoch scheduler drives it safely under the runtime
  lock-discipline proxies.
"""

from __future__ import annotations

import pytest

from repro.analysis.runtime import lock_discipline
from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.core.cache import PageCache
from repro.errors import StoreError
from repro.model import Insert, Transaction, TransactionId
from repro.policy import TrustPolicy
from repro.store import DurableUpdateStore
from repro.store.durable import _decode_extension, _encode_extension
from repro.workload import WorkloadConfig, curated_schema

SEED = 23
PEERS = (1, 2, 3, 4)


def evaluation_config(path, cache_size=8, **overrides):
    base = dict(
        store="durable",
        store_options={"path": path, "cache_size": cache_size},
        peers=PEERS,
        reconciliation_interval=3,
        rounds=3,
        workload=WorkloadConfig(transaction_size=2, seed=SEED),
    )
    base.update(overrides)
    return ConfederationConfig(**base)


def run_with_decisions(config):
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        snapshots = {p.id: p.instance.snapshot() for p in confed.participants}
        store_stats = confed.store.page_cache_stats()
        retired = confed.store.retired_extension_count()
        decision_state = confed.snapshot()
    return log, snapshots, report, store_stats, retired, decision_state


# ----------------------------------------------------------------------
# PageCache unit behaviour


def test_page_cache_is_lru_and_bounded():
    cache = PageCache(2)
    cache.put(1, "a")
    cache.put(2, "b")
    assert cache.get(1) == "a"  # refreshes 1
    cache.put(3, "c")  # evicts 2, the least recently used
    assert cache.get(2) is None
    assert cache.get(1) == "a"
    assert cache.get(3) == "c"
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.peak_resident == 2


def test_page_cache_rejects_useless_capacity():
    with pytest.raises(ValueError):
        PageCache(0)


# ----------------------------------------------------------------------
# Persistence: close, reopen, resume


def test_whole_confederation_reopens_from_disk(tmp_path):
    path = str(tmp_path / "store.db")
    first = run_with_decisions(evaluation_config(path))
    assert first[4] > 0  # retirement spilled entries to disk

    # A brand-new process would do exactly this: same config, same file.
    reopened_config = ConfederationConfig(
        store="durable", store_options={"path": path, "cache_size": 8},
        peers=PEERS,
    )
    with Confederation(reopened_config) as confed:
        # Registration adopted the on-disk participants; restore()
        # rebuilds every replica from the persisted decisions.
        confed.restore()
        assert confed.snapshot() == first[5]
        assert {
            p.id: p.instance.snapshot() for p in confed.participants
        } == first[1]
        # ... and the confederation keeps operating: sequence numbers
        # resume past the persisted history, so no tid is ever reused.
        publisher = confed.participant(1)
        publisher.execute([Insert("F", ("zzz", "prot-new", "novel"), 1)])
        result = publisher.publish_and_reconcile()
        assert any(str(t) for t in result.accepted)


def test_reopen_after_unclean_close_recovers(tmp_path):
    path = str(tmp_path / "store.db")
    schema = curated_schema()
    store = DurableUpdateStore(schema, path=path)
    store.register_participant(1, TrustPolicy())
    store.register_participant(2, TrustPolicy().trust_participant(1, 1))
    store.publish(
        1, [Transaction(TransactionId(1, 0), (Insert("F", ("a", "b", "c"), 1),))]
    )
    # The publisher dies mid-publication: epoch begun, never finished.
    dangling = store.begin_publish(1)
    # Simulate the crash: abandon the connection without closing the
    # store cleanly (the second connection below sees whatever sqlite
    # made durable, exactly like a restarted process).
    del store

    reopened = DurableUpdateStore(schema, path=path)
    reopened.register_participant(1, TrustPolicy())
    reopened.register_participant(2, TrustPolicy().trust_participant(1, 1))
    assert reopened.transaction_count() == 1
    assert reopened.current_epoch() == dangling
    # Recovery finished the dangling epoch, so the stable-epoch
    # computation is not blocked: the committed transaction is delivered.
    batch = reopened.begin_reconciliation(2)
    assert [root.tid for root in batch.roots] == [TransactionId(1, 0)]
    assert batch.recno >= dangling
    reopened.close()


def test_duplicate_in_process_registration_still_raises(tmp_path):
    store = DurableUpdateStore(
        curated_schema(), path=str(tmp_path / "store.db")
    )
    store.register_participant(1, TrustPolicy())
    with pytest.raises(StoreError):
        store.register_participant(1, TrustPolicy())
    store.close()


def test_applied_versions_persist_across_reopen(tmp_path):
    path = str(tmp_path / "store.db")
    first = run_with_decisions(evaluation_config(path))
    assert first[0]  # decisions actually happened

    reopened = DurableUpdateStore(curated_schema(), path=path)
    # The version counters resumed from disk, not from zero: recovery is
    # O(delta), not a full-history replay.
    versions = dict(reopened._applied_versions)
    assert versions
    assert all(v > 0 for v in versions.values())
    reopened.close()


# ----------------------------------------------------------------------
# Bounded paging: a tiny cache changes cost, never outcomes


def test_tiny_page_cache_keeps_decisions_byte_identical(tmp_path):
    roomy = run_with_decisions(
        evaluation_config(str(tmp_path / "roomy.db"), cache_size=4096)
    )
    tiny = run_with_decisions(
        evaluation_config(str(tmp_path / "tiny.db"), cache_size=2)
    )
    assert tiny[0] == roomy[0]  # decision stream, order included
    assert tiny[1] == roomy[1]  # final instances
    assert tiny[2].state_ratio == roomy[2].state_ratio
    # The tiny cache really was bounded — and really evicted.
    assert tiny[3]["peak_resident"] <= 2
    assert tiny[3]["evictions"] > 0
    assert roomy[3]["evictions"] == 0


# ----------------------------------------------------------------------
# Spill-aware retention: retired memo entries live on disk


def test_retired_extensions_spill_and_reload(tmp_path):
    path = str(tmp_path / "store.db")
    log, _snapshots, _report, _stats, retired, _state = run_with_decisions(
        evaluation_config(path)
    )
    assert retired > 0

    store = DurableUpdateStore(curated_schema(), path=path)
    rows = store._conn.execute(
        "SELECT participant, seq FROM retired_extensions ORDER BY participant, seq"
    ).fetchall()
    assert len(rows) == retired
    for participant, seq in rows:
        extension = store._load_retired(TransactionId(participant, seq))
        assert extension is not None
        assert extension.root == TransactionId(participant, seq)
        # The codec round-trips exactly.
        assert _decode_extension(_encode_extension(extension)) == extension
    store.close()


# ----------------------------------------------------------------------
# Threaded scheduler under the runtime lock-discipline proxies


def per_participant(log):
    streams = {}
    for event in log:
        streams.setdefault(event[0], []).append(event)
    return streams


def run_threaded(path, instrument):
    config = evaluation_config(path, schedule_mode="threaded")
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        if instrument:
            with lock_discipline(confed.store) as handle:
                assert handle.wrapped  # containers really got guarded
                confed.run()
        else:
            confed.run()
        snapshots = {p.id: p.instance.snapshot() for p in confed.participants}
    return log, snapshots


def test_threaded_scheduler_under_lock_discipline(tmp_path):
    """Concurrent reconcile phases against one sqlite connection, every
    store touch owner-checked by the runtime proxies.

    The threaded mode's determinism contract is per participant (the
    global interleaving of workers' emissions is not pinned), so the
    instrumented run must match the plain threaded run per participant
    — the proxies and the shared connection perturb nothing.
    """
    plain = run_threaded(str(tmp_path / "plain.db"), instrument=False)
    guarded = run_threaded(str(tmp_path / "guarded.db"), instrument=True)
    assert per_participant(guarded[0]) == per_participant(plain[0])
    assert guarded[1] == plain[1]
